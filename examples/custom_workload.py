#!/usr/bin/env python
"""Author a custom workload, characterize it, and run it under DVFS.

Shows the full library surface a user needs to study their own application:

1. describe the program as phases (mix, ILP, working set, branch behaviour);
2. generate and sanity-check its trace (:mod:`repro.workloads.stats`);
3. classify its workload variability (Section-5.2 spectral analysis);
4. estimate its mu-f service parameters from a DVFS run (Section 4.3);
5. check the control loop's stability at those parameters (Section 4).

Run:  python examples/custom_workload.py
"""

from repro.analysis import (
    ClosedLoopModel,
    ControllerModel,
    analyze,
    linearize,
    offline_characterization,
)
from repro.harness.experiment import run_experiment
from repro.mcd.domains import DomainId
from repro.spectral import classify_fast_varying_trace, workload_fast_variation_metric
from repro.workloads import analyze_trace, format_stats, generate_trace
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def build_my_benchmark() -> BenchmarkSpec:
    """A toy video-filter pipeline: per-frame FP convolution bursts against
    integer bitstream handling, every ~2k instructions."""
    convolve = PhaseSpec(
        name="convolve",
        length=2_000,
        mix={K.FP_ADD: 0.3, K.FP_MUL: 0.2, K.LOAD: 0.3, K.INT_ALU: 0.15, K.STORE: 0.05},
        mean_dep_distance=6.0,
        working_set=128 * 1024,
    )
    bitstream = PhaseSpec(
        name="bitstream",
        length=2_000,
        mix={K.INT_ALU: 0.5, K.LOAD: 0.2, K.STORE: 0.05, K.BRANCH: 0.25},
        mean_dep_distance=3.0,
        working_set=32 * 1024,
    )
    return BenchmarkSpec(
        name="my-video-filter",
        suite="mediabench",
        phases=tuple([convolve, bitstream] * 25),
        notes="example custom workload",
    )


def main() -> None:
    spec = build_my_benchmark()

    # 2. trace statistics
    trace = generate_trace(spec)
    print("=== trace statistics ===")
    print(format_stats(analyze_trace(trace)))

    # 3. variability classification
    metric = workload_fast_variation_metric(trace)
    fast = classify_fast_varying_trace(trace)
    print(f"\n=== Section-5.2 classification ===")
    print(f"sub-interval demand variance: {metric:.4f} "
          f"-> {'FAST-VARYING' if fast else 'steady'}")
    if fast:
        print("(fast-varying: the adaptive scheme's home turf)")

    # run it under adaptive DVFS
    print("\nsimulating under adaptive DVFS ...")
    baseline = run_experiment(spec, scheme="full-speed", record_history=False)
    adaptive = run_experiment(spec, scheme="adaptive", history_stride=1)
    saved = 100 * (1 - adaptive.energy.total / baseline.energy.total)
    slower = 100 * (adaptive.time_ns / baseline.time_ns - 1)
    print(f"energy saved {saved:.2f}%, perf cost {slower:.2f}%")

    # 4. offline mu-f characterization of the FP domain (Section 4.3):
    #    pin FP to probe frequencies and fit 1/mu = t1 + c2/f
    print("\n=== Section-4.3 service-model characterization (FP domain) ===")
    estimate = offline_characterization(spec, DomainId.FP, max_instructions=40_000)
    print(f"t1 = {estimate.t1:.3f} ns/inst (frequency-independent)")
    print(f"c2 = {estimate.c2:.3f} cycles/inst (frequency-dependent)")
    print(f"memory-boundedness = {estimate.memory_boundedness:.0%}, "
          f"R^2 = {estimate.r_squared:.3f} over {estimate.n_points} probe runs")

    # 5. stability of the paper's controller at the measured parameters
    print("\n=== Section-4 stability at the measured operating point ===")
    loop = ClosedLoopModel(
        controller=ControllerModel(step=0.2, t_m0=50.0, t_l0=8.0),
        service=estimate.service_model(),
        q_ref=4.0,
    )
    report = analyze(linearize(loop, f_op=0.6))
    print(report.summary())


if __name__ == "__main__":
    main()
