#!/usr/bin/env python
"""Design a controller with the Section-4 stability analysis.

Walks the paper's design flow: model the clock domain's mu-f relationship,
linearize the closed loop, inspect roots/damping/settling, and use Remark 3
to pick the basic time delays -- then verify the choice with a simulated
step response of the linearized loop and a trajectory of the full nonlinear
(saturating) model.

Run:  python examples/stability_design.py
"""

from repro.analysis import (
    ClosedLoopModel,
    ControllerModel,
    ServiceModel,
    analyze,
    linearize,
    recommended_delay_ratio_range,
    simulate_linear_step,
    simulate_nonlinear,
)


def main() -> None:
    # 1. characterize the domain: 20% of per-instruction time is
    #    frequency-independent (memory), the rest scales with the clock.
    service = ServiceModel(t1=0.2, c2=1.0)
    print("service model: mu(f) = f / (t1 f + c2),  "
          f"mu(1.0) = {service.mu(1.0):.3f}, mu(0.25) = {service.mu(0.25):.3f}")

    # 2. Remark 3: pick the delay ratio for damping in [0.5, 1].  The
    #    paper's worked example assumes K_l ~ 1/2; pick the aggregate step
    #    (which folds in the unit-conversion constants m, l) to land there.
    lo, hi = recommended_delay_ratio_range(k_l=0.5)
    print(f"\nRemark 3: with K_l ~ 1/2, choose T_m0/T_l0 in "
          f"[{lo:.0f}, {hi:.0f}] (paper uses 50/8 = 6.25)")
    t_l0 = 8.0
    k = service.k_approx(0.6)
    step = 0.5 * t_l0 / k  # makes K_l = k*step/T_l0 = 1/2

    # 3. analyze candidate designs across the delay-ratio range.
    print(f"\n{'T_m0/T_l0':>9} {'xi':>7} {'overshoot%':>11} "
          f"{'settling':>9} {'stable':>7}")
    for ratio in (1.0, 2.0, 6.25, 8.0, 16.0):
        loop = ClosedLoopModel(
            controller=ControllerModel(step=step, t_m0=ratio * t_l0, t_l0=t_l0),
            service=service,
            q_ref=4.0,
        )
        report = analyze(linearize(loop, f_op=0.6))
        print(f"{ratio:9.2f} {report.damping_ratio:7.3f} "
              f"{report.percent_overshoot:11.1f} {report.settling_time:9.0f} "
              f"{'yes' if report.stable else 'NO':>7}")

    # 4. verify the chosen design against simulation.
    chosen = ClosedLoopModel(
        controller=ControllerModel(step=step, t_m0=50.0, t_l0=8.0),
        service=service,
        q_ref=4.0,
    )
    system = linearize(chosen, f_op=0.6)
    report = analyze(system)
    response = simulate_linear_step(system, duration=6000.0, dt=0.05)
    print(f"\nchosen design (50/8): formula overshoot "
          f"{report.percent_overshoot:.1f}%, simulated "
          f"{response.overshoot_pct:.1f}%")

    # 5. nonlinear sanity: a load step from idle to 80% of peak service.
    target_load = 0.8 * service.mu(1.0)
    trajectory = simulate_nonlinear(
        chosen, load=lambda t: target_load, q0=0.0, f0=1.0,
        duration=30000.0, dt=0.5,
    )
    f_final = float(trajectory.second[-1])
    print(f"nonlinear load step: frequency settles at {f_final:.3f} "
          f"(mu = {service.mu(f_final):.3f}, load = {target_load:.3f}), "
          f"queue at {float(trajectory.q[-1]):.2f} (q_ref = 4)")


if __name__ == "__main__":
    main()
