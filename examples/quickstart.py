#!/usr/bin/env python
"""Quickstart: run one benchmark under adaptive DVFS and inspect the result.

This is the smallest end-to-end use of the public API:

1. pick a benchmark from the built-in MediaBench/SPEC2000 suite,
2. simulate it on the 4-domain MCD processor under the adaptive controller,
3. compare against the synchronous full-speed baseline.

Run:  python examples/quickstart.py
"""

from repro import run_experiment
from repro.mcd.domains import DomainId
from repro.power.metrics import (
    energy_savings_percent,
    performance_degradation_percent,
    edp_improvement_percent,
)

BENCHMARK = "gsm-decode"
WINDOW = 40_000  # instructions; small for a fast demo


def main() -> None:
    print(f"Simulating {BENCHMARK} ({WINDOW} instructions) ...")

    baseline = run_experiment(
        BENCHMARK, scheme="full-speed", max_instructions=WINDOW
    )
    adaptive = run_experiment(
        BENCHMARK, scheme="adaptive", max_instructions=WINDOW
    )

    print(f"\nbaseline : {baseline.time_ns / 1000:7.1f} us, "
          f"energy {baseline.energy.total:9.0f} units")
    print(f"adaptive : {adaptive.time_ns / 1000:7.1f} us, "
          f"energy {adaptive.energy.total:9.0f} units")

    base_m, run_m = baseline.metrics, adaptive.metrics
    print(f"\nenergy savings     : {energy_savings_percent(base_m, run_m):6.2f} %")
    print(f"perf degradation   : {performance_degradation_percent(base_m, run_m):6.2f} %")
    print(f"EDP improvement    : {edp_improvement_percent(base_m, run_m):6.2f} %")

    print("\nper-domain mean frequency under adaptive DVFS:")
    for domain in (DomainId.INT, DomainId.FP, DomainId.LS):
        freq = adaptive.mean_frequency_ghz[domain]
        transitions = adaptive.transitions[domain]
        print(f"  {domain.value:4s}: {freq:5.3f} GHz  ({transitions} transitions)")

    print(f"\nbranch mispredict rate : {adaptive.branch_mispredict_rate:.3f}")
    print(f"L1D miss rate          : {adaptive.l1d_miss_rate:.3f}")
    print(f"sync deferral rate     : {adaptive.sync_deferral_rate:.3f}")


if __name__ == "__main__":
    main()
