#!/usr/bin/env python
"""Compare the adaptive scheme against both fixed-interval baselines.

Reproduces the paper's core evaluation on a selectable set of benchmarks:
adaptive (this paper) vs attack/decay [Semeraro, MICRO'02] vs PID
[Wu, ASPLOS'04], all relative to the synchronous full-speed baseline.
Fast-varying media workloads are where the adaptive scheme's self-tuned
reaction time pays off.

Run:  python examples/scheme_comparison.py [benchmark ...]
      python examples/scheme_comparison.py gsm-decode mpeg2-decode mcf
"""

import sys

from repro.harness.comparison import compare_schemes
from repro.harness.reporting import format_table
from repro.workloads.suite import FAST_VARYING_GROUP

DEFAULT = ("gsm-decode", "mpeg2-decode", "gzip", "swim")
WINDOW = 60_000


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT)
    rows = []
    for name in names:
        print(f"simulating {name} under 4 schemes ...", flush=True)
        comp = compare_schemes(name, max_instructions=WINDOW)
        for scheme in ("adaptive", "attack-decay", "pid"):
            result = comp.result_for(scheme)
            rows.append(
                [
                    name + (" (fast)" if comp.fast_varying else ""),
                    scheme,
                    result.energy_savings_pct,
                    result.perf_degradation_pct,
                    result.edp_improvement_pct,
                    result.transitions,
                ]
            )
    print()
    print(
        format_table(
            ["benchmark", "scheme", "energy savings %", "perf degradation %",
             "EDP improvement %", "transitions"],
            rows,
            title="Online DVFS schemes vs full-speed baseline",
        )
    )
    print(f"\nfast-varying group in the suite: {', '.join(FAST_VARYING_GROUP)}")


if __name__ == "__main__":
    main()
