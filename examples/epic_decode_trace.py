#!/usr/bin/env python
"""Reproduce the paper's Figure 7: FP-domain frequency on epic-decode.

epic-decode's FP issue queue is empty except for two phases -- a modest
mid-run increase and a dramatic late burst.  The adaptive controller detects
each regime change from the queue signals alone and walks the FP frequency
accordingly: down toward f_min while the queue is empty, partway up in the
modest phase, and rapidly toward f_max when the burst fills the queue.

Run:  python examples/epic_decode_trace.py          (full 400k-instruction run)
      python examples/epic_decode_trace.py --quick  (truncated, ~5x faster)
"""

import sys

from repro import run_experiment, viz
from repro.mcd.domains import DomainId


def main() -> None:
    quick = "--quick" in sys.argv
    window = 80_000 if quick else None
    print("Simulating epic-decode under adaptive DVFS"
          + (" (quick mode)" if quick else "") + " ...")
    result = run_experiment(
        "epic-decode",
        scheme="adaptive",
        max_instructions=window,
        history_stride=32,
    )

    print("\nFP-domain frequency (paper Figure 7):\n")
    print(viz.frequency_trace(result, DomainId.FP, width=78, height=18))
    print("\nFP issue-queue occupancy:\n")
    print(viz.occupancy_trace(result, DomainId.FP, width=78))

    print(f"\nrun time            : {result.time_ns / 1000:.1f} us")
    print(f"mean FP frequency   : {result.mean_frequency_ghz[DomainId.FP]:.3f} GHz")
    print(f"FP DVFS transitions : {result.transitions[DomainId.FP]}")


if __name__ == "__main__":
    main()
