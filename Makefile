# Convenience targets.  All assume the package is installed
# (pip install -e . --no-build-isolation, or python setup.py develop).

.PHONY: install test bench examples quick-bench clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# the cheap benches only: parameters, analysis, hardware (no simulations)
quick-bench:
	pytest benchmarks/bench_table1_parameters.py \
	       benchmarks/bench_stability_analysis.py \
	       benchmarks/bench_hardware_cost.py \
	       benchmarks/bench_discrete_stability.py --benchmark-only

examples:
	python examples/quickstart.py
	python examples/stability_design.py
	python examples/epic_decode_trace.py --quick
	python examples/scheme_comparison.py gsm-decode
	python examples/custom_workload.py

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
