"""Per-signal finite-state machine with resettable time-delay counter.

Implements the left half of the paper's Figure 4 for one queue signal:

* **Wait** -- the signal is inside the deviation window; counter is reset.
* **Count-Up / Count-Down** -- the signal has been outside the window on the
  high/low side; the time-delay counter accumulates.  The counter resets if
  the signal returns inside the window, and restarts if the signal crosses to
  the opposite side.
* When the counter reaches the time delay, the FSM reports a **trigger**
  (+1 for Start-Up, -1 for Start-Down) and returns to Wait; the shared
  scheduler (see :mod:`repro.core.scheduler`) owns the Start/Act sequencing
  and the switching-time wait.

Two refinements from Section 5.1 are modelled exactly as the paper emulates
them in hardware:

* *signal-scaled delay* -- the counter increments by ``m * |signal|`` rather
  than 1, so large deviations trigger sooner (eq. 5's
  ``T_m = T_m0 / (m |q - q_ref|)``);
* *frequency-scaled count-down* -- the count-*down* increment is multiplied
  by ``f_hat^2``, making the effective delay ``1/f_hat^2`` longer at low
  frequency.
"""

from __future__ import annotations

import enum


class FsmState(enum.Enum):
    WAIT = "wait"
    COUNT_UP = "count_up"
    COUNT_DOWN = "count_down"


class TimeDelayFsm:
    """Deviation window + resettable time-delay counter for one signal."""

    def __init__(
        self,
        delay: float,
        deviation_window: float,
        scale: float = 1.0,
        signal_scaled: bool = True,
        freq_scaled_down: bool = True,
    ) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        if deviation_window < 0:
            raise ValueError("deviation window must be non-negative")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.delay = delay
        self.deviation_window = deviation_window
        self.scale = scale
        self.signal_scaled = signal_scaled
        self.freq_scaled_down = freq_scaled_down
        self.state = FsmState.WAIT
        self.counter = 0.0
        #: consecutive samples spent in the current counting state -- the
        #: dwell counter surfaced by the observability layer's FSM
        #: transition events (zero while in Wait)
        self.samples_in_state = 0

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.state = FsmState.WAIT
        self.counter = 0.0
        self.samples_in_state = 0

    def step(self, signal: float, f_rel: float) -> int:
        """Process one sample; return +1/-1 on an up/down trigger, else 0.

        ``f_rel`` is the current relative frequency f/f_max, used by the
        count-down scaling.
        """
        if not 0.0 < f_rel <= 1.0 + 1e-9:
            raise ValueError("f_rel must be in (0, 1]")

        if -self.deviation_window <= signal <= self.deviation_window:
            # Inside the window: reset (Figure 3's "Wait (reset)" arc).
            self.reset()
            return 0

        direction = 1 if signal > 0 else -1
        target_state = FsmState.COUNT_UP if direction > 0 else FsmState.COUNT_DOWN
        if self.state is not target_state:
            # Entering Count from Wait, or crossing sides: restart counting.
            self.state = target_state
            self.counter = 0.0
            self.samples_in_state = 0
        self.samples_in_state += 1

        increment = self.scale * (abs(signal) if self.signal_scaled else 1.0)
        if direction < 0 and self.freq_scaled_down:
            increment *= f_rel * f_rel
        self.counter += increment

        if self.counter >= self.delay:
            self.reset()
            return direction
        return 0
