"""The paper's contribution: adaptive-reaction-time online DVFS control.

One :class:`AdaptiveDvfsController` attaches to each controlled clock domain.
Every sampling period (250 MHz) it derives two queue signals -- the *level*
``q_i - q_ref`` and the *slope* ``q_i - q_{i-1}`` -- and runs each through a
small finite-state machine with a deviation window and a resettable,
signal- and frequency-scaled time-delay counter (paper Figures 3-4).  When a
signal stays outside its window long enough, a single +-step frequency change
triggers; a scheduler reconciles simultaneous triggers from the two FSMs
(same direction: combined double step; opposite: mutual cancellation).

Unlike fixed-interval schemes, nothing here is clocked by interval
boundaries: the controller reacts within a time delay of a severe swing and
stays inactive indefinitely when the workload is steady.
"""

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.core.signals import SignalMonitor, SignalSample
from repro.core.fsm import FsmState, TimeDelayFsm
from repro.core.scheduler import ActionScheduler, ScheduledAction
from repro.core.controller import AdaptiveDvfsController
from repro.core.hardware import (
    HardwareCost,
    adaptive_decision_logic_cost,
    pid_decision_logic_cost,
    attack_decay_decision_logic_cost,
)

__all__ = [
    "AdaptiveConfig",
    "default_adaptive_config",
    "SignalMonitor",
    "SignalSample",
    "FsmState",
    "TimeDelayFsm",
    "ActionScheduler",
    "ScheduledAction",
    "AdaptiveDvfsController",
    "HardwareCost",
    "adaptive_decision_logic_cost",
    "pid_decision_logic_cost",
    "attack_decay_decision_logic_cost",
]
