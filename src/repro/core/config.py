"""Configuration of the adaptive DVFS controller (paper Table 1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

from repro.mcd.domains import DomainId


@dataclass(frozen=True)
class AdaptiveConfig:
    """Parameters of one per-domain adaptive controller.

    Attributes
    ----------
    q_ref:
        Reference (nominal) queue occupancy.  Its position sets the
        energy/performance trade-off: higher is more aggressive at saving
        energy, lower preserves performance (paper Section 3.1).
    dw_level, dw_slope:
        Deviation-window half-widths for the level signal ``q - q_ref`` and
        the slope signal ``q_i - q_{i-1}``.  A signal triggers counting only
        when strictly outside ``[-DW, +DW]``.  Paper: +-1 and 0.
    t_m0, t_l0:
        Basic time delays (in sampling periods) for the level and slope
        signals.  Remark 3 of the stability analysis requires
        ``t_m0 / t_l0`` in roughly [2, 8]; the paper runs 50 and 8.
    m, l:
        Unit-conversion constants scaling the counter increments for the two
        signals (paper eqs 5-7); defaults of 1 use raw queue entries.
    signal_scaled_delay:
        Emulate the signal-magnitude-dependent delay by incrementing the
        time counter by ``|signal|`` instead of 1 each sample (paper
        Section 5.1).  Disabling this is the fixed-delay ablation.
    freq_scaled_down_delay:
        Scale the count-*down* delay by ``1/f_hat^2`` (equivalently, scale
        its counter increment by ``f_hat^2``): at low frequency the system is
        more cautious about scaling down further (paper Section 5.1).
    use_slope_signal:
        Ablation switch: disabling yields a level-only controller.
    combine_actions:
        Scheduler rule for simultaneous triggers: combine same-direction
        actions into a double step and cancel opposite ones (paper
        Section 3.1).  Disabling serializes level-signal-first.
    """

    q_ref: int = 4
    dw_level: float = 1.0
    dw_slope: float = 0.0
    t_m0: float = 50.0
    t_l0: float = 8.0
    m: float = 1.0
    l: float = 1.0
    signal_scaled_delay: bool = True
    freq_scaled_down_delay: bool = True
    use_slope_signal: bool = True
    combine_actions: bool = True

    def __post_init__(self) -> None:
        if self.q_ref < 0:
            raise ValueError("q_ref must be non-negative")
        if self.dw_level < 0 or self.dw_slope < 0:
            raise ValueError("deviation windows must be non-negative")
        if self.t_m0 <= 0 or self.t_l0 <= 0:
            raise ValueError("time delays must be positive")
        if self.m <= 0 or self.l <= 0:
            raise ValueError("conversion constants must be positive")

    @property
    def delay_ratio(self) -> float:
        """t_m0 / t_l0 -- the quantity Remark 3 constrains to [2, 8]."""
        return self.t_m0 / self.t_l0

    def with_delays(self, t_m0: float, t_l0: float) -> "AdaptiveConfig":
        """Copy with different basic time delays (for the Remark-3 sweep)."""
        return replace(self, t_m0=t_m0, t_l0=t_l0)


#: Paper Section 5.1: q_ref = 6 for INT (~1/3 of its 20-entry queue) and 4
#: for FP and LS (1/4 of their 16-entry queues), chosen to land the overall
#: performance degradation near the paper's target.
_DEFAULT_QREF = {
    DomainId.INT: 6,
    DomainId.FP: 4,
    DomainId.LS: 4,
}


def default_adaptive_config(domain: DomainId, **overrides: Any) -> AdaptiveConfig:
    """The paper's per-domain controller configuration."""
    if domain not in _DEFAULT_QREF:
        raise ValueError(f"{domain} is not a controlled domain")
    params: Dict[str, Any] = {"q_ref": _DEFAULT_QREF[domain]}
    params.update(overrides)
    return AdaptiveConfig(**params)


def transmeta_adaptive_config(domain: DomainId, **overrides: Any) -> AdaptiveConfig:
    """Controller tuning for Transmeta-style DVFS (paper Section 3).

    With slow transitions and a per-transition halt, "the triggering
    condition and adjustment step should be chosen as relatively high or
    big, in order to reduce the switching overhead": much longer basic
    delays and wider deviation windows than the XScale-style defaults, so
    only large, sustained workload changes trigger the (coarse) steps.
    """
    params: Dict[str, Any] = {
        "t_m0": 1000.0,
        "t_l0": 160.0,
        "dw_level": 2.0,
        "dw_slope": 2.0,
    }
    params.update(overrides)
    return default_adaptive_config(domain, **params)
