"""Queue-signal extraction.

The controller monitors two signals per sampling period (paper Section 3.1):

* the **level** signal ``q_i - q_ref`` -- how far occupancy sits from the
  nominal operating point; and
* the **slope** signal ``q_i - q_{i-1}`` -- how fast occupancy is moving.

The level signal detects a sustained speed mismatch between sender and
receiver domains; the slope signal detects a swing in progress, giving the
scheme its fast reaction to severe workload changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SignalSample:
    """The two queue signals derived from one occupancy sample."""

    occupancy: int
    level: float
    slope: float


class SignalMonitor:
    """Derives level and slope signals from a stream of occupancy samples."""

    def __init__(self, q_ref: float) -> None:
        if q_ref < 0:
            raise ValueError("q_ref must be non-negative")
        self.q_ref = q_ref
        self._prev: Optional[int] = None

    def sample(self, occupancy: int) -> SignalSample:
        """Record one occupancy sample and return the derived signals.

        The first sample has zero slope (there is no previous point).
        """
        if occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        prev = self._prev
        self._prev = occupancy
        slope = 0.0 if prev is None else float(occupancy - prev)
        return SignalSample(
            occupancy=occupancy,
            level=float(occupancy) - self.q_ref,
            slope=slope,
        )

    def reset(self) -> None:
        self._prev = None
