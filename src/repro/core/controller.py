"""The adaptive-reaction-time DVFS controller (paper Section 3).

Ties together the signal monitor, the two per-signal time-delay FSMs, and
the action scheduler into one per-domain controller implementing the
:class:`~repro.dvfs.base.DvfsController` interface.  Decision flow per 4 ns
sample:

1. derive the level signal ``q - q_ref`` and slope signal ``q_i - q_{i-1}``;
2. if an Act (physical frequency switch) is in progress, hold;
3. step each FSM (deviation window + resettable, signal/frequency-scaled
   time-delay counter);
4. reconcile triggers (combine identical, cancel opposite);
5. emit a +-1 or +-2 step command to the voltage regulator.

The controller is purely reactive: with a steady workload the signals sit
inside their deviation windows and nothing ever triggers -- the adaptive
scheme's "inactive for an arbitrarily long time" property.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.core.fsm import FsmState, TimeDelayFsm
from repro.core.scheduler import ActionScheduler
from repro.core.signals import SignalMonitor
from repro.dvfs.base import DvfsController, FrequencyCommand
from repro.mcd.domains import DomainId, MachineConfig


class AdaptiveDvfsController(DvfsController):
    """Per-domain adaptive online DVFS control."""

    def __init__(
        self,
        domain: DomainId,
        config: Optional[AdaptiveConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> None:
        super().__init__(domain)
        self.machine = machine or MachineConfig()
        self.config = config or default_adaptive_config(domain)
        self.monitor = SignalMonitor(q_ref=self.config.q_ref)
        self.level_fsm = TimeDelayFsm(
            delay=self.config.t_m0,
            deviation_window=self.config.dw_level,
            scale=self.config.m,
            signal_scaled=self.config.signal_scaled_delay,
            freq_scaled_down=self.config.freq_scaled_down_delay,
        )
        self.slope_fsm = TimeDelayFsm(
            delay=self.config.t_l0,
            deviation_window=self.config.dw_slope,
            scale=self.config.l,
            signal_scaled=self.config.signal_scaled_delay,
            freq_scaled_down=self.config.freq_scaled_down_delay,
        )
        # One controller step takes step_ghz * slew time to switch, plus any
        # Transmeta-style PLL-relock idle the machine imposes.
        self.scheduler = ActionScheduler(
            switching_time_ns=self.machine.step_switching_time_ns,
            combine_actions=self.config.combine_actions,
        )

    # ------------------------------------------------------------------

    @property
    def switching_time_ns(self) -> float:
        """T_s: physical switching time of a single step."""
        return self.scheduler.switching_time_ns

    def reset(self) -> None:
        super().reset()
        self.monitor.reset()
        self.level_fsm.reset()
        self.slope_fsm.reset()
        self.scheduler.reset()

    # ------------------------------------------------------------------

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        signals = self.monitor.sample(occupancy)
        if self.scheduler.busy(now_ns):
            # Act in progress: the FSMs hold until the switch completes
            # (Figure 4's "before T_s, any signal" self-loop).
            return None

        f_rel = min(1.0, freq_ghz / self.machine.f_max_ghz)
        probe = self.probe
        tracing = probe.enabled
        if tracing:
            level_was = self.level_fsm.state
            level_dwell = self.level_fsm.samples_in_state
            slope_was = self.slope_fsm.state
            slope_dwell = self.slope_fsm.samples_in_state
        level_trigger = self.level_fsm.step(signals.level, f_rel)
        slope_trigger = (
            self.slope_fsm.step(signals.slope, f_rel)
            if self.config.use_slope_signal
            else 0
        )
        if tracing:
            self._trace_fsm(
                now_ns, "level", level_was, level_dwell,
                self.level_fsm.state, level_trigger,
            )
            if self.config.use_slope_signal:
                self._trace_fsm(
                    now_ns, "slope", slope_was, slope_dwell,
                    self.slope_fsm.state, slope_trigger,
                )

        action = self.scheduler.reconcile(now_ns, level_trigger, slope_trigger)
        if action is None:
            if level_trigger and slope_trigger and level_trigger != slope_trigger:
                # Mutual cancellation resets both signals to Wait.
                self.level_fsm.reset()
                self.slope_fsm.reset()
                if tracing:
                    self._trace_reconcile(
                        now_ns, level_trigger, slope_trigger, "cancel", 0
                    )
            return None
        if tracing:
            outcome = "combine" if level_trigger and slope_trigger else "single"
            self._trace_reconcile(
                now_ns, level_trigger, slope_trigger, outcome, action.steps
            )
        return self._issue(FrequencyCommand(steps=action.steps))

    # -- observability -------------------------------------------------

    def _trace_fsm(
        self,
        now_ns: float,
        signal: str,
        was: FsmState,
        dwell: int,
        state: FsmState,
        trigger: int,
    ) -> None:
        """Publish one FSM state change (or trigger) as a transition event.

        ``was``/``dwell`` are the pre-step state and its dwell counter; on
        a trigger the FSM has already reset itself, so the length of the
        counting run that just fired is reconstructed here (the triggering
        sample itself counts; a side-crossing trigger restarts at 1).
        """
        if trigger == 0 and state is was:
            return
        if trigger:
            same_side = (was is FsmState.COUNT_UP and trigger > 0) or (
                was is FsmState.COUNT_DOWN and trigger < 0
            )
            dwell = dwell + 1 if same_side else 1
        self.probe.event(
            "fsm_transition",
            now_ns,
            domain=self.domain.value,
            signal=signal,
            from_state=was.value,
            to_state=state.value,
            dwell_samples=dwell,
            trigger=trigger,
        )
        self.probe.count(f"fsm_transitions.{self.domain.value}")
        if trigger:
            self.probe.histogram(
                f"fsm_dwell_samples.{signal}.{self.domain.value}", dwell
            )

    def _trace_reconcile(
        self,
        now_ns: float,
        level_trigger: int,
        slope_trigger: int,
        outcome: str,
        steps: int,
    ) -> None:
        """Publish one scheduler reconcile decision."""
        self.probe.event(
            "reconcile",
            now_ns,
            domain=self.domain.value,
            level_trigger=level_trigger,
            slope_trigger=slope_trigger,
            outcome=outcome,
            steps=steps,
        )
        self.probe.count(f"reconcile.{outcome}.{self.domain.value}")
