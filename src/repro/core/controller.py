"""The adaptive-reaction-time DVFS controller (paper Section 3).

Ties together the signal monitor, the two per-signal time-delay FSMs, and
the action scheduler into one per-domain controller implementing the
:class:`~repro.dvfs.base.DvfsController` interface.  Decision flow per 4 ns
sample:

1. derive the level signal ``q - q_ref`` and slope signal ``q_i - q_{i-1}``;
2. if an Act (physical frequency switch) is in progress, hold;
3. step each FSM (deviation window + resettable, signal/frequency-scaled
   time-delay counter);
4. reconcile triggers (combine identical, cancel opposite);
5. emit a +-1 or +-2 step command to the voltage regulator.

The controller is purely reactive: with a steady workload the signals sit
inside their deviation windows and nothing ever triggers -- the adaptive
scheme's "inactive for an arbitrarily long time" property.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.core.fsm import TimeDelayFsm
from repro.core.scheduler import ActionScheduler
from repro.core.signals import SignalMonitor
from repro.dvfs.base import DvfsController, FrequencyCommand
from repro.mcd.domains import DomainId, MachineConfig


class AdaptiveDvfsController(DvfsController):
    """Per-domain adaptive online DVFS control."""

    def __init__(
        self,
        domain: DomainId,
        config: Optional[AdaptiveConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> None:
        super().__init__(domain)
        self.machine = machine or MachineConfig()
        self.config = config or default_adaptive_config(domain)
        self.monitor = SignalMonitor(q_ref=self.config.q_ref)
        self.level_fsm = TimeDelayFsm(
            delay=self.config.t_m0,
            deviation_window=self.config.dw_level,
            scale=self.config.m,
            signal_scaled=self.config.signal_scaled_delay,
            freq_scaled_down=self.config.freq_scaled_down_delay,
        )
        self.slope_fsm = TimeDelayFsm(
            delay=self.config.t_l0,
            deviation_window=self.config.dw_slope,
            scale=self.config.l,
            signal_scaled=self.config.signal_scaled_delay,
            freq_scaled_down=self.config.freq_scaled_down_delay,
        )
        # One controller step takes step_ghz * slew time to switch, plus any
        # Transmeta-style PLL-relock idle the machine imposes.
        self.scheduler = ActionScheduler(
            switching_time_ns=self.machine.step_switching_time_ns,
            combine_actions=self.config.combine_actions,
        )

    # ------------------------------------------------------------------

    @property
    def switching_time_ns(self) -> float:
        """T_s: physical switching time of a single step."""
        return self.scheduler.switching_time_ns

    def reset(self) -> None:
        super().reset()
        self.monitor.reset()
        self.level_fsm.reset()
        self.slope_fsm.reset()
        self.scheduler.reset()

    # ------------------------------------------------------------------

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        signals = self.monitor.sample(occupancy)
        if self.scheduler.busy(now_ns):
            # Act in progress: the FSMs hold until the switch completes
            # (Figure 4's "before T_s, any signal" self-loop).
            return None

        f_rel = min(1.0, freq_ghz / self.machine.f_max_ghz)
        level_trigger = self.level_fsm.step(signals.level, f_rel)
        slope_trigger = (
            self.slope_fsm.step(signals.slope, f_rel)
            if self.config.use_slope_signal
            else 0
        )

        action = self.scheduler.reconcile(now_ns, level_trigger, slope_trigger)
        if action is None:
            if level_trigger and slope_trigger and level_trigger != slope_trigger:
                # Mutual cancellation resets both signals to Wait.
                self.level_fsm.reset()
                self.slope_fsm.reset()
            return None
        return self._issue(FrequencyCommand(steps=action.steps))
