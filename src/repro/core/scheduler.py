"""Reconciliation of the two per-signal FSMs' actions (paper Section 3.1).

The paper adds a *Schedule* state between the FSMs and the voltage regulator:

* one FSM triggering alone starts its action normally;
* two **identical** simultaneous triggers (both Up or both Down) are combined
  into one action with twice the step size (equivalently, scheduled in
  sequence);
* two **opposite** simultaneous triggers cancel, and both FSMs reset to Wait.

While a switch is physically in progress (the Act state, lasting the
switching time ``T_s`` per step), the controller holds: new triggers are not
evaluated until the action completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ScheduledAction:
    """A reconciled frequency action: net steps and its completion time."""

    steps: int
    completes_ns: float


class ActionScheduler:
    """Combines per-signal triggers into regulator actions."""

    def __init__(self, switching_time_ns: float, combine_actions: bool = True) -> None:
        if switching_time_ns < 0:
            raise ValueError("switching time must be non-negative")
        self.switching_time_ns = switching_time_ns
        self.combine_actions = combine_actions
        self._busy_until_ns = 0.0
        self.actions = 0
        self.cancellations = 0
        self.combined = 0

    # ------------------------------------------------------------------

    def busy(self, now_ns: float) -> bool:
        """Is an Act (physical switch) still in progress at ``now_ns``?"""
        return now_ns < self._busy_until_ns

    def reconcile(
        self, now_ns: float, level_trigger: int, slope_trigger: int
    ) -> Optional[ScheduledAction]:
        """Resolve the two FSM triggers into at most one action.

        Trigger values are -1, 0 or +1.  Returns ``None`` when no action
        results (no triggers, or mutual cancellation).
        """
        for trigger in (level_trigger, slope_trigger):
            if trigger not in (-1, 0, 1):
                raise ValueError("triggers must be -1, 0 or +1")

        if level_trigger == 0 and slope_trigger == 0:
            return None

        if level_trigger and slope_trigger:
            if level_trigger != slope_trigger:
                self.cancellations += 1
                return None
            if self.combine_actions:
                steps = level_trigger + slope_trigger
                self.combined += 1
            else:
                steps = level_trigger  # serialize: level-signal action first
        else:
            steps = level_trigger or slope_trigger

        self._busy_until_ns = now_ns + self.switching_time_ns * abs(steps)
        self.actions += 1
        return ScheduledAction(steps=steps, completes_ns=self._busy_until_ns)

    def reset(self) -> None:
        self._busy_until_ns = 0.0
        self.actions = 0
        self.cancellations = 0
        self.combined = 0
