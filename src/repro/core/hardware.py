"""Hardware-cost model of the DVFS decision logic (paper Figure 5).

The paper argues its decision process "leads to smaller and cheaper
hardware": per controlled domain it needs only a 6-bit adder (queue sizes
are ~20 < 2^6), a 7-bit comparator against the deviation window, a 5-state
FSM and an 8-bit time-delay counter -- book-keeping hardware comparable to
what fixed-interval schemes already need, whereas those schemes additionally
need per-interval arithmetic (the PID controller of [23] needs
multipliers/dividers or lookup tables).

This module quantifies that comparison with standard gate-count estimates so
the claim is checkable, and so the repository exposes the Figure-5 block
diagram as executable structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mcd.domains import MachineConfig

# Conventional NAND2-equivalent gate counts for standard blocks.
GATES_PER_FULL_ADDER = 5
GATES_PER_COMPARATOR_BIT = 4
GATES_PER_REGISTER_BIT = 6  # flip-flop
GATES_PER_COUNTER_BIT = 8  # flip-flop + increment logic
GATES_PER_FSM_STATE_BIT = 12  # state register + next-state logic share
GATES_PER_MULTIPLIER_BIT2 = 6  # array multiplier ~6 gates per bit^2
GATES_PER_LUT_ENTRY_BIT = 1.5  # ROM lookup table


@dataclass(frozen=True)
class HardwareCost:
    """Gate-count breakdown of one domain's decision logic."""

    scheme: str
    blocks: Tuple[Tuple[str, int], ...]

    @property
    def total_gates(self) -> int:
        return sum(gates for _, gates in self.blocks)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.blocks)


def _bits_for(value: int) -> int:
    """Bits needed to represent 0..value."""
    return max(1, math.ceil(math.log2(value + 1)))


def adaptive_decision_logic_cost(
    machine: Optional[MachineConfig] = None,
    queue_size: int = 20,
    delay_max: int = 256,
) -> HardwareCost:
    """Gate count of the adaptive scheme's per-domain logic (Figure 5).

    One adder computes the trigger signal (shared between the two signals by
    muxing q_ref / q_{i-1}), one comparator checks it against the deviation
    window, a 5-state FSM and a time-delay counter complete the datapath --
    per monitored signal.
    """
    if machine is not None:
        queue_size = max(
            machine.int_queue_size, machine.fp_queue_size, machine.ls_queue_size
        )
    adder_bits = _bits_for(queue_size)  # 6-bit for a ~20-entry queue
    signal_bits = adder_bits + 1  # 7-bit signed trigger signal
    counter_bits = _bits_for(delay_max - 1)  # 8-bit for delays up to 256
    fsm_state_bits = _bits_for(5 - 1)  # 5 states -> 3 bits

    per_signal = (
        ("adder", adder_bits * GATES_PER_FULL_ADDER),
        ("comparator", signal_bits * GATES_PER_COMPARATOR_BIT),
        ("prev-sample register", adder_bits * GATES_PER_REGISTER_BIT),
        ("delay counter", counter_bits * GATES_PER_COUNTER_BIT),
        ("fsm", fsm_state_bits * GATES_PER_FSM_STATE_BIT),
    )
    blocks: List[Tuple[str, int]] = []
    for name, gates in per_signal:
        blocks.append((f"level {name}", gates))
        blocks.append((f"slope {name}", gates))
    blocks.append(("scheduler", 2 * fsm_state_bits * GATES_PER_FSM_STATE_BIT))
    return HardwareCost(scheme="adaptive", blocks=tuple(blocks))


def pid_decision_logic_cost(
    word_bits: int = 16, accumulator_samples: int = 2500
) -> HardwareCost:
    """Gate count of the PID fixed-interval scheme's per-domain logic.

    Beyond the same occupancy book-keeping, the PID law needs per-interval
    arithmetic: an occupancy accumulator, three constant multipliers (or an
    equivalent lookup table) and an output adder at a control word width.
    """
    accum_bits = word_bits + _bits_for(accumulator_samples - 1)
    blocks = (
        ("occupancy accumulator", accum_bits * GATES_PER_COUNTER_BIT),
        ("interval counter", _bits_for(accumulator_samples - 1) * GATES_PER_COUNTER_BIT),
        ("error registers (e1,e2)", 2 * word_bits * GATES_PER_REGISTER_BIT),
        ("gain multipliers (x3)", 3 * word_bits * word_bits * GATES_PER_MULTIPLIER_BIT2),
        ("output adder", word_bits * GATES_PER_FULL_ADDER),
    )
    return HardwareCost(scheme="pid", blocks=blocks)


def attack_decay_decision_logic_cost(
    word_bits: int = 16, accumulator_samples: int = 2500
) -> HardwareCost:
    """Gate count of the attack/decay fixed-interval scheme's logic.

    Needs the interval book-keeping plus one multiplier for the attack/decay
    scaling of the frequency word.
    """
    accum_bits = word_bits + _bits_for(accumulator_samples - 1)
    blocks = (
        ("occupancy accumulator", accum_bits * GATES_PER_COUNTER_BIT),
        ("interval counter", _bits_for(accumulator_samples - 1) * GATES_PER_COUNTER_BIT),
        ("previous-utilization register", word_bits * GATES_PER_REGISTER_BIT),
        ("threshold comparator", word_bits * GATES_PER_COMPARATOR_BIT),
        ("scale multiplier", word_bits * word_bits * GATES_PER_MULTIPLIER_BIT2),
    )
    return HardwareCost(scheme="attack-decay", blocks=blocks)
