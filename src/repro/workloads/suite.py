"""Named benchmark specifications (the paper's Table 2 population).

The paper evaluates 6 MediaBench, 6 SPEC2000int and 5 SPEC2000fp programs.
Each spec below encodes the published workload traits that matter to a
queue-driven DVFS controller.  Two traits are load-bearing for the paper's
results and are therefore modelled carefully:

* **epic-decode** (the Figure 7/8 exemplar): the FP issue queue is empty
  except for two distinct phases -- one modest mid-run increase and one
  dramatic late burst (paper Section 5.1).
* **fast-varying group** (Section 5.2): media codecs process small frames or
  sample blocks, so their domain workloads swing on a microsecond scale --
  shorter than a fixed-interval controller's interval.  These are built from
  many short alternating phases and carry ``fast_varying=True``.

Default lengths are ~100-200k instructions (the ~100x instruction-count
scaling documented in DESIGN.md); the harness may truncate further for quick
runs, preserving phase proportions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec

# ----------------------------------------------------------------------
# mix presets
# ----------------------------------------------------------------------

INT_MIX = {K.INT_ALU: 0.52, K.INT_MUL: 0.02, K.LOAD: 0.20, K.STORE: 0.10, K.BRANCH: 0.16}
INT_MEM_MIX = {K.INT_ALU: 0.34, K.LOAD: 0.34, K.STORE: 0.14, K.BRANCH: 0.18}
FP_MIX = {K.FP_ADD: 0.26, K.FP_MUL: 0.16, K.FP_DIV: 0.02, K.INT_ALU: 0.22,
          K.LOAD: 0.22, K.STORE: 0.06, K.BRANCH: 0.06}
FP_HEAVY_MIX = {K.FP_ADD: 0.36, K.FP_MUL: 0.24, K.FP_DIV: 0.03, K.FP_SQRT: 0.01,
                K.INT_ALU: 0.12, K.LOAD: 0.18, K.STORE: 0.04, K.BRANCH: 0.02}
FP_TRICKLE_MIX = {K.FP_ADD: 0.13, K.FP_MUL: 0.07, K.INT_ALU: 0.36, K.LOAD: 0.22,
                  K.STORE: 0.09, K.BRANCH: 0.13}
MEM_BOUND_MIX = {K.INT_ALU: 0.24, K.LOAD: 0.44, K.STORE: 0.12, K.BRANCH: 0.20}


def _phase(name: str, length: int, mix: Dict[K, float], **kw: object) -> PhaseSpec:
    return PhaseSpec(name=name, length=length, mix=mix, **kw)  # type: ignore[arg-type]


def _alternating(
    names: Tuple[str, str],
    mixes: Tuple[Dict[K, float], Dict[K, float]],
    burst: int,
    repeats: int,
    **kw: object,
) -> List[PhaseSpec]:
    """Build the short alternating-phase trains of the fast-varying group.

    The two phase objects are *reused* across repetitions (same name, hence
    the same static code layout): the program re-executes the same two
    kernels over and over, so branch predictors and caches stay warm across
    bursts -- only the workload character swings.
    """
    first = _phase(names[0], burst, mixes[0], **kw)
    second = _phase(names[1], burst, mixes[1], **kw)
    phases: List[PhaseSpec] = []
    for _ in range(repeats):
        phases.append(first)
        phases.append(second)
    return phases


# ----------------------------------------------------------------------
# MediaBench (6)
# ----------------------------------------------------------------------

_EPIC_DECODE = BenchmarkSpec(
    name="epic-decode",
    suite="mediabench",
    fast_varying=False,
    notes=(
        "FP queue empty except two phases: a modest mid-run increase and a "
        "dramatic late burst (paper Sec 5.1, Fig 7)."
    ),
    # epic is scaled less aggressively than the rest of the suite (~12x vs
    # ~100x): every phase -- including the dramatic FP burst -- must outlast
    # the regulator's 55 us full-range ramp (73.3 ns/MHz x 750 MHz), or the
    # ramp transient dominates the phase and distorts both Figure 7's shape
    # and the energy/performance numbers.
    phases=(
        _phase("int-head", 180_000, INT_MIX, mean_dep_distance=3.0),
        _phase("fp-modest", 120_000, FP_TRICKLE_MIX, mean_dep_distance=4.0),
        _phase("int-mid", 280_000, INT_MIX, mean_dep_distance=3.0),
        _phase("fp-burst", 140_000, FP_HEAVY_MIX, mean_dep_distance=6.0),
        _phase("int-tail", 80_000, INT_MIX, mean_dep_distance=3.0),
    ),
)

_ADPCM_ENCODE = BenchmarkSpec(
    name="adpcm-encode",
    suite="mediabench",
    fast_varying=True,
    notes=(
        "Tiny per-sample kernel: alternates short compute bursts with "
        "sequential I/O-like access runs every few thousand instructions."
    ),
    phases=tuple(
        _alternating(
            ("compute", "stream"),
            (
                {K.INT_ALU: 0.58, K.INT_MUL: 0.04, K.LOAD: 0.16, K.STORE: 0.08, K.BRANCH: 0.14},
                MEM_BOUND_MIX,
            ),
            burst=2_500,
            repeats=24,
            working_set=16 * 1024,
            code_footprint=2 * 1024,
        )
    ),
)

_G721_ENCODE = BenchmarkSpec(
    name="g721-encode",
    suite="mediabench",
    fast_varying=False,
    notes="Steady integer DSP kernel with long multiply chains; little phase change.",
    phases=(
        _phase(
            "steady",
            110_000,
            {K.INT_ALU: 0.48, K.INT_MUL: 0.10, K.LOAD: 0.20, K.STORE: 0.08, K.BRANCH: 0.14},
            mean_dep_distance=2.5,
            code_footprint=4 * 1024,
            working_set=8 * 1024,
        ),
    ),
)

_GSM_DECODE = BenchmarkSpec(
    name="gsm-decode",
    suite="mediabench",
    fast_varying=True,
    notes=(
        "Per-frame LTP/synthesis filter alternation: short high-ILP multiply "
        "bursts against low-ILP control sections, ~1.5k-instruction frames."
    ),
    phases=tuple(
        _alternating(
            ("filter", "control"),
            (
                {K.INT_ALU: 0.40, K.INT_MUL: 0.22, K.LOAD: 0.22, K.STORE: 0.06, K.BRANCH: 0.10},
                {K.INT_ALU: 0.44, K.LOAD: 0.22, K.STORE: 0.10, K.BRANCH: 0.24},
            ),
            burst=1_500,
            repeats=40,
            working_set=12 * 1024,
            code_footprint=6 * 1024,
        )
    ),
)

_JPEG_ENCODE = BenchmarkSpec(
    name="jpeg-encode",
    suite="mediabench",
    fast_varying=True,
    notes=(
        "Per-block pipeline: DCT (mul-heavy, high ILP) then quantize/Huffman "
        "(branchy, serial), alternating every ~2k instructions."
    ),
    phases=tuple(
        _alternating(
            ("dct", "huffman"),
            (
                {K.INT_ALU: 0.34, K.INT_MUL: 0.26, K.LOAD: 0.26, K.STORE: 0.08, K.BRANCH: 0.06},
                {K.INT_ALU: 0.42, K.LOAD: 0.20, K.STORE: 0.08, K.BRANCH: 0.30},
            ),
            burst=2_000,
            repeats=30,
            working_set=64 * 1024,
            code_footprint=12 * 1024,
        )
    ),
)

_MPEG2_DECODE = BenchmarkSpec(
    name="mpeg2-decode",
    suite="mediabench",
    fast_varying=True,
    notes=(
        "Macroblock loop: IDCT/motion-compensation bursts (some FP in the "
        "reference decoder) against bitstream parsing, ~3k-instruction swings."
    ),
    phases=tuple(
        _alternating(
            ("idct", "parse"),
            (
                {K.FP_ADD: 0.12, K.FP_MUL: 0.08, K.INT_ALU: 0.30, K.LOAD: 0.32,
                 K.STORE: 0.12, K.BRANCH: 0.06},
                {K.INT_ALU: 0.46, K.LOAD: 0.20, K.STORE: 0.06, K.BRANCH: 0.28},
            ),
            burst=3_000,
            repeats=20,
            working_set=256 * 1024,
            code_footprint=24 * 1024,
        )
    ),
)

_MESA_MIPMAP = BenchmarkSpec(
    name="mesa-mipmap",
    suite="mediabench",
    fast_varying=False,
    notes="3D rasterization: sustained mixed FP/INT with a large texture working set.",
    phases=(
        _phase("raster", 60_000, FP_MIX, working_set=512 * 1024, mean_dep_distance=4.5),
        _phase("setup", 20_000, INT_MIX, working_set=64 * 1024),
        _phase("raster2", 50_000, FP_MIX, working_set=512 * 1024, mean_dep_distance=4.5),
    ),
)

# ----------------------------------------------------------------------
# SPEC2000int (6)
# ----------------------------------------------------------------------

_BZIP2 = BenchmarkSpec(
    name="bzip2",
    suite="spec2000int",
    fast_varying=False,
    notes="Block-sort compression: long sort phase (memory heavy) then Huffman phase.",
    phases=(
        _phase("sort", 60_000, MEM_BOUND_MIX, working_set=1024 * 1024,
               stride_fraction=0.35, mean_dep_distance=3.5),
        _phase("huffman", 40_000, INT_MIX, working_set=128 * 1024,
               branch_entropy=0.12),
    ),
)

_GCC = BenchmarkSpec(
    name="gcc",
    suite="spec2000int",
    fast_varying=False,
    notes="Pointer-chasing, branchy, large code footprint (I-cache pressure).",
    phases=(
        _phase("parse", 35_000, INT_MIX, code_footprint=192 * 1024,
               working_set=512 * 1024, branch_entropy=0.15, stride_fraction=0.3),
        _phase("optimize", 45_000, INT_MEM_MIX, code_footprint=192 * 1024,
               working_set=768 * 1024, branch_entropy=0.12, stride_fraction=0.25),
        _phase("emit", 25_000, INT_MIX, code_footprint=96 * 1024,
               working_set=256 * 1024, branch_entropy=0.10),
    ),
)

_GZIP = BenchmarkSpec(
    name="gzip",
    suite="spec2000int",
    fast_varying=False,
    notes="LZ77 matching: steady integer/load mix, moderate working set.",
    phases=(
        _phase("deflate", 70_000, INT_MEM_MIX, working_set=192 * 1024,
               stride_fraction=0.5, mean_dep_distance=3.0),
        _phase("inflate", 30_000, INT_MIX, working_set=64 * 1024),
    ),
)

_MCF = BenchmarkSpec(
    name="mcf",
    suite="spec2000int",
    fast_varying=False,
    notes="Network simplex: dominated by random pointer loads over a huge arena.",
    phases=(
        _phase("simplex", 100_000, MEM_BOUND_MIX, working_set=8 * 1024 * 1024,
               stride_fraction=0.05, mean_dep_distance=2.2, branch_entropy=0.10),
    ),
)

_PARSER = BenchmarkSpec(
    name="parser",
    suite="spec2000int",
    fast_varying=False,
    notes="Dictionary lookups and recursive linkage: branchy with random access.",
    phases=(
        _phase("link", 90_000, INT_MEM_MIX, working_set=1024 * 1024,
               stride_fraction=0.2, branch_entropy=0.14, mean_dep_distance=2.8),
    ),
)

_VPR = BenchmarkSpec(
    name="vpr",
    suite="spec2000int",
    fast_varying=False,
    notes="Place-and-route: alternating long placement and routing phases.",
    phases=(
        _phase("place", 55_000, INT_MIX, working_set=512 * 1024,
               branch_entropy=0.10, mean_dep_distance=3.5),
        _phase("route", 45_000, MEM_BOUND_MIX, working_set=1024 * 1024,
               stride_fraction=0.25),
    ),
)

# ----------------------------------------------------------------------
# SPEC2000fp (5)
# ----------------------------------------------------------------------

_APPLU = BenchmarkSpec(
    name="applu",
    suite="spec2000fp",
    fast_varying=False,
    notes="Dense PDE solver: sustained high-ILP FP with strided array sweeps.",
    phases=(
        _phase("sweep", 100_000, FP_HEAVY_MIX, working_set=2 * 1024 * 1024,
               stride_fraction=0.9, mean_dep_distance=6.0, branch_entropy=0.02),
    ),
)

_ART = BenchmarkSpec(
    name="art",
    suite="spec2000fp",
    fast_varying=True,
    notes=(
        "Neural-net image match: scan/match alternation per F1 layer pass -- "
        "short FP bursts against memory-bound scans (~2.5k instructions)."
    ),
    phases=tuple(
        _alternating(
            ("match", "scan"),
            (FP_HEAVY_MIX, MEM_BOUND_MIX),
            burst=2_500,
            repeats=20,
            working_set=4 * 1024 * 1024,
            stride_fraction=0.6,
        )
    ),
)

_EQUAKE = BenchmarkSpec(
    name="equake",
    suite="spec2000fp",
    fast_varying=False,
    notes="Sparse matrix-vector FP with irregular loads; steady per-timestep profile.",
    phases=(
        _phase("smvp", 90_000, FP_MIX, working_set=4 * 1024 * 1024,
               stride_fraction=0.3, mean_dep_distance=3.5),
    ),
)

_SWIM = BenchmarkSpec(
    name="swim",
    suite="spec2000fp",
    fast_varying=False,
    notes="Shallow-water stencil: very regular high-ILP FP, large strided arrays.",
    phases=(
        _phase("stencil", 100_000, FP_HEAVY_MIX, working_set=8 * 1024 * 1024,
               stride_fraction=0.95, mean_dep_distance=8.0, branch_entropy=0.01),
    ),
)

_APSI = BenchmarkSpec(
    name="apsi",
    suite="spec2000fp",
    fast_varying=False,
    notes="Meteorology code: FP compute phases separated by integer setup phases.",
    phases=(
        _phase("setup", 20_000, INT_MIX, working_set=128 * 1024),
        _phase("fp-a", 40_000, FP_MIX, working_set=1024 * 1024, stride_fraction=0.8),
        _phase("setup2", 15_000, INT_MIX, working_set=128 * 1024),
        _phase("fp-b", 35_000, FP_HEAVY_MIX, working_set=1024 * 1024, stride_fraction=0.8),
    ),
)

# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

MEDIABENCH: Tuple[BenchmarkSpec, ...] = (
    _ADPCM_ENCODE, _EPIC_DECODE, _G721_ENCODE, _GSM_DECODE, _JPEG_ENCODE, _MPEG2_DECODE,
)
SPEC2000_INT: Tuple[BenchmarkSpec, ...] = (_BZIP2, _GCC, _GZIP, _MCF, _PARSER, _VPR)
SPEC2000_FP: Tuple[BenchmarkSpec, ...] = (_APPLU, _ART, _EQUAKE, _SWIM, _APSI)

# mesa appears in MediaBench in some MCD studies; keep it addressable by name
# without inflating the 6/6/5 counts of Table 2.
_EXTRAS: Tuple[BenchmarkSpec, ...] = (_MESA_MIPMAP,)

BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in MEDIABENCH + SPEC2000_INT + SPEC2000_FP + _EXTRAS
}

FAST_VARYING_GROUP: Tuple[str, ...] = tuple(
    spec.name for spec in MEDIABENCH + SPEC2000_INT + SPEC2000_FP if spec.fast_varying
)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by its Table 2 name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
