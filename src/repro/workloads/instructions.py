"""Instruction records consumed by the MCD processor simulator.

A trace is a sequence of :class:`Instruction` objects.  Each instruction
carries only what the simulator needs: an opcode class (which selects the
execution domain and functional-unit latency), register dependences expressed
as absolute producer indices within the trace, an effective address for memory
operations, and outcome/target for branches.  Addresses and branch outcomes
are *inputs* to the cache and branch-predictor substrates -- hits, misses and
mispredictions are decided by those models, not by the trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class InstructionKind(enum.Enum):
    """Opcode classes, mirroring the functional units of the paper's Table 1."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"

    @property
    def is_fp(self) -> bool:
        return self in _FP_KINDS

    @property
    def is_mem(self) -> bool:
        return self in (InstructionKind.LOAD, InstructionKind.STORE)

    @property
    def is_int(self) -> bool:
        return self in _INT_KINDS


_FP_KINDS = frozenset(
    {
        InstructionKind.FP_ADD,
        InstructionKind.FP_MUL,
        InstructionKind.FP_DIV,
        InstructionKind.FP_SQRT,
    }
)

_INT_KINDS = frozenset(
    {
        InstructionKind.INT_ALU,
        InstructionKind.INT_MUL,
        InstructionKind.INT_DIV,
        InstructionKind.BRANCH,
    }
)


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction in a trace.

    Attributes
    ----------
    index:
        Position of this instruction in the trace (0-based).
    kind:
        Opcode class; selects execution domain and latency.
    pc:
        Instruction address (byte address).  Drives the I-cache and the
        branch predictor.
    src1, src2:
        Absolute trace indices of the producers of the two source operands,
        or ``None`` when an operand is immediate/unused or its producer has
        left the window.  Producers always precede the consumer
        (``src < index``).
    addr:
        Effective address for LOAD/STORE, otherwise ``None``.
    taken:
        Actual branch outcome (BRANCH only).
    target:
        Branch target PC (BRANCH only; meaningful when ``taken``).
    """

    index: int
    kind: InstructionKind
    pc: int
    src1: Optional[int] = None
    src2: Optional[int] = None
    addr: Optional[int] = None
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        if self.src1 is not None and self.src1 >= self.index:
            raise ValueError(
                f"src1 ({self.src1}) must precede instruction {self.index}"
            )
        if self.src2 is not None and self.src2 >= self.index:
            raise ValueError(
                f"src2 ({self.src2}) must precede instruction {self.index}"
            )
        if self.kind.is_mem and self.addr is None:
            raise ValueError(f"{self.kind} at index {self.index} requires addr")
