"""Synthetic benchmark workloads.

The paper evaluates on MediaBench and SPEC2000 binaries run under a
SimpleScalar-derived simulator.  Real binaries and reference inputs are not
available here, so this package provides the documented substitution: a
deterministic, phase-driven instruction-trace generator
(:mod:`repro.workloads.generator`) plus one named specification per benchmark
(:mod:`repro.workloads.suite`) encoding the published workload traits that
matter to a queue-driven DVFS controller -- instruction mix, ILP, working-set
size, branch behaviour, and phase structure over time.
"""

from repro.workloads.instructions import Instruction, InstructionKind
from repro.workloads.phases import PhaseSpec, BenchmarkSpec
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.suite import (
    BENCHMARKS,
    MEDIABENCH,
    SPEC2000_INT,
    SPEC2000_FP,
    get_benchmark,
)
from repro.workloads.stats import TraceStats, analyze_trace, format_stats
from repro.workloads.traceio import load_trace, save_trace

__all__ = [
    "Instruction",
    "InstructionKind",
    "PhaseSpec",
    "BenchmarkSpec",
    "TraceGenerator",
    "generate_trace",
    "BENCHMARKS",
    "MEDIABENCH",
    "SPEC2000_INT",
    "SPEC2000_FP",
    "get_benchmark",
    "TraceStats",
    "analyze_trace",
    "format_stats",
    "load_trace",
    "save_trace",
]
