"""Trace statistics: summarize what a workload asks of the machine.

Used to validate that generated traces realize their specs (the tests do
exactly that) and to characterize custom workloads before running them --
mix, dependence structure, code/data footprints and branch behaviour are
the quantities that drive queue dynamics and hence DVFS behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from repro.workloads.instructions import Instruction, InstructionKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mcd.domains import DomainId


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one instruction trace."""

    instructions: int
    mix: Dict[InstructionKind, float]
    domain_shares: Dict["DomainId", float]
    mean_dep_distance: float
    dep_density: float
    branch_count: int
    branch_taken_fraction: float
    branch_sites: int
    code_footprint_bytes: int
    data_working_set_bytes: int

    @property
    def fp_share(self) -> float:
        from repro.mcd.domains import DomainId

        return self.domain_shares.get(DomainId.FP, 0.0)

    @property
    def mem_share(self) -> float:
        from repro.mcd.domains import DomainId

        return self.domain_shares.get(DomainId.LS, 0.0)


def analyze_trace(
    trace: Sequence[Instruction], line_size: int = 64
) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    if not trace:
        raise ValueError("trace is empty")
    if line_size <= 0:
        raise ValueError("line_size must be positive")
    # local import: workloads is imported by mcd.domains, so importing it at
    # module scope would be circular
    from repro.mcd.domains import execution_domain

    kind_counts: Counter = Counter()
    domain_counts: Counter = Counter()
    dep_distances = []
    operands = 0
    dep_operands = 0
    branches = 0
    taken = 0
    branch_pcs = set()
    code_lines = set()
    data_lines = set()

    for inst in trace:
        kind_counts[inst.kind] += 1
        domain_counts[execution_domain(inst.kind)] += 1
        code_lines.add(inst.pc // line_size)
        for src in (inst.src1, inst.src2):
            operands += 1
            if src is not None:
                dep_operands += 1
                dep_distances.append(inst.index - src)
        if inst.kind is InstructionKind.BRANCH:
            branches += 1
            taken += inst.taken
            branch_pcs.add(inst.pc)
        if inst.addr is not None:
            data_lines.add(inst.addr // line_size)

    n = len(trace)
    return TraceStats(
        instructions=n,
        mix={kind: count / n for kind, count in kind_counts.items()},
        domain_shares={d: count / n for d, count in domain_counts.items()},
        mean_dep_distance=(
            sum(dep_distances) / len(dep_distances) if dep_distances else 0.0
        ),
        dep_density=dep_operands / operands if operands else 0.0,
        branch_count=branches,
        branch_taken_fraction=taken / branches if branches else 0.0,
        branch_sites=len(branch_pcs),
        code_footprint_bytes=len(code_lines) * line_size,
        data_working_set_bytes=len(data_lines) * line_size,
    )


def format_stats(stats: TraceStats) -> str:
    """Human-readable multi-line rendering of :class:`TraceStats`."""
    lines = [
        f"instructions       : {stats.instructions}",
        "mix                : "
        + ", ".join(
            f"{kind.value}={share:.2f}"
            for kind, share in sorted(
                stats.mix.items(), key=lambda item: -item[1]
            )
        ),
        "domain shares      : "
        + ", ".join(
            f"{d.value}={share:.2f}" for d, share in stats.domain_shares.items()
        ),
        f"mean dep distance  : {stats.mean_dep_distance:.2f}",
        f"dep density        : {stats.dep_density:.2f}",
        f"branches           : {stats.branch_count} "
        f"({stats.branch_taken_fraction:.0%} taken, {stats.branch_sites} sites)",
        f"code footprint     : {stats.code_footprint_bytes} bytes (touched)",
        f"data working set   : {stats.data_working_set_bytes} bytes (touched)",
    ]
    return "\n".join(lines)
