"""Trace file I/O: save and reload instruction traces as JSON lines.

Lets a workload be generated once, inspected or edited externally, and
replayed exactly -- or imported from another tool entirely (any program
that can emit the simple one-object-per-line format below can drive the
simulator).

Format: one JSON object per line.  Required keys: ``i`` (index), ``k``
(kind value, e.g. ``"int_alu"``), ``pc``.  Optional: ``s1``/``s2``
(producer indices), ``a`` (address), ``t`` (taken, 0/1), ``tg`` (target).
A leading header line ``{"format": "repro-trace", "version": 1}`` makes
files self-identifying.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.workloads.instructions import Instruction, InstructionKind

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


def _to_record(inst: Instruction) -> dict:
    record = {"i": inst.index, "k": inst.kind.value, "pc": inst.pc}
    if inst.src1 is not None:
        record["s1"] = inst.src1
    if inst.src2 is not None:
        record["s2"] = inst.src2
    if inst.addr is not None:
        record["a"] = inst.addr
    if inst.kind is InstructionKind.BRANCH:
        record["t"] = int(inst.taken)
        record["tg"] = inst.target
    return record


def _from_record(record: dict) -> Instruction:
    try:
        kind = InstructionKind(record["k"])
        return Instruction(
            index=record["i"],
            kind=kind,
            pc=record["pc"],
            src1=record.get("s1"),
            src2=record.get("s2"),
            addr=record.get("a"),
            taken=bool(record.get("t", 0)),
            target=record.get("tg", 0),
        )
    except (KeyError, ValueError) as exc:
        raise ValueError(f"malformed trace record {record!r}: {exc}") from exc


def save_trace(path: str, trace: Sequence[Instruction]) -> None:
    """Write a trace to ``path`` in JSON-lines format."""
    with open(path, "w") as handle:
        handle.write(
            json.dumps({"format": FORMAT_NAME, "version": FORMAT_VERSION}) + "\n"
        )
        for inst in trace:
            handle.write(json.dumps(_to_record(inst)) + "\n")


def load_trace(path: str) -> List[Instruction]:
    """Read a trace written by :func:`save_trace` (or a compatible tool).

    Validates the header, per-record structure, and index contiguity (the
    simulator requires instructions numbered 0..n-1 in order).
    """
    trace: List[Instruction] = []
    with open(path) as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError("empty trace file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"not a {FORMAT_NAME} file: {header!r}")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace version {header.get('version')!r}"
            )
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            inst = _from_record(json.loads(line))
            if inst.index != len(trace):
                raise ValueError(
                    f"line {line_no}: expected index {len(trace)}, "
                    f"got {inst.index}"
                )
            trace.append(inst)
    if not trace:
        raise ValueError("trace file contains no instructions")
    return trace
