"""Phase and benchmark specifications for the synthetic trace generator.

A benchmark is a sequence of *phases*.  Each phase fixes the statistical
character of the instruction stream: opcode mix, dependence distances (ILP),
data working set and access regularity, and branch behaviour.  Phase changes
are the workload swings the paper's adaptive controller is designed to chase;
their lengths (in instructions) therefore determine whether a benchmark is
"fast-varying" in the sense of Section 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.workloads.instructions import InstructionKind


def _normalized(mix: Dict[InstructionKind, float]) -> Dict[InstructionKind, float]:
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("instruction mix weights must sum to a positive value")
    return {kind: weight / total for kind, weight in mix.items() if weight > 0}


@dataclass(frozen=True)
class PhaseSpec:
    """Statistical description of one program phase.

    Attributes
    ----------
    name:
        Human-readable phase label (appears in diagnostics only).
    length:
        Number of dynamic instructions in the phase.
    mix:
        Relative weights per :class:`InstructionKind`; normalized on
        construction.  A phase with zero FP weight presents an emptying FP
        queue, the situation Figure 7 of the paper illustrates.
    mean_dep_distance:
        Mean register-dependence distance (instructions).  Small values mean
        long dependence chains (low ILP, slow drain); large values mean
        independent instructions (high ILP, fast drain).
    dep_density:
        Probability that a source operand has a register producer at all
        (vs. an immediate).
    working_set:
        Size in bytes of the data region touched by loads/stores.  Working
        sets larger than a cache level produce genuine misses in the cache
        substrate.
    stride_fraction:
        Fraction of memory accesses that walk sequentially through the
        working set (prefetch-friendly, low miss rate once resident); the
        remainder are uniform-random within the working set.
    code_footprint:
        Static code size in bytes; PCs cycle through it, so footprints larger
        than the I-cache generate instruction misses.
    hot_code_fraction, hot_code_size:
        Hot-loop model (the 90/10 rule): this fraction of branch sites
        target the first ``hot_code_size`` bytes of the footprint, so
        execution concentrates in warm code with occasional cold excursions.
        Without this, large-footprint programs would present the branch
        predictor an endless stream of cold sites.
    hot_data_fraction, hot_data_size:
        Analogous data locality: this fraction of accesses touch a hot
        subset of the working set.
    branch_taken_bias:
        Probability a conditional branch is taken.
    branch_entropy:
        Probability that a branch outcome deviates from its per-PC bias --
        i.e. how unpredictable branches are (0 = perfectly biased and easily
        learned; 0.5 = random).
    """

    name: str
    length: int
    mix: Dict[InstructionKind, float]
    mean_dep_distance: float = 4.0
    dep_density: float = 0.8
    working_set: int = 32 * 1024
    stride_fraction: float = 0.7
    code_footprint: int = 8 * 1024
    hot_code_fraction: float = 0.9
    hot_code_size: int = 4 * 1024
    hot_data_fraction: float = 0.3
    hot_data_size: int = 16 * 1024
    branch_taken_bias: float = 0.6
    branch_entropy: float = 0.05

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("phase length must be positive")
        if self.mean_dep_distance < 1.0:
            raise ValueError("mean_dep_distance must be >= 1")
        if not 0.0 <= self.dep_density <= 1.0:
            raise ValueError("dep_density must be in [0, 1]")
        if self.working_set <= 0 or self.code_footprint <= 0:
            raise ValueError("working_set and code_footprint must be positive")
        if not 0.0 <= self.stride_fraction <= 1.0:
            raise ValueError("stride_fraction must be in [0, 1]")
        if not 0.0 <= self.branch_taken_bias <= 1.0:
            raise ValueError("branch_taken_bias must be in [0, 1]")
        if not 0.0 <= self.branch_entropy <= 0.5:
            raise ValueError("branch_entropy must be in [0, 0.5]")
        if not 0.0 <= self.hot_code_fraction <= 1.0:
            raise ValueError("hot_code_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_data_fraction <= 1.0:
            raise ValueError("hot_data_fraction must be in [0, 1]")
        if self.hot_code_size <= 0 or self.hot_data_size <= 0:
            raise ValueError("hot region sizes must be positive")
        object.__setattr__(self, "mix", _normalized(dict(self.mix)))

    def scaled(self, factor: float) -> "PhaseSpec":
        """Return a copy with ``length`` scaled by ``factor`` (min 1)."""
        return replace(self, length=max(1, int(round(self.length * factor))))


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: an ordered list of phases plus provenance notes.

    Attributes
    ----------
    name:
        Benchmark name as the paper's Table 2 lists it (e.g. ``epic-decode``).
    suite:
        Owning suite: ``mediabench``, ``spec2000int`` or ``spec2000fp``.
    phases:
        Ordered phase specifications.  The full trace length is the sum of
        phase lengths.
    seed:
        Default RNG seed, derived from the name so every benchmark is
        deterministic but distinct.
    fast_varying:
        Ground-truth label used in Section 5.2-style analysis: whether the
        benchmark's workload swings are shorter than a fixed-interval
        controller's interval.  The spectral classifier is validated against
        this label.
    notes:
        Short justification of the phase structure (what published trait of
        the real benchmark it encodes).
    """

    name: str
    suite: str
    phases: Tuple[PhaseSpec, ...]
    seed: int = 0
    fast_varying: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a benchmark needs at least one phase")
        if self.suite not in ("mediabench", "spec2000int", "spec2000fp"):
            raise ValueError(f"unknown suite {self.suite!r}")
        object.__setattr__(self, "phases", tuple(self.phases))
        if self.seed == 0:
            object.__setattr__(
                self, "seed", sum(ord(c) for c in self.name) * 2654435761 % 2**31
            )

    @property
    def length(self) -> int:
        return sum(phase.length for phase in self.phases)

    def scaled(self, factor: float) -> "BenchmarkSpec":
        """Return a copy with every phase length scaled by ``factor``."""
        return BenchmarkSpec(
            name=self.name,
            suite=self.suite,
            phases=tuple(phase.scaled(factor) for phase in self.phases),
            seed=self.seed,
            fast_varying=self.fast_varying,
            notes=self.notes,
        )

    def truncated(self, max_instructions: int) -> "BenchmarkSpec":
        """Return a copy scaled so the total length is ``max_instructions``.

        Phase *proportions* are preserved, matching the scaling rule in
        DESIGN.md: shrinking a run shortens every phase alike.
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        if self.length <= max_instructions:
            return self
        return self.scaled(max_instructions / self.length)


def phase_boundaries(phases: Sequence[PhaseSpec]) -> List[int]:
    """Cumulative instruction indices at which each phase ends."""
    bounds: List[int] = []
    total = 0
    for phase in phases:
        total += phase.length
        bounds.append(total)
    return bounds
