"""Phase-driven synthetic instruction-trace generation.

The generator turns a :class:`~repro.workloads.phases.BenchmarkSpec` into a
concrete list of :class:`~repro.workloads.instructions.Instruction` records.
It is deterministic for a given (spec, seed): re-running an experiment
regenerates the identical trace.

Design notes
------------
* **PCs** walk a code footprint of ``code_footprint`` bytes in 4-byte steps;
  taken branches jump to a per-PC deterministic target inside the footprint.
  Footprints larger than the L1 I-cache generate real instruction misses in
  the cache substrate.
* **Branch outcomes** follow a per-PC "home" direction drawn with the phase's
  taken bias, flipped with probability ``branch_entropy``.  Low entropy is
  quickly learned by the bimodal predictor; high entropy produces genuine
  mispredictions.
* **Data addresses** mix sequential striding through the working set with
  uniform-random touches of it, so miss rates emerge from the cache model and
  the working-set size rather than being scripted.
* **Dependences** pick producers at geometric distances with the phase's mean;
  short distances create issue-queue backpressure (low ILP), long distances
  drain queues quickly.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.workloads.instructions import Instruction, InstructionKind
from repro.workloads.phases import BenchmarkSpec, PhaseSpec

_CODE_BASE = 0x0040_0000
_DATA_BASE = 0x1000_0000
_WORD = 4
_ACCESS_BYTES = 8


def _hash32(value: int) -> int:
    """Deterministic 32-bit integer mix (xorshift-multiply)."""
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    value = (value ^ (value >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return value ^ (value >> 16)


class TraceGenerator:
    """Generates the instruction stream for one benchmark."""

    def __init__(self, spec: BenchmarkSpec, seed: Optional[int] = None) -> None:
        self.spec = spec
        self.seed = spec.seed if seed is None else seed
        self._rng = random.Random(self.seed)
        self._pc = _CODE_BASE
        self._stride_cursor = 0
        self._index = 0

    def __iter__(self) -> Iterator[Instruction]:
        for phase in self.spec.phases:
            yield from self._generate_phase(phase)

    def generate(self) -> List[Instruction]:
        """Materialize the full trace as a list."""
        return list(self)

    # ------------------------------------------------------------------
    # phase-level generation
    # ------------------------------------------------------------------

    def _generate_phase(self, phase: PhaseSpec) -> Iterator[Instruction]:
        kinds, weights = zip(*phase.mix.items())
        cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running)
        # Code layout is *static*: the kind at each PC slot is a fixed,
        # per-phase function of the PC, as in real code -- branch sites,
        # FP sites etc. recur at the same addresses every loop iteration,
        # which is what lets branch predictors and I-caches warm up.
        salt = _hash32(self.seed ^ _hash32(sum(ord(c) for c in phase.name)))
        for _ in range(phase.length):
            roll = (_hash32(self._pc ^ salt) / 4294967296.0) * running
            kind = kinds[-1]
            for j, edge in enumerate(cumulative):
                if roll <= edge:
                    kind = kinds[j]
                    break
            yield self._emit(kind, phase)

    def _emit(self, kind: InstructionKind, phase: PhaseSpec) -> Instruction:
        index = self._index
        pc = self._pc
        src1 = self._pick_dep(phase)
        src2 = self._pick_dep(phase) if self._rng.random() < 0.5 else None
        addr: Optional[int] = None
        taken = False
        target = 0

        if kind.is_mem:
            addr = self._data_address(phase)
        elif kind is InstructionKind.BRANCH:
            taken, target = self._branch(pc, phase)

        instruction = Instruction(
            index=index,
            kind=kind,
            pc=pc,
            src1=src1,
            src2=src2,
            addr=addr,
            taken=taken,
            target=target,
        )
        self._index += 1
        self._advance_pc(instruction, phase)
        return instruction

    # ------------------------------------------------------------------
    # field helpers
    # ------------------------------------------------------------------

    def _pick_dep(self, phase: PhaseSpec) -> Optional[int]:
        if self._index == 0 or self._rng.random() >= phase.dep_density:
            return None
        # Geometric distance with the phase's mean; at least 1.
        p = 1.0 / phase.mean_dep_distance
        distance = 1
        while self._rng.random() >= p and distance < 64:
            distance += 1
        producer = self._index - distance
        return producer if producer >= 0 else None

    def _data_address(self, phase: PhaseSpec) -> int:
        roll = self._rng.random()
        if roll < phase.hot_data_fraction:
            hot = min(phase.hot_data_size, phase.working_set)
            offset = self._rng.randrange(0, hot, _ACCESS_BYTES)
        elif roll < phase.hot_data_fraction + phase.stride_fraction * (
            1.0 - phase.hot_data_fraction
        ):
            self._stride_cursor = (self._stride_cursor + _ACCESS_BYTES) % phase.working_set
            offset = self._stride_cursor
        else:
            offset = self._rng.randrange(0, phase.working_set, _ACCESS_BYTES)
        return _DATA_BASE + offset

    def _branch(self, pc: int, phase: PhaseSpec) -> "tuple[bool, int]":
        home_taken = (_hash32(pc) % 1000) / 1000.0 < phase.branch_taken_bias
        flip = self._rng.random() < phase.branch_entropy
        taken = home_taken != flip
        # Hot-loop control flow: most branch *sites* (statically, by PC hash)
        # jump back into the hot region; the rest target anywhere in the
        # footprint, producing occasional cold-code excursions.
        hot_site = (_hash32(pc ^ 0xFACE) % 1000) / 1000.0 < phase.hot_code_fraction
        span = min(phase.hot_code_size, phase.code_footprint) if hot_site else phase.code_footprint
        target = _CODE_BASE + (_hash32(pc ^ 0xBEEF) % span) // _WORD * _WORD
        return taken, target

    def _advance_pc(self, instruction: Instruction, phase: PhaseSpec) -> None:
        if instruction.kind is InstructionKind.BRANCH and instruction.taken:
            self._pc = instruction.target
        else:
            self._pc += _WORD
            if self._pc >= _CODE_BASE + phase.code_footprint:
                self._pc = _CODE_BASE


def generate_trace(
    spec: BenchmarkSpec,
    max_instructions: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[Instruction]:
    """Generate the trace for ``spec``, optionally truncated.

    Truncation scales every phase proportionally (see
    :meth:`BenchmarkSpec.truncated`) so the phase *structure* is preserved.
    """
    if max_instructions is not None:
        spec = spec.truncated(max_instructions)
    return TraceGenerator(spec, seed=seed).generate()
