"""Command-line interface: ``python -m repro`` or the ``repro-dvfs`` script.

Subcommands
-----------
``list``      list the benchmark suite (with fast-varying labels)
``run``       simulate one benchmark under one scheme
``compare``   compare schemes on one or more benchmarks
``sweep``     run a (benchmark x scheme) grid through the parallel sweep
              engine (worker pool, result cache, telemetry)
``trace``     run one benchmark with the observability layer on and write
              JSONL + Chrome-trace (Perfetto-loadable) artifacts
``serve``     start the DVFS HTTP service (job submission, SSE event
              streams, cached results by content hash, controller
              scoring); SIGINT/SIGTERM drain gracefully
``top``       live terminal dashboard polling a running service's
              ``/metrics`` (request rates, latency quantiles, engine and
              coalescer health)
``check``     run the statcheck static analyzer over the source tree
              (exit 0 clean / 1 findings / 2 analyzer error)
``analyze``   print the Section-4 stability analysis for a design point
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.linearize import linearize
from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel
from repro.analysis.stability import analyze
from repro.harness.comparison import aggregate, compare_schemes, sweep
from repro.harness.experiment import SCHEMES, run_experiment
from repro.harness.persistence import result_to_dict
from repro.harness.reporting import format_table
from repro.mcd.domains import DomainId
from repro.workloads.suite import BENCHMARKS


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [spec.name, spec.suite, len(spec.phases), spec.length,
         "fast" if spec.fast_varying else "steady"]
        for spec in BENCHMARKS.values()
    ]
    print(format_table(
        ["benchmark", "suite", "phases", "instructions", "variability"],
        rows,
        title="Benchmark suite",
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.simcore import resolve_core

    try:
        core = resolve_core(args.simcore)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_experiment(
        args.benchmark,
        scheme=args.scheme,
        max_instructions=args.instructions,
        seed=args.seed,
        record_history=False,
        simcore=core,
    )
    if args.json:
        payload = result_to_dict(result)
        payload["simcore"] = core
        print(json.dumps(payload, indent=2))
        return 0
    print(f"benchmark            : {result.benchmark}")
    print(f"scheme               : {result.scheme}")
    print(f"simulation core      : {core}")
    print(f"instructions retired : {result.instructions}")
    print(f"execution time       : {result.time_ns / 1000:.2f} us")
    print(f"energy               : {result.energy.total:.0f} units")
    for domain in (DomainId.INT, DomainId.FP, DomainId.LS):
        print(f"mean f ({domain.value:3s})         : "
              f"{result.mean_frequency_ghz[domain]:.3f} GHz "
              f"({result.transitions[domain]} transitions)")
    print(f"branch mispredicts   : {result.branch_mispredict_rate:.3f}")
    print(f"L1D / L2 miss rate   : {result.l1d_miss_rate:.3f} / {result.l2_miss_rate:.3f}")
    return 0


def _scheme_result_dict(result) -> dict:
    return {
        "scheme": result.scheme,
        "energy_savings_pct": result.energy_savings_pct,
        "perf_degradation_pct": result.perf_degradation_pct,
        "edp_improvement_pct": result.edp_improvement_pct,
        "transitions": result.transitions,
    }


def _cmd_compare(args: argparse.Namespace) -> int:
    comparisons = [
        compare_schemes(
            name,
            schemes=tuple(args.schemes),
            max_instructions=args.instructions,
            seed=args.seed,
        )
        for name in args.benchmarks
    ]
    if args.json:
        payload = [
            {
                "benchmark": comp.benchmark,
                "suite": comp.suite,
                "schemes": [
                    _scheme_result_dict(comp.result_for(s))
                    for s in args.schemes
                ],
            }
            for comp in comparisons
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for comp in comparisons:
        for scheme in args.schemes:
            result = comp.result_for(scheme)
            rows.append(
                [comp.benchmark, scheme, result.energy_savings_pct,
                 result.perf_degradation_pct, result.edp_improvement_pct,
                 result.transitions]
            )
    print(format_table(
        ["benchmark", "scheme", "energy savings %", "perf degradation %",
         "EDP improvement %", "transitions"],
        rows,
        title="Scheme comparison vs full-speed baseline",
    ))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import EngineConfig, SweepEngine
    from repro.simcore import resolve_core

    try:
        core = resolve_core(args.simcore)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    unknown = sorted(set(args.benchmarks) - set(BENCHMARKS))
    if unknown:
        print(
            f"error: unknown benchmark(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(BENCHMARKS))})",
            file=sys.stderr,
        )
        return 2

    from repro.engine import shutdown_on_signals

    engine = SweepEngine(
        EngineConfig(
            workers=args.jobs,
            cache_dir=args.cache_dir,
            timeout_s=args.timeout,
            retries=args.retries,
            events_path=args.events,
            progress=args.progress and not args.json,
        )
    )
    # Ctrl-C / SIGTERM drain the sweep (in-flight jobs finish, queued
    # jobs cancel, telemetry + cache writes flush) instead of aborting.
    with shutdown_on_signals(engine):
        comparisons = sweep(
            args.benchmarks or sorted(BENCHMARKS),
            schemes=tuple(args.schemes),
            max_instructions=args.instructions,
            seed=args.seed,
            engine=engine,
            on_failure="skip",
            simcore=core,
        )
    summary = engine.telemetry.summary()
    if engine.shutdown_requested:
        print(
            f"sweep interrupted: {summary['cancelled']} job(s) cancelled "
            f"after draining in-flight work",
            file=sys.stderr,
        )

    if args.json:
        payload = {
            "simcore": core,
            "benchmarks": [
                {
                    "benchmark": comp.benchmark,
                    "suite": comp.suite,
                    "schemes": [
                        _scheme_result_dict(result) for result in comp.schemes
                    ],
                }
                for comp in comparisons
            ],
            "aggregate": {
                scheme: aggregate(comparisons, scheme)
                for scheme in args.schemes
            }
            if comparisons
            else {},
            "telemetry": summary,
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [comp.benchmark, result.scheme, result.energy_savings_pct,
             result.perf_degradation_pct, result.edp_improvement_pct,
             result.transitions]
            for comp in comparisons
            for result in comp.schemes
        ]
        print(format_table(
            ["benchmark", "scheme", "energy savings %", "perf degradation %",
             "EDP improvement %", "transitions"],
            rows,
            title="Sweep vs full-speed baseline",
        ))
        if comparisons:
            agg_rows = [
                [scheme, *aggregate(comparisons, scheme).values()]
                for scheme in args.schemes
            ]
            print(format_table(
                ["scheme", "energy savings %", "perf degradation %",
                 "EDP improvement %", "transitions"],
                agg_rows,
                title=f"Mean over {len(comparisons)} benchmarks",
            ))
        print(
            f"sweep ({core} core): {summary['jobs_run']} simulated, "
            f"{summary['cache_hits']} cache hits, "
            f"{summary['retries']} retries, "
            f"{summary['failures']} failures "
            f"in {summary['wall_s']:.2f}s "
            f"({summary['jobs_per_s']:.2f} jobs/s)"
        )
    if engine.shutdown_requested:
        return 130  # conventional interrupted-by-signal exit
    return 0 if summary["failures"] == 0 else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.obs import ObsConfig, Observability, validate_trace_files

    obs = Observability(
        ObsConfig(ring_size=args.ring, sample_stride=args.stride)
    )
    result = run_experiment(
        args.benchmark,
        scheme=args.scheme,
        max_instructions=args.instructions,
        seed=args.seed,
        record_history=False,
        obs=obs,
    )
    jsonl_path = os.path.join(args.out, "metrics.jsonl")
    chrome_path = os.path.join(args.out, "trace.chrome.json")
    obs.write_trace_files(jsonl_path, chrome_path)
    errors = validate_trace_files(jsonl_path, chrome_path)
    summary = result.probe_summary

    if args.json:
        payload = {
            "benchmark": result.benchmark,
            "scheme": result.scheme,
            "instructions": result.instructions,
            "time_ns": result.time_ns,
            "files": {"jsonl": jsonl_path, "chrome": chrome_path},
            "validation_errors": errors,
            "probe_summary": summary,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"benchmark       : {result.benchmark} ({result.scheme})")
        print(f"simulated       : {result.instructions} instructions, "
              f"{result.time_ns / 1000:.2f} us")
        trace_info = summary.get("trace") or {}
        print(f"trace events    : {trace_info.get('recorded', 0)} recorded, "
              f"{trace_info.get('dropped', 0)} dropped "
              f"(ring {trace_info.get('ring_size', args.ring)})")
        counters = summary.get("counters", {})
        for kind in sorted(k for k in counters if k.startswith("events.")):
            print(f"  {kind[len('events.'):]:17s}: {counters[kind]}")
        profile = summary.get("profile")
        if profile:
            print(f"throughput      : {profile['samples_per_s']:.0f} samples/s "
                  f"({profile['samples']} samples in {profile['wall_s']:.2f}s)")
            for phase, data in sorted(profile["phases"].items()):
                print(f"  {phase:17s}: {data['wall_s'] * 1e3:8.1f} ms "
                      f"({100 * data['share']:.1f}% of run)")
        print(f"jsonl           : {jsonl_path}")
        print(f"chrome trace    : {chrome_path} "
              f"(load in ui.perfetto.dev or chrome://tracing)")
        for problem in errors:
            print(f"SCHEMA ERROR: {problem}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    from repro.serve.app import ServeApp, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.jobs,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        executor_threads=args.threads,
        simcore=args.simcore,
    )
    app = ServeApp(config)

    async def _serve() -> None:
        host, port = await app.start()
        print(
            f"repro-dvfs serve: listening on http://{host}:{port} "
            f"(cache: {config.cache_dir or 'memory-only'}, "
            f"coalescing {config.max_batch}/{args.max_delay_ms:g}ms)",
            file=sys.stderr,
        )
        loop = asyncio.get_event_loop()
        stopping: "asyncio.Future[None]" = loop.create_future()

        def _on_signal() -> None:
            if not stopping.done():
                stopping.set_result(None)
                return
            # second signal while draining: the user means it
            print("repro-dvfs serve: forced exit", file=sys.stderr)
            os._exit(130)

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, _on_signal)
        try:
            await stopping
            print(
                "repro-dvfs serve: draining in-flight jobs...",
                file=sys.stderr,
            )
            await app.stop()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
        print("repro-dvfs serve: stopped", file=sys.stderr)

    asyncio.run(_serve())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    try:
        return run_top(
            host=args.host,
            port=args.port,
            interval_s=args.interval,
            iterations=1 if args.once else args.iterations,
            clear=not (args.no_clear or args.once),
        )
    except KeyboardInterrupt:
        return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.statcheck import cli as statcheck_cli

    return statcheck_cli.run_checked(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    service = ServiceModel(t1=args.t1, c2=args.c2)
    loop = ClosedLoopModel(
        controller=ControllerModel(step=args.step, t_m0=args.t_m0, t_l0=args.t_l0),
        service=service,
        q_ref=args.q_ref,
    )
    report = analyze(linearize(loop, f_op=args.f_op))
    print(report.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dvfs",
        description="Adaptive-reaction-time DVFS for MCD processors (HPCA'05 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="simulate one benchmark under one scheme")
    run_p.add_argument("benchmark", choices=sorted(BENCHMARKS))
    run_p.add_argument("--scheme", choices=SCHEMES, default="adaptive")
    run_p.add_argument("--instructions", type=int, default=60_000,
                       help="truncate the run (phase proportions preserved)")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override the benchmark's deterministic RNG seed")
    run_p.add_argument("--simcore", choices=("ref", "fast", "batch"),
                       default=None,
                       help="simulation core (default: REPRO_SIMCORE env "
                            "var, then 'fast'; all are bit-identical)")
    run_p.add_argument("--json", action="store_true",
                       help="emit the full result as machine-readable JSON")
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare schemes on benchmarks")
    cmp_p.add_argument("benchmarks", nargs="+", choices=sorted(BENCHMARKS))
    cmp_p.add_argument("--schemes", nargs="+",
                       choices=[s for s in SCHEMES if s != "full-speed"],
                       default=["adaptive", "attack-decay", "pid"])
    cmp_p.add_argument("--instructions", type=int, default=60_000)
    cmp_p.add_argument("--seed", type=int, default=None,
                       help="override every benchmark's RNG seed")
    cmp_p.add_argument("--json", action="store_true",
                       help="emit comparisons as machine-readable JSON")
    cmp_p.set_defaults(func=_cmd_compare)

    sweep_p = sub.add_parser(
        "sweep",
        help="run a (benchmark x scheme) grid through the sweep engine",
    )
    # no ``choices`` here: argparse rejects the empty default of a
    # choices-constrained ``nargs="*"`` positional; _cmd_sweep validates.
    sweep_p.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK",
        help="benchmarks to sweep (default: the whole suite)",
    )
    sweep_p.add_argument("--schemes", nargs="+",
                         choices=[s for s in SCHEMES if s != "full-speed"],
                         default=["adaptive", "attack-decay", "pid"])
    sweep_p.add_argument("--instructions", type=int, default=60_000)
    sweep_p.add_argument("--seed", type=int, default=None,
                         help="override every benchmark's RNG seed")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = in-process serial)")
    sweep_p.add_argument("--cache-dir", default=None, dest="cache_dir",
                         help="content-addressed result cache directory "
                              "(off when omitted)")
    sweep_p.add_argument("--events", default=None,
                         help="write a JSON-lines telemetry event log here")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock timeout in seconds")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts after a job failure")
    sweep_p.add_argument("--simcore", choices=("ref", "fast", "batch"),
                         default=None,
                         help="simulation core for every job (default: "
                              "REPRO_SIMCORE env var, then 'fast')")
    sweep_p.add_argument("--no-progress", action="store_false",
                         dest="progress",
                         help="suppress per-job progress lines on stderr")
    sweep_p.add_argument("--json", action="store_true",
                         help="emit results + telemetry as JSON")
    sweep_p.set_defaults(func=_cmd_sweep)

    trace_p = sub.add_parser(
        "trace",
        help="run one benchmark with observability on; write JSONL + "
             "Chrome-trace artifacts",
    )
    trace_p.add_argument("benchmark", choices=sorted(BENCHMARKS))
    trace_p.add_argument("--scheme", choices=SCHEMES, default="adaptive")
    trace_p.add_argument("--instructions", type=int, default=20_000,
                         help="truncate the run (phase proportions preserved)")
    trace_p.add_argument("--seed", type=int, default=None,
                         help="override the benchmark's deterministic RNG seed")
    trace_p.add_argument("--out", default="trace-out",
                         help="output directory for metrics.jsonl and "
                              "trace.chrome.json")
    trace_p.add_argument("--ring", type=int, default=65536,
                         help="trace ring-buffer capacity (oldest events "
                              "beyond this are dropped)")
    trace_p.add_argument("--stride", type=int, default=1,
                         help="publish per-sample metric events every Nth "
                              "sampling period")
    trace_p.add_argument("--json", action="store_true",
                         help="emit the run + probe summary as JSON")
    trace_p.set_defaults(func=_cmd_trace)

    serve_p = sub.add_parser(
        "serve",
        help="start the DVFS HTTP service (runs, sweeps, SSE streams, "
             "results by hash, controller scoring)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: loopback)")
    serve_p.add_argument("--port", type=int, default=8035,
                         help="bind port (0 picks an ephemeral port)")
    serve_p.add_argument("--cache-dir", default=None, dest="cache_dir",
                         help="content-addressed result cache directory; "
                              "also backs GET /v1/results/{sha} across "
                              "restarts (memory-only when omitted)")
    serve_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes per sweep engine")
    serve_p.add_argument("--threads", type=int, default=4,
                         help="simulation threads off the event loop")
    serve_p.add_argument("--max-batch", type=int, default=8,
                         dest="max_batch",
                         help="coalescer: runs per run_batch tick")
    serve_p.add_argument("--max-delay-ms", type=float, default=5.0,
                         dest="max_delay_ms",
                         help="coalescer: max added latency while waiting "
                              "to fill a batch")
    serve_p.add_argument("--simcore", choices=("ref", "fast", "batch"),
                         default=None,
                         help="default simulation core for submitted jobs")
    serve_p.set_defaults(func=_cmd_serve)

    top_p = sub.add_parser(
        "top",
        help="live terminal dashboard over a running service's /metrics",
    )
    top_p.add_argument("--host", default="127.0.0.1",
                       help="service host (default: 127.0.0.1)")
    top_p.add_argument("--port", type=int, default=8035,
                       help="service port (default: 8035)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       help="seconds between scrapes (default: 2)")
    top_p.add_argument("--iterations", type=int, default=None,
                       help="stop after N redraws (default: run until ^C)")
    top_p.add_argument("--once", action="store_true",
                       help="scrape and render a single frame, no clearing")
    top_p.add_argument("--no-clear", action="store_true", dest="no_clear",
                       help="append frames instead of clearing the screen")
    top_p.set_defaults(func=_cmd_top)

    check_p = sub.add_parser(
        "check",
        help="statcheck static analysis (determinism / cache-key / "
             "pool-safety / probe-schema invariants)",
    )
    from repro.statcheck import cli as statcheck_cli

    statcheck_cli.add_arguments(check_p)
    check_p.set_defaults(func=_cmd_check)

    ana_p = sub.add_parser("analyze", help="Section-4 stability analysis")
    ana_p.add_argument("--t1", type=float, default=0.2,
                       help="frequency-independent time per instruction")
    ana_p.add_argument("--c2", type=float, default=1.0,
                       help="frequency-dependent cycles per instruction")
    ana_p.add_argument("--step", type=float, default=0.2, help="aggregate step gain")
    ana_p.add_argument("--t-m0", type=float, default=50.0, dest="t_m0")
    ana_p.add_argument("--t-l0", type=float, default=8.0, dest="t_l0")
    ana_p.add_argument("--q-ref", type=float, default=4.0, dest="q_ref")
    ana_p.add_argument("--f-op", type=float, default=0.6, dest="f_op",
                       help="operating frequency for linearization")
    ana_p.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into e.g. `head`; exit quietly like a good unix tool
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
