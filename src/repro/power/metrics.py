"""Baseline-relative metrics: the quantities the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunMetrics:
    """Summary numbers for one simulation run."""

    time_ns: float
    energy: float
    instructions: int

    @property
    def edp(self) -> float:
        """Energy-delay product (arbitrary units x ns)."""
        return self.energy * self.time_ns

    @property
    def ipns(self) -> float:
        """Instructions per nanosecond (overall throughput)."""
        return self.instructions / self.time_ns if self.time_ns else 0.0


def energy_savings_percent(baseline: RunMetrics, run: RunMetrics) -> float:
    """Percent energy saved relative to the full-speed baseline."""
    if baseline.energy <= 0:
        raise ValueError("baseline energy must be positive")
    return 100.0 * (baseline.energy - run.energy) / baseline.energy


def performance_degradation_percent(baseline: RunMetrics, run: RunMetrics) -> float:
    """Percent execution-time increase relative to the baseline."""
    if baseline.time_ns <= 0:
        raise ValueError("baseline time must be positive")
    return 100.0 * (run.time_ns - baseline.time_ns) / baseline.time_ns


def edp_improvement_percent(baseline: RunMetrics, run: RunMetrics) -> float:
    """Percent improvement (reduction) in energy-delay product."""
    if baseline.edp <= 0:
        raise ValueError("baseline EDP must be positive")
    return 100.0 * (baseline.edp - run.edp) / baseline.edp
