"""Energy accounting (Wattch-substitute).

Per-domain activity-based CV^2 energy with aggressive clock gating, matching
the assumptions of the paper's simulation environment: gating is applied
whenever a unit is unused, so DVFS savings come from the quadratic voltage
reduction on the cycles that do run (plus reduced gated/leakage power at
lower voltage).  Absolute units are arbitrary; all paper metrics are
*relative* to the full-speed baseline.
"""

from repro.power.model import DomainPowerParams, PowerModel, EnergyAccount
from repro.power.metrics import (
    RunMetrics,
    energy_savings_percent,
    performance_degradation_percent,
    edp_improvement_percent,
)

__all__ = [
    "DomainPowerParams",
    "PowerModel",
    "EnergyAccount",
    "RunMetrics",
    "energy_savings_percent",
    "performance_degradation_percent",
    "edp_improvement_percent",
]
