"""Per-domain activity-based energy model.

Energy is accounted in three ways:

* **Active cycles** -- a domain cycle that issues operations costs
  ``c_eff * V^2 * (base + slope * ops/width)``: switched capacitance of the
  clocked logic plus per-operation datapath energy.
* **Gated idle cycles** -- a cycle with nothing to do costs a small gated
  fraction (residual clocking + ungateable logic).
* **Background power** -- leakage (always) and, for fully sleeping domains,
  the same gated-cycle rate accrued analytically over the sleep interval,
  since the simulator skips their edges.

Main-memory accesses cost a fixed external energy, unaffected by any domain's
DVFS setting, mirroring the paper's treatment of main memory as an external
domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mcd.domains import DomainId


@dataclass(frozen=True)
class DomainPowerParams:
    """Energy coefficients for one clock domain.

    ``c_eff`` is the effective switched capacitance (arbitrary energy units
    per cycle at 1 V); ``width`` normalizes per-op energy to the domain's
    issue width.
    """

    c_eff: float
    width: int
    active_base: float = 0.4
    active_slope: float = 0.6
    gated_fraction: float = 0.08
    leakage_fraction: float = 0.02

    def active_cycle_energy(self, ops: int, voltage: float) -> float:
        utilization = min(1.0, ops / self.width)
        return self.c_eff * voltage * voltage * (
            self.active_base + self.active_slope * utilization
        )

    def gated_cycle_energy(self, voltage: float) -> float:
        return self.c_eff * voltage * voltage * self.gated_fraction

    def leakage_power(self, voltage: float) -> float:
        """Leakage per nanosecond (frequency independent)."""
        return self.c_eff * voltage * voltage * self.leakage_fraction

    def gated_power(self, voltage: float, freq_ghz: float) -> float:
        """Gated-cycle energy rate per nanosecond at frequency ``freq_ghz``."""
        return self.gated_cycle_energy(voltage) * freq_ghz


#: Default domain capacitance weights, loosely proportional to the Wattch
#: breakdown of an out-of-order core: the front end (fetch, rename, ROB,
#: I-cache) dominates, followed by the integer core, LS (D-cache + L2
#: controller) and the FP core.
DEFAULT_DOMAIN_PARAMS: Dict[DomainId, DomainPowerParams] = {
    DomainId.FRONT_END: DomainPowerParams(c_eff=0.85, width=4),
    DomainId.INT: DomainPowerParams(c_eff=0.80, width=4),
    DomainId.FP: DomainPowerParams(c_eff=0.60, width=2),
    DomainId.LS: DomainPowerParams(c_eff=0.75, width=2),
}

#: External main-memory energy per access (arbitrary units).
MEMORY_ACCESS_ENERGY = 8.0


class EnergyAccount:
    """Accumulates energy per domain plus external memory energy.

    The paper's Wattch-based metric is *processor* energy; main memory is
    "an external separate clock domain not controlled by the processor"
    (paper Section 2).  :attr:`chip_total` is therefore the quantity the
    evaluation compares; :attr:`total` additionally includes the external
    memory energy for system-level accounting.
    """

    def __init__(self) -> None:
        self.by_domain: Dict[DomainId, float] = {d: 0.0 for d in DomainId}
        self.memory = 0.0

    def add(self, domain: DomainId, energy: float) -> None:
        self.by_domain[domain] += energy

    def add_memory(self, energy: float) -> None:
        self.memory += energy

    @property
    def chip_total(self) -> float:
        """Processor (chip) energy: the paper's comparison quantity."""
        return sum(self.by_domain.values())

    @property
    def total(self) -> float:
        """Chip energy plus external main-memory energy."""
        return sum(self.by_domain.values()) + self.memory


class PowerModel:
    """Stateless energy calculator bound to a parameter set."""

    def __init__(self, params: Dict[DomainId, DomainPowerParams] = None) -> None:
        self.params = dict(DEFAULT_DOMAIN_PARAMS if params is None else params)
        missing = set(DomainId) - set(self.params)
        if missing:
            raise ValueError(f"missing power params for domains: {missing}")

    def active_cycle(self, domain: DomainId, ops: int, voltage: float) -> float:
        return self.params[domain].active_cycle_energy(ops, voltage)

    def gated_cycle(self, domain: DomainId, voltage: float) -> float:
        return self.params[domain].gated_cycle_energy(voltage)

    def background(
        self,
        domain: DomainId,
        voltage: float,
        freq_ghz: float,
        dt_ns: float,
        sleeping: bool,
    ) -> float:
        """Background energy over ``dt_ns``: leakage, plus gated-cycle rate
        while the domain sleeps (its edges are skipped by the simulator)."""
        p = self.params[domain]
        power = p.leakage_power(voltage)
        if sleeping:
            power += p.gated_power(voltage, freq_ghz)
        return power * dt_ns

    def memory_access(self) -> float:
        return MEMORY_ACCESS_ENERGY
