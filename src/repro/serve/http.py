"""Minimal HTTP/1.1 on asyncio streams: just enough for the service.

No routing, no middleware, no framework -- one connection handler that
parses requests (request line, headers, ``Content-Length`` bodies),
dispatches them through a caller-supplied async function, and writes
responses.  Three deliberate simplifications:

* only ``Content-Length`` bodies are accepted (no request chunking);
* keep-alive is honoured for ordinary responses (the load bench reuses
  connections); streaming responses -- the SSE endpoints -- send
  ``Connection: close`` and the connection ends with the stream, which
  is exactly what ``curl -N`` and ``EventSource`` polyfills expect;
* a malformed request gets a 400 and the connection is closed; a
  handler crash gets a 500 with the exception class name, never a
  traceback leak or a wedged connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qsl, unquote, urlsplit

#: largest accepted request body (a controller-step trajectory of ~1M
#: samples encodes to well under this); bigger requests get a 413.
MAX_BODY_BYTES = 16 * 1024 * 1024
#: request-line / header-line length limit.
MAX_LINE_BYTES = 16 * 1024
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """Raised by handlers/parsers for malformed client input (-> 400)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = unquote(split.path)
        self.query: Dict[str, str] = dict(parse_qsl(split.query))
        self.headers = headers
        self.body = body
        #: path captures filled in by the router (``{param}`` segments).
        self.params: Dict[str, str] = {}

    def json(self) -> Any:
        """Parse the body as JSON; raises :class:`BadRequest` on garbage."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


class Response:
    """One buffered HTTP response (for streaming, see ``StreamResponse``)."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body)

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message, "status": status}, status=status)

    def head_bytes(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class StreamResponse:
    """A streaming response: headers now, body chunks as they come.

    ``chunks`` is an async iterator of byte strings; the connection is
    closed when it ends (``Connection: close``, no ``Content-Length``).
    """

    def __init__(
        self,
        chunks: AsyncIterator[bytes],
        content_type: str = "text/event-stream",
        status: int = 200,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.status = status
        self.chunks = chunks
        self.content_type = content_type
        self.headers = dict(headers or {})

    def head_bytes(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            "Cache-Control: no-store",
            "Connection: close",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


#: what a dispatcher returns
AnyResponse = Union[Response, StreamResponse]
Dispatch = Callable[[Request], Awaitable[AnyResponse]]


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`BadRequest` on malformed input and lets transport
    errors (``ConnectionResetError`` etc.) propagate to the caller.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise BadRequest("request line too long", status=400)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise BadRequest("request line too long")
    try:
        text = line.decode("latin-1").rstrip("\r\n")
        method, target, version = text.split(" ", 2)
    except ValueError:
        raise BadRequest(f"malformed request line: {line!r}")
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise BadRequest("connection closed mid-headers")
        if len(raw) > MAX_LINE_BYTES:
            raise BadRequest("header line too long")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise BadRequest("undecodable header")
        if not _:
            raise BadRequest(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise BadRequest("too many headers")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequest(f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large", status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequest("connection closed mid-body")
    return Request(method.upper(), target, headers, body)


async def _write_stream(
    writer: asyncio.StreamWriter, response: StreamResponse
) -> None:
    writer.write(response.head_bytes())
    await writer.drain()
    async for chunk in response.chunks:
        if chunk:
            writer.write(chunk)
            await writer.drain()


async def handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    dispatch: Dispatch,
) -> None:
    """Serve one client connection: a request/response keep-alive loop."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                response = Response.error(exc.status, str(exc))
                writer.write(response.head_bytes(keep_alive=False))
                writer.write(response.body)
                await writer.drain()
                return
            if request is None:
                return

            try:
                result = await dispatch(request)
            except BadRequest as exc:
                result = Response.error(exc.status, str(exc))
            except Exception as exc:  # noqa: BLE001 -- isolate handler faults
                result = Response.error(
                    500, f"internal error: {type(exc).__name__}"
                )

            if isinstance(result, StreamResponse):
                await _write_stream(writer, result)
                return
            keep_alive = not request.wants_close
            writer.write(result.head_bytes(keep_alive=keep_alive))
            writer.write(result.body)
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        # client went away (or server shutdown cancelled us): nothing to do
        pass
    finally:
        try:
            writer.close()
        except (OSError, RuntimeError):  # pragma: no cover - teardown race
            pass


def server_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    """The (host, port) the server actually bound (resolves port 0)."""
    sockets = server.sockets or []
    if not sockets:
        raise RuntimeError("server has no bound sockets")
    host, port = sockets[0].getsockname()[:2]
    return str(host), int(port)
