"""Batch concurrent single-run requests into ``run_batch`` ticks.

``POST /v1/runs`` arrives one simulation at a time, but the batched
simulation backend (:func:`repro.simcore.run_batch`, PR 4) amortizes
table construction and engine overhead across many seeds of one
``(benchmark, scheme, parameters)`` point.  The coalescer is the adapter
between the two shapes:

* submissions accumulate in a pending list;
* when ``max_batch`` are waiting, a batch is cut immediately; otherwise
  a timer flushes whatever arrived within ``max_delay_s`` (so a lone
  request pays at most the coalescing window in added latency);
* each flushed batch is grouped by *everything except the seed* (the
  job's canonical dict minus ``seed``); every group becomes exactly one
  ``run_batch`` call with the group's seeds -- so N concurrent
  homogeneous requests cost ceil(N / max_batch) backend ticks;
* results are content-identical to serial execution: ``run_batch``
  builds the same :class:`repro.engine.jobs.SweepJob` per seed, through
  the same engine/cache, as a direct ``run_experiment`` call would.

The executing ``run_batch`` runs on a thread-pool executor so the event
loop keeps serving while simulations grind.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.obs.probe import NULL_PROBE
from repro.obs.spans import NULL_TRACER, TracerLike
from repro.simcore import run_batch

if TYPE_CHECKING:
    import concurrent.futures

    from repro.engine.jobs import SweepJob
    from repro.engine.scheduler import SweepEngine
    from repro.mcd.processor import SimulationResult
    from repro.obs.metrics import MetricsRegistry

#: histogram bounds for batch sizes (a batch has >= 1 request and is
#: capped by ``max_batch``, typically single digits)
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def group_key(job: "SweepJob") -> str:
    """The coalescing identity: the job's canonical dict minus its seed.

    Two jobs with equal group keys differ (at most) in their RNG seed,
    which is exactly the axis ``run_batch`` vectorizes over.
    """
    payload = job.canonical_dict()
    payload.pop("seed", None)
    return json.dumps(payload, sort_keys=True)


# statcheck: loop-confined
class RequestCoalescer:
    """Accumulate submissions; flush them as grouped ``run_batch`` calls.

    Loop-confined: the pending list, timer, and stats counters are only
    touched from event-loop coroutines.  The single exception is
    :meth:`_execute_group`, which runs on the executor and is written to
    touch nothing but its arguments and thread-safe instruments.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_delay_s: float = 0.005,
        engine_factory: "Optional[Callable[[], Optional[SweepEngine]]]" = None,
        run_batch_fn: Optional[Callable[..., "List[SimulationResult]"]] = None,
        executor: "Optional[concurrent.futures.Executor]" = None,
        probe: Any = NULL_PROBE,
        clock_ns: Optional[Callable[[], float]] = None,
        tracer: TracerLike = NULL_TRACER,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.engine_factory = engine_factory or (lambda: None)
        self.run_batch_fn = run_batch_fn or run_batch
        self.executor = executor
        self.probe = probe
        self.clock_ns = clock_ns or (lambda: 0.0)
        self.tracer = tracer
        self._pending: "List[Tuple[SweepJob, asyncio.Future]]" = []
        self._timer: Optional[asyncio.Task] = None
        self._inflight: "List[asyncio.Task]" = []
        # -- stats (exposed by /v1/stats and the load bench) -----------
        self.submitted = 0
        self.flushes = 0
        self.run_batch_calls = 0
        self.batched_runs = 0
        # Instruments are resolved once, here, so the metrics-disabled
        # path makes zero calls into repro.obs.metrics afterwards.
        self._m_flushes = self._m_run_batch = self._m_batched = None
        self._m_batch_size = self._m_pending_gauge = None
        if metrics is not None and metrics.enabled:
            self._m_flushes = metrics.counter(
                "repro_serve_coalescer_flushes_total",
                "Coalescer flush ticks.",
            )
            self._m_run_batch = metrics.counter(
                "repro_serve_coalescer_run_batch_total",
                "Backend run_batch calls issued by the coalescer.",
            )
            self._m_batched = metrics.counter(
                "repro_serve_coalescer_batched_runs_total",
                "Individual runs executed through coalesced batches.",
            )
            self._m_batch_size = metrics.histogram(
                "repro_serve_coalescer_batch_size",
                "Requests per coalescer flush.",
                buckets=_BATCH_SIZE_BUCKETS,
            )
            self._m_pending_gauge = metrics.gauge(
                "repro_serve_coalescer_pending",
                "Requests waiting for the next coalescer flush.",
            )

    def stats(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "flushes": self.flushes,
            "run_batch_calls": self.run_batch_calls,
            "batched_runs": self.batched_runs,
            "pending": len(self._pending),
        }

    # -- submission ----------------------------------------------------

    async def submit(self, job: "SweepJob") -> "SimulationResult":
        """Queue ``job`` for the next batch tick; await its result."""
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((job, future))
        self.submitted += 1
        if self._m_pending_gauge is not None:
            self._m_pending_gauge.set(len(self._pending))
        if len(self._pending) >= self.max_batch:
            self._cut_batch()
        elif self._timer is None:
            self._timer = loop.create_task(self._delayed_flush())
        return await future

    async def _delayed_flush(self) -> None:
        try:
            await asyncio.sleep(self.max_delay_s)
        except asyncio.CancelledError:
            return
        self._timer = None
        while self._pending:
            self._cut_batch()

    def _cut_batch(self) -> None:
        """Slice up to ``max_batch`` pending requests into one flush task."""
        batch = self._pending[: self.max_batch]
        del self._pending[: len(batch)]
        if not batch:
            return
        if self._m_pending_gauge is not None:
            self._m_pending_gauge.set(len(self._pending))
        if not self._pending and self._timer is not None:
            self._timer.cancel()
            self._timer = None
        task = asyncio.get_event_loop().create_task(self._run_flush(batch))
        self._inflight.append(task)
        task.add_done_callback(self._inflight.remove)

    # -- execution -----------------------------------------------------

    async def _run_flush(
        self, batch: "List[Tuple[SweepJob, asyncio.Future]]"
    ) -> None:
        self.flushes += 1
        groups: "Dict[str, List[Tuple[SweepJob, asyncio.Future]]]" = {}
        for job, future in batch:
            groups.setdefault(group_key(job), []).append((job, future))
        self.probe.event(
            "serve_batch_flush",
            self.clock_ns(),
            requests=len(batch),
            groups=len(groups),
            run_batch_calls=self.run_batch_calls,
        )
        if self._m_flushes is not None:
            self._m_flushes.inc()
            self._m_batch_size.observe(float(len(batch)))
        flush_span = None
        if self.tracer.enabled:
            flush_span = self.tracer.start(
                "coalescer.flush",
                attrs={"requests": len(batch), "groups": len(groups)},
            )
        loop = asyncio.get_event_loop()
        for entries in groups.values():
            group_span = None
            if flush_span is not None:
                group_span = self.tracer.start(
                    "coalescer.run_batch",
                    parent=flush_span,
                    attrs={"runs": len(entries)},
                )
            # stats are plain ints owned by the loop; count the call here
            # rather than in the worker-thread body.
            self.run_batch_calls += 1
            self.batched_runs += len(entries)
            if self._m_run_batch is not None:
                self._m_run_batch.inc()
                self._m_batched.inc(len(entries))
            try:
                results = await loop.run_in_executor(
                    self.executor, self._execute_group, entries
                )
            except Exception as exc:  # noqa: BLE001 -- fault -> awaiters
                if group_span is not None:
                    group_span.set_attr("error", f"{type(exc).__name__}: {exc}")
                    group_span.end()
                for _, future in entries:
                    if not future.done():
                        future.set_exception(
                            RuntimeError(
                                f"batched run failed: "
                                f"{type(exc).__name__}: {exc}"
                            )
                        )
            else:
                if group_span is not None:
                    group_span.end()
                for (_, future), result in zip(entries, results):
                    if not future.done():
                        future.set_result(result)
        if flush_span is not None:
            flush_span.end()

    # statcheck: thread-safe
    def _execute_group(
        self, entries: "List[Tuple[SweepJob, asyncio.Future]]"
    ) -> "List[SimulationResult]":
        """One ``run_batch`` tick for one homogeneous group (worker thread).

        Thread-safe by construction: reads only its arguments and
        immutable config; all coalescer state mutation stays on the loop.
        """
        first = entries[0][0]
        seeds = [job.seed for job, _ in entries]
        kwargs: Dict[str, Any] = {}
        # Forward per-request span contexts only when a submission actually
        # carries one, so stub run_batch_fn signatures (tests) and the
        # tracing-off path never see the extra keyword.
        span_contexts = [getattr(job, "span", None) for job, _ in entries]
        if any(span is not None for span in span_contexts):
            kwargs["spans"] = span_contexts
        return self.run_batch_fn(
            first.benchmark,
            scheme=first.scheme,
            seeds=seeds,
            machine=first.machine,
            max_instructions=first.max_instructions,
            record_history=first.record_history,
            history_stride=first.history_stride,
            pid_interval_ns=first.pid_interval_ns,
            adaptive_overrides=dict(first.adaptive_overrides)
            if first.adaptive_overrides
            else None,
            obs=first.obs,
            simcore=first.simcore,
            engine=self.engine_factory(),
            **kwargs,
        )

    # -- shutdown ------------------------------------------------------

    async def drain(self) -> None:
        """Flush everything pending and wait for in-flight batches."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while self._pending:
            self._cut_batch()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
