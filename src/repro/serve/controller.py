"""The paper's adaptive FSM as a stateless scorable function.

``POST /v1/controller/step`` takes a queue-occupancy trajectory plus the
controller's parameters and returns the step decisions the adaptive
scheme would make -- the paper's control law exposed as a pure
request/response computation (the shape the related control-theoretic
work treats a regulator as: a component reacting to a measurement
stream).

The scorer replays the real implementation -- a fresh
:class:`repro.core.controller.AdaptiveDvfsController` (signal monitor,
two time-delay FSMs, action scheduler) fed one sample per trajectory
entry at the machine's sampling period -- so endpoint decisions and
simulator decisions can never drift apart.  Frequency application is
the one simplification versus the full simulator: a commanded step is
applied instantly (clamped to the DVFS envelope) rather than slewed,
while the physical switching time still gates the FSMs through the
scheduler's Act window, exactly as in the paper's Figure 4.

Everything here is deterministic and stateless across calls: the same
payload always scores to the same decisions.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import DomainId, MachineConfig
from repro.serve.http import BadRequest

#: hard cap on trajectory length; a million 4 ns samples is 4 ms of
#: simulated time, far beyond any real reaction-time question.
MAX_SAMPLES = 1_000_000

_CONTROLLED = {d.value: d for d in (DomainId.INT, DomainId.FP, DomainId.LS)}


def _parse_occupancy(payload: Dict[str, Any]) -> List[int]:
    raw = payload.get("occupancy")
    if not isinstance(raw, list) or not raw:
        raise BadRequest("'occupancy' must be a non-empty list of integers")
    if len(raw) > MAX_SAMPLES:
        raise BadRequest(
            f"trajectory too long: {len(raw)} samples (max {MAX_SAMPLES})"
        )
    occupancy: List[int] = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, int):
            raise BadRequest(
                f"occupancy[{index}] must be an integer, got {value!r}"
            )
        if value < 0:
            raise BadRequest(f"occupancy[{index}] is negative")
        occupancy.append(value)
    return occupancy


def _parse_machine(payload: Dict[str, Any]) -> MachineConfig:
    overrides = payload.get("machine") or {}
    if not isinstance(overrides, dict):
        raise BadRequest("'machine' must be an object of MachineConfig fields")
    try:
        return MachineConfig(**overrides)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad machine config: {exc}")


def _parse_config(payload: Dict[str, Any], domain: DomainId) -> AdaptiveConfig:
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise BadRequest("'config' must be an object of AdaptiveConfig fields")
    try:
        return default_adaptive_config(domain, **overrides)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad controller config: {exc}")


def score_trajectory(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Score one occupancy trajectory through the adaptive controller.

    Payload fields (all but ``occupancy`` optional):

    * ``occupancy`` -- list of non-negative queue-occupancy integers,
      one per sampling period;
    * ``domain`` -- ``"int"`` (default), ``"fp"`` or ``"ls"`` (sets the
      paper's per-domain ``q_ref`` default);
    * ``config`` -- :class:`repro.core.config.AdaptiveConfig` overrides
      (``q_ref``, ``dw_level``, ``t_m0``, ``t_l0``, ...);
    * ``machine`` -- :class:`repro.mcd.domains.MachineConfig` overrides
      (``step_ghz``, ``f_max_ghz``, ``slew_ns_per_mhz``, ...);
    * ``initial_freq_ghz`` -- starting frequency (default ``f_max``);
    * ``include_trace`` -- also return the per-sample frequency series.

    Returns the decision list (sample index, simulated time, signed
    steps, resulting frequency), scheduler counters, and the effective
    configuration that produced them.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    occupancy = _parse_occupancy(payload)
    domain_name = payload.get("domain", DomainId.INT.value)
    domain = _CONTROLLED.get(domain_name)
    if domain is None:
        raise BadRequest(
            f"unknown domain {domain_name!r}; expected one of "
            f"{sorted(_CONTROLLED)}"
        )
    machine = _parse_machine(payload)
    config = _parse_config(payload, domain)
    initial = payload.get("initial_freq_ghz", machine.f_max_ghz)
    if isinstance(initial, bool) or not isinstance(initial, (int, float)):
        raise BadRequest("'initial_freq_ghz' must be a number")

    controller = AdaptiveDvfsController(domain, config, machine)
    freq_ghz = machine.clamp_frequency(float(initial))
    period_ns = machine.sample_period_ns
    decisions: List[Dict[str, Any]] = []
    trace: List[float] = []
    now_ns = 0.0
    for index, q in enumerate(occupancy):
        command = controller.observe(now_ns, q, freq_ghz)
        if command is not None:
            freq_ghz = machine.clamp_frequency(
                freq_ghz + command.steps * machine.step_ghz
            )
            decisions.append(
                {
                    "index": index,
                    "t_ns": now_ns,
                    "steps": command.steps,
                    "freq_ghz": freq_ghz,
                }
            )
        trace.append(freq_ghz)
        now_ns += period_ns

    scheduler = controller.scheduler
    result: Dict[str, Any] = {
        "samples": len(occupancy),
        "domain": domain.value,
        "decisions": decisions,
        "final_freq_ghz": freq_ghz,
        "counters": {
            "actions": scheduler.actions,
            "combined": scheduler.combined,
            "cancellations": scheduler.cancellations,
            "commands_issued": controller.commands_issued,
        },
        "config": dataclasses.asdict(config),
        "sample_period_ns": period_ns,
        "step_ghz": machine.step_ghz,
    }
    if payload.get("include_trace"):
        result["frequency_ghz"] = trace
    return result
