"""In-memory job registry with per-job event history and live fan-out.

One :class:`Job` records everything the API exposes about a submitted
run or sweep: its lifecycle state, the content hashes its results are
(or will be) addressable under, an error string on failure, and the
bounded event history that late SSE subscribers replay.

The store is **loop-confined**: every mutating call must happen on the
server's event loop (worker threads publish through
``loop.call_soon_threadsafe`` -- see :class:`repro.obs.bridge.EventBridge`).
That single-threaded discipline is what lets the store be plain dicts
and lists with no locks.
"""

from __future__ import annotations

import collections
import itertools
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.serve.sse import DropOldestQueue


class JobState:
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)


class Job:
    """One submitted run or sweep."""

    def __init__(self, job_id: str, kind: str, spec: Dict[str, Any]) -> None:
        self.id = job_id
        self.kind = kind  # "run" | "sweep"
        self.spec = spec
        self.state = JobState.QUEUED
        self.error: Optional[str] = None
        #: trace id of this job's root span (None when tracing is off)
        self.trace_id: Optional[str] = None
        #: content hashes of this job's results (one per sweep job),
        #: known at submission time -- the cache key is a pure function
        #: of the job spec.
        self.result_shas: List[str] = []
        #: (seq, event-name, payload) history for SSE replay
        self.events: Deque[Tuple[int, str, Dict[str, Any]]] = (
            collections.deque()
        )
        self.history_dropped = 0
        self._seq = itertools.count(1)
        self._subscribers: List[DropOldestQueue] = []

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "spec": self.spec,
            "result_shas": list(self.result_shas),
            "events_recorded": len(self.events),
            "events_dropped": self.history_dropped,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload


# statcheck: loop-confined
class JobStore:
    """Registry of jobs; evicts the oldest finished jobs past capacity.

    Loop-confined: every mutation (create, state changes, publish,
    eviction) happens on the event loop.  Worker threads that need to
    publish must hop through ``loop.call_soon_threadsafe`` (see
    :class:`repro.obs.bridge.EventBridge`), never call in directly.
    """

    def __init__(self, max_jobs: int = 1024, history_limit: int = 8192,
                 queue_size: int = 1024) -> None:
        if max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        self.max_jobs = max_jobs
        self.history_limit = history_limit
        self.queue_size = queue_size
        self._jobs: "collections.OrderedDict[str, Job]" = (
            collections.OrderedDict()
        )
        self._counter = itertools.count(1)
        self.evicted = 0

    # -- registry ------------------------------------------------------

    def create(self, kind: str, spec: Dict[str, Any]) -> Job:
        job = Job(f"{kind}-{next(self._counter):06d}", kind, spec)
        self._jobs[job.id] = job
        self._evict_if_needed()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def _evict_if_needed(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        # oldest finished jobs go first; never evict live ones
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].finished:
                del self._jobs[job_id]
                self.evicted += 1

    # -- event stream --------------------------------------------------

    def publish(self, job: Job, event: str, payload: Dict[str, Any]) -> int:
        """Record one event on ``job`` and fan it out to subscribers.

        Returns the event's sequence number.  History is bounded to
        ``history_limit`` (oldest dropped and counted); each subscriber
        queue applies its own drop-oldest policy on top.
        """
        seq = next(job._seq)
        if len(job.events) >= self.history_limit:
            job.events.popleft()
            job.history_dropped += 1
        job.events.append((seq, event, payload))
        for queue in job._subscribers:
            queue.put((seq, event, payload))
        return seq

    def set_state(self, job: Job, state: str,
                  error: Optional[str] = None) -> None:
        """Advance ``job`` to ``state``, publishing a ``job`` event.

        Reaching a terminal state closes every subscriber queue (after
        their backlog drains).
        """
        job.state = state
        if error is not None:
            job.error = error
        payload: Dict[str, Any] = {"id": job.id, "state": state}
        if error is not None:
            payload["error"] = error
        self.publish(job, "job", payload)
        if job.finished:
            for queue in job._subscribers:
                queue.close()
            job._subscribers = []

    def subscribe(self, job: Job) -> DropOldestQueue:
        """A queue that replays ``job``'s history, then streams live.

        For a finished job the queue is pre-closed: the consumer gets
        the full backlog and then end-of-stream.
        """
        queue = DropOldestQueue(maxsize=max(self.queue_size,
                                            len(job.events) + 1))
        for seq, event, payload in job.events:
            queue.put((seq, event, payload))
        if job.finished:
            queue.close()
        else:
            job._subscribers.append(queue)
        return queue

    def unsubscribe(self, job: Job, queue: DropOldestQueue) -> None:
        try:
            job._subscribers.remove(queue)
        except ValueError:
            pass
