"""The DVFS service: routes, handlers, lifecycle.

:class:`ServeApp` ties the serve-layer pieces together into one
asyncio application:

* ``POST /v1/runs`` -- submit one simulation; concurrent submissions are
  coalesced into batched :func:`repro.simcore.run_batch` ticks;
* ``POST /v1/sweeps`` -- submit a benchmark x scheme x seed cross
  product through a :class:`repro.engine.SweepEngine` (pool workers,
  content-addressed cache, telemetry);
* ``GET /v1/runs/{id}`` / ``GET /v1/runs/{id}/events`` -- job status and
  the live SSE stream (engine telemetry, probe events, per-domain
  frequency steps, terminal result pointer);
* ``GET /v1/results/{sha}`` -- fetch any result by its content hash,
  from the in-memory window or the on-disk cache;
* ``POST /v1/controller/step`` -- the paper's adaptive FSM as a
  stateless scorable endpoint (:func:`repro.serve.controller.score_trajectory`);
* ``GET /v1/healthz`` / ``GET /v1/stats`` / ``GET /v1/benchmarks`` --
  liveness, counters, and discovery.

Every request is observable: the dispatch wrapper publishes a
``serve_request`` probe event per response, the coalescer publishes
``serve_batch_flush`` per tick, and SSE consumers that fell behind the
drop-oldest queue produce ``serve_sse_drop`` -- all three are schema'd
in :mod:`repro.obs.schema` like any simulation event.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import dataclasses
import functools
import time
import weakref
from typing import Any, AsyncIterator, Dict, List, Optional, Set, Tuple

from repro.engine.cache import ResultCache, job_cache_key
from repro.engine.jobs import SweepJob
from repro.engine.scheduler import EngineConfig, SweepEngine
from repro.engine.telemetry import RunTelemetry
from repro.harness.experiment import SCHEMES, run_experiment
from repro.harness.persistence import result_to_dict
from repro.mcd.domains import MachineConfig
from repro.mcd.processor import SimulationResult
from repro.obs.bridge import EventBridge
from repro.obs.facade import Observability, ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import ProbeBus
from repro.obs.spans import Span, SpanRecorder
from repro.serve.coalescer import RequestCoalescer
from repro.simcore import CORES, resolve_core
from repro.serve.controller import score_trajectory
from repro.serve.http import (
    AnyResponse,
    BadRequest,
    Request,
    Response,
    StreamResponse,
    handle_connection,
    server_address,
)
from repro.serve.jobstore import Job, JobState, JobStore
from repro.serve.router import Router
from repro.serve.sse import format_sse
from repro.workloads.suite import BENCHMARKS, get_benchmark

#: how many recent results stay addressable by hash without a cache dir.
RESULT_WINDOW = 256

#: methods worth distinguishing in metrics; anything else (clients can
#: send arbitrary verbs) collapses to "other" to bound label cardinality.
_HTTP_METHODS = frozenset(
    {"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS"}
)


@dataclasses.dataclass
class ServeConfig:
    """Service knobs (all exposed as ``repro-dvfs serve`` options)."""

    host: str = "127.0.0.1"
    port: int = 8035
    #: engine result-cache directory; ``None`` keeps results in memory only.
    cache_dir: Optional[str] = None
    #: worker processes for ``/v1/sweeps`` engines.
    workers: int = 1
    #: coalescer: batch size and max added latency for ``/v1/runs``.
    max_batch: int = 8
    max_delay_s: float = 0.005
    #: job registry and SSE buffering.
    max_jobs: int = 1024
    history_limit: int = 8192
    queue_size: int = 1024
    #: threads executing simulations off the event loop.
    executor_threads: int = 4
    #: default simulation core for submitted jobs (``None`` = env default).
    simcore: Optional[str] = None
    #: seconds between metrics ring-buffer samples (rates on ``/v1/stats``
    #: and ``repro-dvfs top``); ``0`` disables the sampler task.
    metrics_window_s: float = 2.0


class ServeApp:
    """One service instance: build, ``start()``, ``stop()``."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.store = JobStore(
            max_jobs=self.config.max_jobs,
            history_limit=self.config.history_limit,
            queue_size=self.config.queue_size,
        )
        #: the server's own probe bus (serve_* events, request counters).
        self.probe = ProbeBus()
        self._t0 = time.monotonic_ns()
        #: process-wide metrics registry, scraped by ``GET /metrics``.
        self.metrics = MetricsRegistry()
        #: span recorder; run/sweep submissions open root spans here and
        #: worker spans from pool processes are stitched back in.
        self.tracer = SpanRecorder(probe=self.probe)
        self._m_requests = self.metrics.counter_family(
            "repro_http_requests_total",
            "HTTP requests served.",
            ("method", "route", "status"),
        )
        self._m_latency = self.metrics.histogram_family(
            "repro_http_request_seconds",
            "Request wall time by endpoint.",
            ("method", "route"),
        )
        self._m_sse_dropped = self.metrics.counter(
            "repro_serve_sse_dropped_total",
            "SSE events dropped by slow consumers.",
        )
        self._m_jobs_gauge = self.metrics.gauge_family(
            "repro_serve_jobs",
            "Jobs in the registry by state (sampled at scrape).",
            ("state",),
        )
        self._m_results_gauge = self.metrics.gauge(
            "repro_serve_results_in_memory",
            "Results held in the in-memory window (sampled at scrape).",
        )
        self._m_uptime = self.metrics.gauge(
            "repro_serve_uptime_seconds",
            "Seconds since server construction (sampled at scrape).",
        )
        self.executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self._engines: "weakref.WeakSet[SweepEngine]" = weakref.WeakSet()
        self.coalescer = RequestCoalescer(
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            engine_factory=self._make_engine,
            executor=self.executor,
            probe=self.probe,
            clock_ns=self._now_ns,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._results: (
            "collections.OrderedDict[str, SimulationResult]"
        ) = collections.OrderedDict()
        self._tasks: Set["asyncio.Task[None]"] = set()
        # the window sampler never finishes on its own, so it lives
        # outside _tasks (which stop() awaits to completion) and is
        # cancelled explicitly during shutdown.
        self._window_task: Optional["asyncio.Task[None]"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.router = Router()
        self._install_routes()

    # -- plumbing ------------------------------------------------------

    def _now_ns(self) -> float:
        """Monotonic wall nanoseconds since server construction."""
        return float(time.monotonic_ns() - self._t0)

    def _make_engine(self) -> SweepEngine:
        """A fresh engine (own telemetry) for one coalescer flush."""
        engine = SweepEngine(
            EngineConfig(cache_dir=self.config.cache_dir),
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self._engines.add(engine)
        return engine

    def _remember(self, sha: str, result: SimulationResult) -> None:
        self._results[sha] = result
        self._results.move_to_end(sha)
        while len(self._results) > RESULT_WINDOW:
            self._results.popitem(last=False)

    def _spawn(self, coro: "Any") -> None:
        task = asyncio.get_event_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _install_routes(self) -> None:
        self.router.get("/v1/healthz", self._handle_health)
        self.router.get("/v1/stats", self._handle_stats)
        self.router.get("/v1/benchmarks", self._handle_benchmarks)
        self.router.post("/v1/runs", self._handle_submit_run)
        self.router.post("/v1/sweeps", self._handle_submit_sweep)
        self.router.get("/v1/runs/{id}", self._handle_job_status)
        self.router.get("/v1/runs/{id}/events", self._handle_job_events)
        self.router.get("/v1/results/{sha}", self._handle_result)
        self.router.post("/v1/controller/step", self._handle_controller_step)
        self.router.get("/metrics", self._handle_metrics)
        self.router.get("/v1/spans/{id}", self._handle_spans)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            functools.partial(handle_connection, dispatch=self.dispatch),
            host=self.config.host,
            port=self.config.port,
        )
        if self.config.metrics_window_s > 0:
            self._window_task = asyncio.get_event_loop().create_task(
                self._sample_windows()
            )
        return server_address(self._server)

    async def _sample_windows(self) -> None:
        """Periodically snapshot family totals into the metrics rings."""
        while True:
            await asyncio.sleep(self.config.metrics_window_s)
            self.metrics.record_window(self._now_ns() / 1e9)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, flush, release."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._window_task is not None:
            self._window_task.cancel()
            try:
                await self._window_task
            except asyncio.CancelledError:
                pass
            self._window_task = None
        # flush everything the coalescer holds, then drain job tasks;
        # engines running sweeps are asked to cancel their queued jobs.
        for engine in list(self._engines):
            engine.request_shutdown()
        await self.coalescer.drain()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self.executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    # -- dispatch ------------------------------------------------------

    async def dispatch(self, request: Request) -> AnyResponse:
        """Route one request, timing it onto the probe bus."""
        started = time.monotonic()
        match = self.router.resolve(request.method, request.path)
        if match.handler is None:
            if match.allowed:
                response: AnyResponse = Response.error(
                    405, f"method not allowed; try {', '.join(match.allowed)}"
                )
                response.headers["Allow"] = ", ".join(match.allowed)
            else:
                response = Response.error(404, f"no such path: {request.path}")
        else:
            request.params = match.params
            try:
                response = await match.handler(request)
            except BadRequest as exc:
                response = Response.error(exc.status, str(exc))
        wall_s = time.monotonic() - started
        # route label from the matched pattern, not the raw path, and the
        # method clamped to the known verbs -- bounded cardinality no
        # matter what clients request.
        route = match.pattern or "unmatched"
        method = request.method if request.method in _HTTP_METHODS else "other"
        self._m_requests.labels(
            method=method, route=route, status=str(response.status)
        ).inc()
        self._m_latency.labels(method=method, route=route).observe(wall_s)
        self.probe.event(
            "serve_request",
            self._now_ns(),
            method=request.method,
            path=request.path,
            status=response.status,
            wall_ms=wall_s * 1e3,
        )
        return response

    # -- simple endpoints ----------------------------------------------

    async def _handle_health(self, request: Request) -> Response:
        return Response.json({"status": "ok", "jobs": self.store.counts()})

    async def _handle_benchmarks(self, request: Request) -> Response:
        return Response.json(
            {"benchmarks": sorted(BENCHMARKS), "schemes": list(SCHEMES)}
        )

    async def _handle_stats(self, request: Request) -> Response:
        payload: Dict[str, Any] = {
            "uptime_s": self._now_ns() / 1e9,
            "jobs": self.store.counts(),
            "jobs_evicted": self.store.evicted,
            "coalescer": self.coalescer.stats(),
            "results_in_memory": len(self._results),
            "counters": dict(self.probe.counters),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        payload["rates"] = {
            "http_requests_per_s": self.metrics.rate(
                "repro_http_requests_total"
            ),
            "coalesced_runs_per_s": self.metrics.rate(
                "repro_serve_coalescer_batched_runs_total"
            ),
        }
        payload["spans"] = self.tracer.summary()
        return Response.json(payload)

    async def _handle_controller_step(self, request: Request) -> Response:
        return Response.json(score_trajectory(request.json()))

    # -- ops surface ---------------------------------------------------

    async def _handle_metrics(self, request: Request) -> Response:
        """Prometheus text exposition of the registry."""
        counts = self.store.counts()
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE,
                      JobState.FAILED):
            self._m_jobs_gauge.labels(state=state).set(counts.get(state, 0))
        self._m_results_gauge.set(len(self._results))
        self._m_uptime.set(self._now_ns() / 1e9)
        body = self.metrics.render_prometheus()
        self.probe.event(
            "serve_metrics_scrape",
            self._now_ns(),
            families=self.metrics.family_count,
            bytes=len(body),
        )
        return Response(
            200,
            body.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_spans(self, request: Request) -> Response:
        """The span tree of one job's trace, root to pool workers."""
        job = self.store.get(request.params.get("id", ""))
        if job is None:
            raise BadRequest(
                f"no such job: {request.params.get('id', '')!r}", status=404
            )
        if job.trace_id is None:
            raise BadRequest(
                f"job {job.id!r} has no trace (tracing disabled?)", status=404
            )
        return Response.json(
            {
                "id": job.id,
                "trace_id": job.trace_id,
                "spans": self.tracer.spans(job.trace_id),
                "tree": self.tracer.tree(job.trace_id),
            }
        )

    # -- run submission ------------------------------------------------

    async def _handle_submit_run(self, request: Request) -> Response:
        spec = request.json()
        if not isinstance(spec, dict):
            raise BadRequest("request body must be a JSON object")
        job = _parse_sweep_job(spec, default_simcore=self.config.simcore)
        sha = job_cache_key(job)
        record = self.store.create("run", _public_spec(job))
        record.result_shas.append(sha)
        traced = bool(spec.get("trace"))
        root = self.tracer.start(
            f"run:{record.id}",
            attrs={
                "kind": "run",
                "benchmark": job.benchmark.name,
                "scheme": job.scheme,
                "traced": traced,
            },
        )
        record.trace_id = root.trace_id
        # the job carries the root's context across the coalescer and (for
        # pooled engines) the process boundary, so worker spans stitch
        # back to this submission.
        job = dataclasses.replace(job, span=root.context)
        if traced:
            self._spawn(self._execute_traced_run(record, job, root))
        else:
            self._spawn(self._execute_run(record, job, root))
        return Response.json(
            {
                "id": record.id,
                "state": record.state,
                "result_sha": sha,
                "coalesced": not traced,
                # the *resolved* core (explicit arg > server default > env >
                # default), so clients can attribute the cached artifact
                "simcore": resolve_core(job.simcore),
                "trace_id": record.trace_id,
                "events": f"/v1/runs/{record.id}/events",
                "result": f"/v1/results/{sha}",
            },
            status=202,
        )

    async def _execute_run(
        self, record: Job, job: SweepJob, root: Span
    ) -> None:
        """Coalesced path: the run rides a shared ``run_batch`` tick."""
        self.store.set_state(record, JobState.RUNNING)
        try:
            result = await self.coalescer.submit(job)
        except Exception as exc:  # noqa: BLE001 -- job fault -> job state
            self.store.set_state(record, JobState.FAILED, error=str(exc))
            root.set_attr("state", JobState.FAILED)
            root.end()
            return
        self._finish_run(record, job, result)
        root.set_attr("state", record.state)
        root.end()

    async def _execute_traced_run(
        self, record: Job, job: SweepJob, root: Span
    ) -> None:
        """Uncoalesced path: live probe events stream into the job's SSE.

        A traced run trades batching for observability -- its ProbeBus is
        bridged onto the event loop so subscribers watch ``sample`` /
        ``fsm_transition`` / ``freq_step`` events as the simulation emits
        them, rather than a post-hoc replay.
        """
        self.store.set_state(record, JobState.RUNNING)
        loop = asyncio.get_event_loop()
        bridge = EventBridge(
            loop, lambda stream, payload: self.store.publish(
                record, stream, payload
            )
        )
        observability = Observability(job.obs or ObsConfig())
        observability.bus.add_sink(bridge.probe_sink())
        child = self.tracer.start("run_experiment", parent=root,
                                  attrs={"traced": True})
        try:
            result = await loop.run_in_executor(
                self.executor,
                functools.partial(
                    run_experiment,
                    job.benchmark,
                    scheme=job.scheme,
                    machine=job.machine,
                    max_instructions=job.max_instructions,
                    seed=job.seed,
                    record_history=job.record_history,
                    history_stride=job.history_stride,
                    pid_interval_ns=job.pid_interval_ns,
                    adaptive_overrides=dict(job.adaptive_overrides)
                    if job.adaptive_overrides
                    else None,
                    obs=observability,
                    simcore=job.simcore,
                ),
            )
        except Exception as exc:  # noqa: BLE001 -- job fault -> job state
            child.set_attr("error", str(exc))
            child.end()
            self.store.set_state(record, JobState.FAILED, error=str(exc))
            root.set_attr("state", JobState.FAILED)
            root.end()
            return
        child.set_attr("instructions", result.instructions)
        child.end()
        if self.cache is not None:
            # gzip + fsync off the loop; the store is best-effort anyway
            await loop.run_in_executor(
                self.executor, self.cache.put, job, result
            )
        self._finish_run(record, job, result, publish_steps=False)
        root.set_attr("state", record.state)
        root.end()

    def _finish_run(
        self,
        record: Job,
        job: SweepJob,
        result: SimulationResult,
        publish_steps: bool = True,
    ) -> None:
        sha = record.result_shas[0]
        self._remember(sha, result)
        if publish_steps:
            for event in result.step_events:
                self.store.publish(
                    record,
                    "freq_step",
                    {
                        "t_ns": event.time_ns,
                        "domain": event.domain.value,
                        "steps": event.steps,
                        "target_ghz": event.target_ghz,
                        "freq_ghz": event.freq_ghz,
                        "applied": event.applied,
                    },
                )
        self.store.publish(record, "result", _result_summary(sha, result))
        self.store.set_state(record, JobState.DONE)

    # -- sweep submission ----------------------------------------------

    async def _handle_submit_sweep(self, request: Request) -> Response:
        spec = request.json()
        if not isinstance(spec, dict):
            raise BadRequest("request body must be a JSON object")
        jobs = _parse_sweep_jobs(spec, default_simcore=self.config.simcore)
        shas = [job_cache_key(job) for job in jobs]
        record = self.store.create(
            "sweep",
            {
                "jobs": len(jobs),
                "benchmarks": sorted({j.benchmark.name for j in jobs}),
                "schemes": sorted({j.scheme for j in jobs}),
            },
        )
        record.result_shas.extend(shas)
        root = self.tracer.start(
            f"sweep:{record.id}", attrs={"kind": "sweep", "jobs": len(jobs)}
        )
        record.trace_id = root.trace_id
        self._spawn(self._execute_sweep(record, jobs, root))
        return Response.json(
            {
                "id": record.id,
                "state": record.state,
                "jobs": len(jobs),
                "result_shas": shas,
                "simcore": sorted({resolve_core(j.simcore) for j in jobs}),
                "trace_id": record.trace_id,
                "events": f"/v1/runs/{record.id}/events",
            },
            status=202,
        )

    async def _execute_sweep(
        self, record: Job, jobs: List[SweepJob], root: Span
    ) -> None:
        self.store.set_state(record, JobState.RUNNING)
        loop = asyncio.get_event_loop()
        bridge = EventBridge(
            loop, lambda stream, payload: self.store.publish(
                record, stream, payload
            )
        )
        telemetry = RunTelemetry(listeners=[bridge.telemetry_listener()])
        telemetry.keep_events = False
        engine = SweepEngine(
            EngineConfig(
                workers=self.config.workers, cache_dir=self.config.cache_dir
            ),
            telemetry=telemetry,
            tracer=self.tracer,
            trace_parent=root.context,
            metrics=self.metrics,
        )
        self._engines.add(engine)
        try:
            outcomes = await loop.run_in_executor(
                self.executor, engine.run, jobs
            )
        except Exception as exc:  # noqa: BLE001 -- engine fault -> job state
            self.store.set_state(record, JobState.FAILED, error=str(exc))
            root.set_attr("state", JobState.FAILED)
            root.end()
            return
        failures = []
        for sha, outcome in zip(record.result_shas, outcomes):
            if outcome.result is not None:
                self._remember(sha, outcome.result)
                self.store.publish(
                    record, "result", _result_summary(sha, outcome.result)
                )
            else:
                failures.append(f"{outcome.job.job_id}: {outcome.error}")
        if failures:
            self.store.set_state(
                record, JobState.FAILED, error="; ".join(failures)
            )
        else:
            self.store.set_state(record, JobState.DONE)
        root.set_attr("state", record.state)
        root.set_attr("failures", len(failures))
        root.end()

    # -- job status + events -------------------------------------------

    def _get_job(self, request: Request) -> Job:
        job = self.store.get(request.params.get("id", ""))
        if job is None:
            raise BadRequest(
                f"no such job: {request.params.get('id', '')!r}", status=404
            )
        return job

    async def _handle_job_status(self, request: Request) -> Response:
        return Response.json(self._get_job(request).summary())

    async def _handle_job_events(self, request: Request) -> StreamResponse:
        job = self._get_job(request)
        return StreamResponse(self._event_stream(job))

    async def _event_stream(self, job: Job) -> AsyncIterator[bytes]:
        """History replay, then live events, until the job finishes."""
        queue = self.store.subscribe(job)
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                seq, event, payload = item
                yield format_sse(payload, event=event, event_id=seq)
            if queue.dropped:
                self._m_sse_dropped.inc(queue.dropped)
                self.probe.event(
                    "serve_sse_drop",
                    self._now_ns(),
                    job=job.id,
                    dropped=queue.dropped,
                )
                yield format_sse(
                    {"id": job.id, "dropped": queue.dropped}, event="drops"
                )
            yield format_sse(
                {"id": job.id, "state": job.state}, event="end"
            )
        finally:
            self.store.unsubscribe(job, queue)

    # -- results -------------------------------------------------------

    async def _handle_result(self, request: Request) -> Response:
        sha = request.params.get("sha", "")
        result = self._results.get(sha)
        if result is None and self.cache is not None:
            # the cache read decompresses a result file; keep it off the loop
            loop = asyncio.get_event_loop()
            result = await loop.run_in_executor(
                self.executor, self.cache.get_by_key, sha
            )
        if result is None:
            raise BadRequest(f"no result for hash {sha!r}", status=404)
        payload = result_to_dict(result, include_history=False)
        payload["sha"] = sha
        return Response.json(payload)


# -- spec parsing ------------------------------------------------------


def _result_summary(sha: str, result: SimulationResult) -> Dict[str, Any]:
    return {
        "sha": sha,
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "time_ns": result.time_ns,
        "instructions": result.instructions,
        "energy_total": result.energy.total,
        "mean_frequency_ghz": {
            d.value: f for d, f in result.mean_frequency_ghz.items()
        },
        "steps": len(result.step_events),
    }


def _public_spec(job: SweepJob) -> Dict[str, Any]:
    return {
        "benchmark": job.benchmark.name,
        "scheme": job.scheme,
        "seed": job.seed,
        "max_instructions": job.max_instructions,
        "simcore": job.simcore,
    }


def _expect(spec: Dict[str, Any], field: str, types: Any,
            default: Any = None) -> Any:
    value = spec.get(field, default)
    if value is None:
        return default
    if isinstance(value, bool) and types is not bool:
        raise BadRequest(f"{field!r} must be {types}, got bool")
    if not isinstance(value, types):
        raise BadRequest(
            f"{field!r} must be {types}, got {type(value).__name__}"
        )
    return value


def _parse_sweep_job(
    spec: Dict[str, Any], default_simcore: Optional[str] = None
) -> SweepJob:
    """Build one :class:`SweepJob` from a run-submission JSON body."""
    benchmark = spec.get("benchmark")
    if not isinstance(benchmark, str):
        raise BadRequest("'benchmark' must be a benchmark name string")
    try:
        bench_spec = get_benchmark(benchmark)
    except KeyError:
        raise BadRequest(
            f"unknown benchmark {benchmark!r}; see GET /v1/benchmarks"
        )
    scheme = spec.get("scheme", "adaptive")
    if scheme not in SCHEMES:
        raise BadRequest(
            f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}"
        )
    machine_overrides = spec.get("machine") or {}
    if not isinstance(machine_overrides, dict):
        raise BadRequest("'machine' must be an object of MachineConfig fields")
    try:
        machine = MachineConfig(**machine_overrides)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad machine config: {exc}")
    overrides = spec.get("adaptive_overrides")
    if overrides is not None and not isinstance(overrides, dict):
        raise BadRequest("'adaptive_overrides' must be an object")
    obs_spec = spec.get("obs")
    obs: Optional[ObsConfig]
    if obs_spec in (None, False):
        obs = None
    elif obs_spec is True:
        obs = ObsConfig()
    elif isinstance(obs_spec, dict):
        try:
            obs = ObsConfig(**obs_spec)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad obs config: {exc}")
    else:
        raise BadRequest("'obs' must be true/false or an ObsConfig object")
    simcore = spec.get("simcore", default_simcore)
    if simcore is not None and simcore not in CORES:
        raise BadRequest(
            f"unknown simcore {simcore!r}; known: {', '.join(CORES)}"
        )
    return SweepJob(
        benchmark=bench_spec,
        scheme=scheme,
        machine=machine,
        max_instructions=_expect(spec, "max_instructions", int),
        seed=_expect(spec, "seed", int),
        record_history=bool(spec.get("record_history", False)),
        history_stride=_expect(spec, "history_stride", int, 4),
        pid_interval_ns=_expect(spec, "pid_interval_ns", (int, float)),
        adaptive_overrides=dict(overrides) if overrides else None,
        obs=obs,
        simcore=simcore,
    )


#: keep one sweep submission bounded; bigger studies belong in the CLI.
MAX_SWEEP_JOBS = 512


def _parse_sweep_jobs(
    spec: Dict[str, Any], default_simcore: Optional[str] = None
) -> List[SweepJob]:
    """Expand a sweep-submission body into its job cross product."""
    benchmarks = spec.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise BadRequest("'benchmarks' must be a non-empty list of names")
    schemes = spec.get("schemes", ["adaptive"])
    if not isinstance(schemes, list) or not schemes:
        raise BadRequest("'schemes' must be a non-empty list")
    seeds = spec.get("seeds", [None])
    if not isinstance(seeds, list) or not seeds:
        raise BadRequest("'seeds' must be a non-empty list")
    total = len(benchmarks) * len(schemes) * len(seeds)
    if total > MAX_SWEEP_JOBS:
        raise BadRequest(
            f"sweep too large: {total} jobs (max {MAX_SWEEP_JOBS})"
        )
    shared = {
        key: spec[key]
        for key in (
            "machine",
            "max_instructions",
            "record_history",
            "history_stride",
            "pid_interval_ns",
            "adaptive_overrides",
            "obs",
            "simcore",
        )
        if key in spec
    }
    jobs: List[SweepJob] = []
    for benchmark in benchmarks:
        for scheme in schemes:
            for seed in seeds:
                job_spec = dict(shared)
                job_spec["benchmark"] = benchmark
                job_spec["scheme"] = scheme
                if seed is not None:
                    job_spec["seed"] = seed
                jobs.append(
                    _parse_sweep_job(job_spec, default_simcore=default_simcore)
                )
    return jobs
