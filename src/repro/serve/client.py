"""A thin stdlib client for the DVFS service.

Built on ``http.client`` so it adds no dependencies; one
:class:`ServeClient` holds one keep-alive connection (which is what
makes the load bench measure the service, not TCP handshakes).  The SSE
reader is a plain generator over the stream's ``data:`` frames --
enough for tests, the bench, and scripted use; browsers bring their own
``EventSource``.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional


class ServeError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """One keep-alive connection to a running service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON request/response round trip (retries one reconnect)."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        parsed = json.loads(data.decode("utf-8")) if data else {}
        if response.status >= 400:
            message = (
                parsed.get("error", data.decode("utf-8", "replace"))
                if isinstance(parsed, dict)
                else str(parsed)
            )
            raise ServeError(response.status, message)
        return parsed

    def request_text(self, method: str, path: str) -> str:
        """One round trip returning the raw response body as text
        (non-JSON endpoints such as ``GET /metrics``)."""
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        text = data.decode("utf-8", "replace")
        if response.status >= 400:
            raise ServeError(response.status, text)
        return text

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/stats")

    def benchmarks(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/benchmarks")

    def submit_run(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/runs", spec)

    def submit_sweep(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/sweeps", spec)

    def get_job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/runs/{job_id}")

    def get_result(self, sha: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/results/{sha}")

    def controller_step(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/v1/controller/step", payload)

    def metrics_text(self) -> str:
        """The Prometheus exposition body from ``GET /metrics``."""
        return self.request_text("GET", "/metrics")

    def get_spans(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/spans/{job_id}")

    # -- streaming -----------------------------------------------------

    def stream_events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield ``{"event", "id", "data"}`` dicts from a job's SSE stream.

        Uses a dedicated connection (the stream ends with the
        connection); returns when the server closes the stream after the
        job's terminal ``end`` event.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", f"/v1/runs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode("utf-8"))["error"]
                except (ValueError, KeyError):
                    message = data.decode("utf-8", "replace")
                raise ServeError(response.status, message)
            event: Dict[str, Any] = {}
            data_lines: List[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:
                    if data_lines:
                        text = "\n".join(data_lines)
                        try:
                            event["data"] = json.loads(text)
                        except ValueError:
                            event["data"] = text
                        yield event
                    event, data_lines = {}, []
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[5:].lstrip())
                elif line.startswith("event:"):
                    event["event"] = line[6:].strip()
                elif line.startswith("id:"):
                    try:
                        event["id"] = int(line[3:].strip())
                    except ValueError:
                        event["id"] = line[3:].strip()
        finally:
            conn.close()

    def wait_for_job(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Consume the job's event stream until it ends; return the last
        ``job`` state payload seen (the terminal state)."""
        last: Dict[str, Any] = {}
        for frame in self.stream_events(job_id, timeout=timeout):
            if frame.get("event") == "job" and isinstance(frame.get("data"), dict):
                last = frame["data"]
        return last
