"""Run a :class:`repro.serve.app.ServeApp` on a background thread.

Tests, the load bench, and interactive use all want the same thing: a
live server on an ephemeral port, torn down cleanly afterwards.
:class:`BackgroundServer` owns a private event loop on a daemon thread,
starts the app on it, and exposes the bound address::

    with BackgroundServer(ServeConfig(port=0)) as server:
        client = ServeClient(*server.address)
        ...

Exit performs the app's graceful shutdown (drain coalescer, stop
engines) before joining the thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional, Tuple

from repro.serve.app import ServeApp, ServeConfig


class BackgroundServer:
    """Context manager: a served :class:`ServeApp` on its own thread."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.app: Optional[ServeApp] = None
        self.address: Tuple[str, int] = ("", 0)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error!r}"
            )
        return self

    def stop(self) -> None:
        loop, app = self._loop, self.app
        if loop is None or app is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(app.stop(), loop)
        try:
            future.result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=30)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.app = ServeApp(self.config)
        try:
            self.address = loop.run_until_complete(self.app.start())
        except BaseException as exc:  # noqa: BLE001 -- surfaced to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # drain callbacks scheduled during shutdown, then close
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()
