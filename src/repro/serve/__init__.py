"""DVFS-as-a-service: the asyncio HTTP surface over the reproduction.

This package turns the repo's simulation and control machinery into a
network-callable system (ROADMAP item 3):

* :mod:`repro.serve.http` -- a minimal hand-rolled HTTP/1.1 layer on
  ``asyncio`` streams (no web-framework dependency);
* :mod:`repro.serve.router` -- method/path dispatch with ``{param}``
  captures;
* :mod:`repro.serve.sse` -- server-sent-event encoding and the bounded
  drop-oldest subscriber queue (the backpressure policy);
* :mod:`repro.serve.jobstore` -- in-memory job registry with per-job
  event history + live fan-out to SSE subscribers;
* :mod:`repro.serve.coalescer` -- batches concurrent single-run
  requests into one :func:`repro.simcore.run_batch` tick so service
  throughput rides the batched simulation backend;
* :mod:`repro.serve.controller` -- the paper's adaptive FSM as a
  stateless scorable function (``POST /v1/controller/step``);
* :mod:`repro.serve.app` -- the service itself: routes, handlers,
  graceful shutdown;
* :mod:`repro.serve.client` -- a thin stdlib client used by the tests,
  the load bench, and the CI smoke job;
* :mod:`repro.serve.top` -- the ``repro-dvfs top`` terminal dashboard
  polling ``GET /metrics`` (request rates, latency quantiles, engine
  and coalescer health);
* :mod:`repro.serve.testing` -- run a server on a background thread.

Start it with ``repro-dvfs serve`` (see the README's "Serving" section
and DESIGN.md section 6f).
"""

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.coalescer import RequestCoalescer
from repro.serve.controller import score_trajectory
from repro.serve.http import Request, Response
from repro.serve.jobstore import Job, JobState, JobStore
from repro.serve.router import Router
from repro.serve.sse import DropOldestQueue, format_sse
from repro.serve.top import parse_prometheus, render, run_top

__all__ = [
    "DropOldestQueue",
    "Job",
    "JobState",
    "JobStore",
    "Request",
    "RequestCoalescer",
    "Response",
    "Router",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "format_sse",
    "parse_prometheus",
    "render",
    "run_top",
    "score_trajectory",
]
