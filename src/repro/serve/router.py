"""Method/path routing with ``{param}`` captures.

Patterns are literal path segments with optional ``{name}`` placeholders
(``/v1/runs/{id}/events``).  A placeholder matches exactly one non-empty
segment and the captured value lands in ``request.params[name]``.
Matching distinguishes "no such path" (404) from "path exists but not
for this method" (405, with an ``Allow`` header's worth of methods).
"""

from __future__ import annotations

from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.http import AnyResponse, Request

Handler = Callable[[Request], Awaitable[AnyResponse]]


class _Route:
    def __init__(self, method: str, pattern: str, handler: Handler) -> None:
        self.method = method.upper()
        self.pattern = pattern
        self.handler = handler
        self.segments: List[str] = [s for s in pattern.strip("/").split("/")]

    def match(self, segments: Sequence[str]) -> Optional[Dict[str, str]]:
        if len(segments) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, segments):
            if want.startswith("{") and want.endswith("}"):
                if not got:
                    return None
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


class Match:
    """Outcome of a routing attempt."""

    def __init__(
        self,
        handler: Optional[Handler] = None,
        params: Optional[Dict[str, str]] = None,
        allowed: Optional[List[str]] = None,
        pattern: Optional[str] = None,
    ) -> None:
        self.handler = handler
        self.params = params or {}
        #: methods that WOULD have matched the path (for 405 responses);
        #: empty means the path itself is unknown (404).
        self.allowed = allowed or []
        #: the matched route's pattern string (``/v1/runs/{id}``), the
        #: bounded-cardinality label metrics use instead of raw paths.
        self.pattern = pattern


class Router:
    """Ordered route table; first match wins."""

    def __init__(self) -> None:
        self._routes: List[_Route] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(_Route(method, pattern, handler))

    def get(self, pattern: str, handler: Handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Handler) -> None:
        self.add("POST", pattern, handler)

    def resolve(self, method: str, path: str) -> Match:
        segments: Tuple[str, ...] = tuple(path.strip("/").split("/"))
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            if route.method == method.upper():
                return Match(
                    handler=route.handler,
                    params=params,
                    pattern=route.pattern,
                )
            allowed.append(route.method)
        return Match(allowed=sorted(set(allowed)))
