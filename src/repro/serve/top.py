"""``repro-dvfs top``: a terminal dashboard over ``GET /metrics``.

The dashboard is three small, separately-testable pieces:

* :func:`parse_prometheus` -- a lenient parser of the Prometheus text
  exposition format (the inverse of
  :meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`), returning
  flat :class:`Sample` tuples;
* :func:`build_snapshot` / :func:`render` -- pure functions from samples
  to the screen string, so tests can assert on output without a server
  or a terminal;
* :func:`run_top` -- the polling loop that ties them to a live service
  through :class:`repro.serve.client.ServeClient`.

Rates are computed client-side from successive scrapes (count delta over
the poll interval); latency quantiles come from the cumulative histogram
buckets the server exposes.
"""

from __future__ import annotations

import sys
import time
from typing import (
    Any,
    Dict,
    IO,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

LabelSet = Tuple[Tuple[str, str], ...]


class Sample(NamedTuple):
    """One exposition sample: ``name{labels} value``."""

    name: str
    labels: LabelSet
    value: float


def _unescape(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> LabelSet:
    """Parse ``a="x",b="y"`` (quoted values may contain escapes)."""
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().strip(",")
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        j = eq + 2
        raw: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in {text!r}")
        labels.append((name, _unescape("".join(raw))))
        i = j + 1
    return tuple(labels)


def parse_prometheus(text: str) -> List[Sample]:
    """Parse exposition text into samples; comment/blank lines skipped.

    Lenient by design (a dashboard should degrade, not crash): lines it
    cannot parse are ignored.
    """
    samples: List[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                brace = line.index("{")
                name = line[:brace]
                close = line.rindex("}")
                labels = _parse_labels(line[brace + 1:close])
                value = float(line[close + 1:].strip())
            else:
                name, value_text = line.split(None, 1)
                labels = ()
                value = float(value_text)
        except (ValueError, IndexError):
            continue
        samples.append(Sample(name, labels, value))
    return samples


def build_snapshot(samples: Sequence[Sample]) -> Dict[str, Dict[LabelSet, float]]:
    """Index samples as ``{name: {labelset: value}}``."""
    snapshot: Dict[str, Dict[LabelSet, float]] = {}
    for sample in samples:
        snapshot.setdefault(sample.name, {})[sample.labels] = sample.value
    return snapshot


def _value(
    snapshot: Dict[str, Dict[LabelSet, float]],
    name: str,
    labels: LabelSet = (),
    default: float = 0.0,
) -> float:
    return snapshot.get(name, {}).get(labels, default)


def _total(
    snapshot: Dict[str, Dict[LabelSet, float]], name: str
) -> float:
    return sum(snapshot.get(name, {}).values())


def histogram_quantile(
    q: float, buckets: Sequence[Tuple[float, float]]
) -> Optional[float]:
    """Upper-bound estimate of quantile ``q`` from cumulative buckets.

    ``buckets`` is ``[(le, cumulative_count), ...]``; the +Inf bucket is
    ``float("inf")``.  Returns the bound of the first bucket covering
    the target rank (the classic Prometheus estimate, minus the
    intra-bucket interpolation), or ``None`` with no observations.
    """
    ordered = sorted(buckets)
    if not ordered or ordered[-1][1] <= 0:
        return None
    target = q * ordered[-1][1]
    previous_bound = 0.0
    for bound, cumulative in ordered:
        if cumulative >= target:
            if bound == float("inf"):
                return previous_bound
            return bound
        previous_bound = bound
    return previous_bound


def _route_rows(
    snapshot: Dict[str, Dict[LabelSet, float]],
    prev: Optional[Dict[str, Dict[LabelSet, float]]],
    interval_s: float,
) -> List[Dict[str, Any]]:
    """Per-(method, route) request counts, rates, and latency quantiles."""
    requests = snapshot.get("repro_http_requests_total", {})
    counts: Dict[Tuple[str, str], float] = {}
    for labels, value in requests.items():
        key = (dict(labels).get("method", "?"), dict(labels).get("route", "?"))
        counts[key] = counts.get(key, 0.0) + value
    prev_counts: Dict[Tuple[str, str], float] = {}
    if prev is not None:
        for labels, value in prev.get("repro_http_requests_total", {}).items():
            key = (dict(labels).get("method", "?"),
                   dict(labels).get("route", "?"))
            prev_counts[key] = prev_counts.get(key, 0.0) + value
    buckets_by_key: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for labels, value in snapshot.get(
        "repro_http_request_seconds_bucket", {}
    ).items():
        as_dict = dict(labels)
        key = (as_dict.get("method", "?"), as_dict.get("route", "?"))
        le = as_dict.get("le", "")
        bound = float("inf") if le == "+Inf" else float(le or "inf")
        buckets_by_key.setdefault(key, []).append((bound, value))
    rows = []
    for (method, route), count in sorted(counts.items()):
        buckets = buckets_by_key.get((method, route), [])
        rate = 0.0
        if interval_s > 0:
            rate = max(0.0, count - prev_counts.get((method, route), 0.0))
            rate /= interval_s
        rows.append({
            "method": method,
            "route": route,
            "count": int(count),
            "rate": rate,
            "p50": histogram_quantile(0.50, buckets),
            "p95": histogram_quantile(0.95, buckets),
        })
    return rows


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1.0:
        return f"{seconds * 1e3:.4g}ms"
    return f"{seconds:.3g}s"


def render(
    snapshot: Dict[str, Dict[LabelSet, float]],
    prev: Optional[Dict[str, Dict[LabelSet, float]]] = None,
    interval_s: float = 0.0,
) -> str:
    """The dashboard screen for one scrape (pure; no I/O)."""
    lines: List[str] = []
    uptime = _value(snapshot, "repro_serve_uptime_seconds")
    lines.append(
        f"repro-dvfs top -- uptime {uptime:8.1f}s   "
        f"results in memory: {_value(snapshot, 'repro_serve_results_in_memory'):.0f}"
    )
    jobs = snapshot.get("repro_serve_jobs", {})
    if jobs:
        states = "  ".join(
            f"{dict(labels).get('state', '?')}: {value:.0f}"
            for labels, value in sorted(jobs.items())
        )
        lines.append(f"jobs     {states}")
    lines.append("")
    rows = _route_rows(snapshot, prev, interval_s)
    if rows:
        lines.append(
            f"{'METHOD':<7} {'ROUTE':<28} {'COUNT':>7} {'REQ/S':>7} "
            f"{'P50':>9} {'P95':>9}"
        )
        for row in rows:
            lines.append(
                f"{row['method']:<7} {row['route']:<28} {row['count']:>7} "
                f"{row['rate']:>7.1f} {_fmt_latency(row['p50']):>9} "
                f"{_fmt_latency(row['p95']):>9}"
            )
    else:
        lines.append("(no requests recorded yet)")
    lines.append("")
    engine_jobs = snapshot.get("repro_engine_jobs_total", {})
    if engine_jobs:
        outcomes = "  ".join(
            f"{dict(labels).get('outcome', '?')}: {value:.0f}"
            for labels, value in sorted(engine_jobs.items())
        )
        lines.append(f"engine   {outcomes}")
    lines.append(
        "engine   pending: "
        f"{_value(snapshot, 'repro_engine_pending_jobs'):.0f}  "
        f"in-flight: {_value(snapshot, 'repro_engine_inflight_jobs'):.0f}  "
        f"cache hit ratio: "
        f"{_value(snapshot, 'repro_engine_cache_hit_ratio'):.2f}  "
        f"instr/s: {_value(snapshot, 'repro_run_instr_per_s'):,.0f}"
    )
    lines.append(
        "coalesce flushes: "
        f"{_total(snapshot, 'repro_serve_coalescer_flushes_total'):.0f}  "
        "run_batch: "
        f"{_total(snapshot, 'repro_serve_coalescer_run_batch_total'):.0f}  "
        "batched runs: "
        f"{_total(snapshot, 'repro_serve_coalescer_batched_runs_total'):.0f}  "
        "pending: "
        f"{_value(snapshot, 'repro_serve_coalescer_pending'):.0f}"
    )
    lines.append(
        "sse      dropped events: "
        f"{_total(snapshot, 'repro_serve_sse_dropped_total'):.0f}"
    )
    return "\n".join(lines) + "\n"


#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"


def run_top(
    host: str = "127.0.0.1",
    port: int = 8035,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    out: Optional[IO[str]] = None,
    clear: bool = True,
) -> int:
    """Poll ``/metrics`` and redraw until interrupted (or ``iterations``).

    Returns a process exit code (1 when the service is unreachable on
    the first poll).
    """
    from repro.serve.client import ServeClient

    stream = out if out is not None else sys.stdout
    prev: Optional[Dict[str, Dict[LabelSet, float]]] = None
    drawn = 0
    with ServeClient(host, port) as client:
        while iterations is None or drawn < iterations:
            try:
                text = client.metrics_text()
            except OSError as exc:
                print(
                    f"repro-dvfs top: cannot scrape "
                    f"http://{host}:{port}/metrics: {exc}",
                    file=sys.stderr,
                )
                return 1 if drawn == 0 else 0
            snapshot = build_snapshot(parse_prometheus(text))
            screen = render(
                snapshot, prev, interval_s if prev is not None else 0.0
            )
            if clear:
                stream.write(_CLEAR)
            stream.write(screen)
            stream.flush()
            prev = snapshot
            drawn += 1
            if iterations is not None and drawn >= iterations:
                break
            try:
                time.sleep(interval_s)
            except KeyboardInterrupt:
                break
    return 0


__all__ = [
    "Sample",
    "parse_prometheus",
    "build_snapshot",
    "histogram_quantile",
    "render",
    "run_top",
]
