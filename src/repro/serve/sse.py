"""Server-sent-event encoding and the subscriber backpressure queue.

SSE framing (``text/event-stream``) is line-oriented::

    id: 7
    event: freq_step
    data: {"domain": "int", ...}
    <blank line>

:func:`format_sse` produces one such frame.  :class:`DropOldestQueue`
is the per-subscriber buffer between the job executor (which may be a
worker thread publishing thousands of probe events) and the consuming
connection (which may be a slow client on a bad link).  The policy is
**bounded, drop-oldest**: when the queue is full the oldest undelivered
event is discarded and counted, so a slow consumer sees the most recent
window of the stream rather than stalling the producer or growing the
heap without bound.  Drops are surfaced to the client (a ``dropped``
field on the terminal event) and to the server's probe bus as
``serve_sse_drop`` events.
"""

from __future__ import annotations

import asyncio
import collections
import json
from typing import Any, Deque, Optional


def format_sse(
    data: Any,
    event: Optional[str] = None,
    event_id: Optional[int] = None,
) -> bytes:
    """Encode one server-sent event frame.

    ``data`` is JSON-encoded unless it is already a string.  Multi-line
    data is split across ``data:`` lines per the SSE spec.
    """
    text = data if isinstance(data, str) else json.dumps(data, sort_keys=True)
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    for part in text.split("\n"):
        lines.append(f"data: {part}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


# statcheck: loop-confined
class DropOldestQueue:
    """Bounded single-consumer queue that sheds the oldest item when full.

    ``put`` never blocks (it is called from the event loop by
    thread-safe callbacks and must not await); ``get`` awaits the next
    item.  ``close`` wakes the consumer with ``None`` after the buffered
    items drain.  Loop-confined: producers on other threads must enter
    via ``loop.call_soon_threadsafe(queue.put, item)``.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.dropped = 0
        self._items: Deque[Any] = collections.deque()
        self._closed = False
        self._wakeup: Optional[asyncio.Future] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue ``item``, dropping the oldest entry if at capacity."""
        if self._closed:
            return
        if len(self._items) >= self.maxsize:
            self._items.popleft()
            self.dropped += 1
        self._items.append(item)
        self._wake()

    def close(self) -> None:
        """No more items; the consumer sees ``None`` after the backlog."""
        self._closed = True
        self._wake()

    def _wake(self) -> None:
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.done():
            wakeup.set_result(None)

    async def get(self) -> Optional[Any]:
        """Next item, or ``None`` once closed and drained."""
        while True:
            if self._items:
                return self._items.popleft()
            if self._closed:
                return None
            loop = asyncio.get_event_loop()
            self._wakeup = loop.create_future()
            try:
                await self._wakeup
            finally:
                self._wakeup = None
