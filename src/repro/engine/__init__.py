"""Parallel sweep-execution engine.

The paper's evaluation is a big Cartesian sweep -- 17 benchmarks x 4
schemes, plus ablations -- and this package is the execution layer for
it: picklable job specs (:mod:`repro.engine.jobs`), a process-pool
scheduler with per-job timeout / retry / serial fallback
(:mod:`repro.engine.scheduler`), a content-addressed on-disk result
cache (:mod:`repro.engine.cache`), and a structured telemetry stream
(:mod:`repro.engine.telemetry`).
"""

from repro.engine.cache import (
    CACHE_VERSION,
    ResultCache,
    get_by_key,
    job_cache_key,
)
from repro.engine.jobs import SweepJob, run_job
from repro.engine.scheduler import (
    EngineConfig,
    JobOutcome,
    JobTimeoutError,
    SweepEngine,
    run_sweep,
    shutdown_on_signals,
)
from repro.engine.telemetry import (
    JsonlEventLog,
    ProgressReporter,
    RunTelemetry,
    TelemetryEvent,
)

__all__ = [
    "CACHE_VERSION",
    "EngineConfig",
    "JobOutcome",
    "JobTimeoutError",
    "JsonlEventLog",
    "ProgressReporter",
    "ResultCache",
    "RunTelemetry",
    "SweepEngine",
    "SweepJob",
    "TelemetryEvent",
    "get_by_key",
    "job_cache_key",
    "run_job",
    "run_sweep",
    "shutdown_on_signals",
]
