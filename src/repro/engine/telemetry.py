"""Structured run telemetry for the sweep engine.

Every engine action emits a :class:`TelemetryEvent` -- job started,
finished, cache hit, retried, failed, plus sweep start/end markers.
Events fan out to any number of listeners; two are provided:

* :class:`JsonlEventLog` appends one JSON object per line to a file
  (the ``--events events.jsonl`` CLI option), making a sweep's execution
  auditable after the fact;
* :class:`ProgressReporter` prints a one-line human progress update per
  completed job.

The :class:`RunTelemetry` aggregator also keeps wall-time and
throughput counters so the engine can report a summary without any
listener attached.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO

#: Event kinds, in rough lifecycle order.
SWEEP_STARTED = "sweep_started"
JOB_STARTED = "job_started"
JOB_FINISHED = "job_finished"
JOB_CACHE_HIT = "job_cache_hit"
JOB_RETRIED = "job_retried"
JOB_FAILED = "job_failed"
JOB_CANCELLED = "job_cancelled"
POOL_UNAVAILABLE = "pool_unavailable"
SHUTDOWN_REQUESTED = "shutdown_requested"
SWEEP_FINISHED = "sweep_finished"


def condense_probe_summary(
    summary: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Shrink a per-run ``repro.obs`` summary to sweep-event size.

    A full probe summary carries every counter/gauge/histogram; a sweep
    with hundreds of jobs only needs the headline numbers per job, so
    events carry this condensed form: total event count, FSM transitions,
    frequency steps, and the profiler's throughput.
    """
    if not summary:
        return None
    counters = summary.get("counters", {})

    def _total(prefix: str) -> int:
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    condensed: Dict[str, Any] = {
        "events": _total("events."),
        "fsm_transitions": _total("fsm_transitions."),
        "freq_steps": _total("freq_steps."),
        "samples": counters.get("samples", 0),
    }
    profile = summary.get("profile")
    if profile:
        condensed["samples_per_s"] = profile.get("samples_per_s", 0.0)
    return condensed


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured engine event."""

    kind: str
    timestamp: float
    job_id: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "event": self.kind, "timestamp": self.timestamp,
        }
        if self.job_id is not None:
            record["job"] = self.job_id
        record.update(self.data)
        return record


class JsonlEventLog:
    """Listener appending events as JSON lines to ``path``.

    The file is truncated lazily on the first event rather than in the
    constructor: engines are built wherever it is convenient (including
    on the serve event loop), and construction must not do file I/O.
    Events only ever arrive on the engine's run thread.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._truncated = False

    def __call__(self, event: TelemetryEvent) -> None:
        # "w" on the first event: one file describes one sweep
        mode = "a" if self._truncated else "w"
        self._truncated = True
        with open(self.path, mode) as handle:
            handle.write(json.dumps(event.to_dict()) + "\n")


class ProgressReporter:
    """Listener printing one line per terminal job event."""

    def __init__(self, total: int, stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.done = 0
        self.stream = stream or sys.stderr

    def __call__(self, event: TelemetryEvent) -> None:
        if event.kind not in (JOB_FINISHED, JOB_CACHE_HIT, JOB_FAILED):
            return
        self.done += 1
        if event.kind == JOB_CACHE_HIT:
            detail = "cached"
        elif event.kind == JOB_FAILED:
            detail = f"FAILED: {event.data.get('error', '?')}"
        else:
            detail = f"{event.data.get('wall_s', 0.0):.2f}s"
        print(
            f"[{self.done}/{self.total}] {event.job_id}: {detail}",
            file=self.stream,
        )


class RunTelemetry:
    """Event hub + counters for one sweep run."""

    def __init__(
        self,
        listeners: Optional[List[Callable[[TelemetryEvent], None]]] = None,
    ) -> None:
        self.listeners: List[Callable[[TelemetryEvent], None]] = list(
            listeners or []
        )
        self.counters: Dict[str, int] = {
            JOB_STARTED: 0,
            JOB_FINISHED: 0,
            JOB_CACHE_HIT: 0,
            JOB_RETRIED: 0,
            JOB_FAILED: 0,
            JOB_CANCELLED: 0,
        }
        self.events: List[TelemetryEvent] = []
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self.keep_events = True
        #: summed condensed per-job probe summaries (empty when obs is off)
        self.obs_totals: Dict[str, float] = {}
        self._obs_jobs = 0

    def add_listener(
        self, listener: Callable[[TelemetryEvent], None]
    ) -> None:
        # registration happens before the sweep starts (engine
        # construction / run() preamble); the executor handoff between
        # those points establishes happens-before, so no lock is needed.
        self.listeners.append(listener)  # statcheck: disable=LOCK001 -- listeners are registered before the run thread starts emitting

    def emit(
        self, kind: str, job_id: Optional[str] = None, **data: Any
    ) -> TelemetryEvent:
        event = TelemetryEvent(
            kind=kind, timestamp=time.time(), job_id=job_id, data=data
        )
        if kind in self.counters:
            self.counters[kind] += 1
        if kind == SWEEP_STARTED:
            self._started_at = time.monotonic()
        elif kind == SWEEP_FINISHED:
            self._finished_at = time.monotonic()
        if self.keep_events:
            self.events.append(event)
        for listener in self.listeners:
            listener(event)
        return event

    @property
    def wall_s(self) -> float:
        """Sweep wall time so far (or total, once finished)."""
        if self._started_at is None:
            return 0.0
        end = (
            self._finished_at
            if self._finished_at is not None
            else time.monotonic()
        )
        return end - self._started_at

    @property
    def completed_jobs(self) -> int:
        return (
            self.counters[JOB_FINISHED]
            + self.counters[JOB_CACHE_HIT]
            + self.counters[JOB_FAILED]
        )

    def throughput_jobs_per_s(self) -> float:
        wall = self.wall_s
        return self.completed_jobs / wall if wall > 0 else 0.0

    def record_probe_summary(self, condensed: Optional[Dict[str, Any]]) -> None:
        """Fold one job's condensed probe summary into the sweep totals."""
        if not condensed:
            return
        self._obs_jobs += 1
        for key, value in condensed.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.obs_totals[key] = self.obs_totals.get(key, 0) + value

    def summary(self) -> Dict[str, Any]:
        """Counter snapshot for end-of-sweep reporting."""
        summary: Dict[str, Any] = {
            "jobs_run": self.counters[JOB_FINISHED],
            "cache_hits": self.counters[JOB_CACHE_HIT],
            "retries": self.counters[JOB_RETRIED],
            "failures": self.counters[JOB_FAILED],
            "cancelled": self.counters[JOB_CANCELLED],
            "wall_s": self.wall_s,
            "jobs_per_s": self.throughput_jobs_per_s(),
        }
        if self._obs_jobs:
            obs = dict(self.obs_totals)
            obs["observed_jobs"] = self._obs_jobs
            # a sum of per-job rates is meaningless; report the mean
            if "samples_per_s" in obs:
                obs["samples_per_s"] = obs["samples_per_s"] / self._obs_jobs
            summary["obs"] = obs
        return summary
