"""Content-addressed on-disk cache of sweep results.

The cache key is a SHA-256 over the job's canonical JSON (benchmark
spec, scheme, machine config, overrides, instruction window, seed --
see :meth:`repro.engine.jobs.SweepJob.canonical_dict`) plus a cache
format tag and the persistence format version.  Identical jobs on
identical code therefore hash to the same file; any change to the spec,
the machine, or the serialization format changes the key and the stale
entry is simply never looked up again.

Entries are single-result ``.json.gz`` files written by
:mod:`repro.harness.persistence`, sharded into 256 two-hex-digit
subdirectories so no single directory grows unboundedly.  All cache
operations are best-effort: a corrupt, truncated, or version-mismatched
entry reads as a miss, and a failed write never aborts the sweep.
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
from typing import Dict, Optional

from repro.engine.jobs import SweepJob
from repro.harness import persistence
from repro.mcd.processor import SimulationResult

#: Bump when simulation semantics change in a way that invalidates old
#: cached results without changing the persistence format.
#: 2: results now carry step_events (and probe_summary when observed);
#:    version-1 entries predate both and must not be served.
#: 3: canonical_dict gained the resolved "simcore" field; version-2 keys
#:    were computed without it and would alias ref/fast results.
#: 4: the "batch" core joined CORES; bumping keeps any pre-batch artifact
#:    (written while "batch" was an invalid core name) from ever being
#:    served to the new backend's lookups.
CACHE_VERSION = 4

#: keys are sha256 hex digests; anything else (``../`` traversal, short
#: prefixes) is rejected before touching the filesystem.
_KEY_RE = re.compile(r"[0-9a-f]{64}")


def job_cache_key(job: SweepJob) -> str:
    """Stable hex digest addressing ``job``'s result on disk."""
    payload = "\n".join(
        (
            f"cache-version:{CACHE_VERSION}",
            f"format-version:{persistence.FORMAT_VERSION}",
            job.canonical_json(),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def entry_path(root: str, key: str) -> str:
    """On-disk path of cache entry ``key`` under ``root``."""
    return os.path.join(str(root), key[:2], f"{key}.json.gz")


def get_by_key(key: str, root: str) -> Optional[SimulationResult]:
    """Fetch a cached result directly by its content hash.

    This is the library face of ``GET /v1/results/{sha}``: any consumer
    holding a job's :func:`job_cache_key` can retrieve the deserialized
    :class:`~repro.mcd.processor.SimulationResult` without rebuilding the
    job.  Same contract as :meth:`ResultCache.get` -- a missing, corrupt,
    or version-mismatched entry reads as ``None``, never an exception.
    """
    if not _KEY_RE.fullmatch(key):
        return None
    try:
        results = persistence.load_result_objects(entry_path(root, key))
    except (OSError, ValueError, KeyError, EOFError):
        return None
    if len(results) != 1:
        return None
    return results[0]


class ResultCache:
    """Directory-backed result store addressed by :func:`job_cache_key`."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # one cache instance serves the loop's /v1/results path and
        # multiple executor threads; bare += would drop counts
        self._lock = threading.Lock()

    def path_for(self, job: SweepJob) -> str:
        return entry_path(self.root, job_cache_key(job))

    def get_by_key(self, key: str) -> Optional[SimulationResult]:
        """:func:`get_by_key` against this cache's root, with counters."""
        result = get_by_key(key, self.root)
        with self._lock:
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
        return result

    def get(self, job: SweepJob) -> Optional[SimulationResult]:
        """Return the cached result for ``job``, or ``None`` on a miss.

        A history-recording job only hits on an entry that carries a
        history, so ``record_history=True`` sweeps never get silently
        downgraded results (the key covers ``record_history``, making
        this automatic).
        """
        path = self.path_for(job)
        try:
            results = persistence.load_result_objects(path)
        except (OSError, ValueError, KeyError, EOFError):
            # missing, truncated, corrupt, or wrong-version entry: a miss
            with self._lock:
                self.misses += 1
            return None
        if len(results) != 1:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return results[0]

    def put(self, job: SweepJob, result: SimulationResult) -> Optional[str]:
        """Store ``result`` under ``job``'s key; returns the path or
        ``None`` if the write failed (caching is best-effort)."""
        path = self.path_for(job)
        try:
            persistence.save_results(
                path, [result], include_history=job.record_history
            )
        except OSError:
            return None
        with self._lock:
            self.stores += 1
        return path

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
