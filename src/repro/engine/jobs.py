"""Job model of the sweep engine.

A :class:`SweepJob` is one fully-specified ``(benchmark x scheme x
parameter-overrides)`` simulation: everything
:func:`repro.harness.experiment.run_experiment` needs, captured as plain
picklable data so the job can cross a process boundary and be hashed
into a stable cache key.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Union

from repro.mcd.domains import MachineConfig
from repro.obs.facade import ObsConfig
from repro.obs.spans import SpanContext
from repro.simcore import resolve_core
from repro.workloads.phases import BenchmarkSpec
from repro.workloads.suite import get_benchmark

if TYPE_CHECKING:
    from repro.mcd.processor import SimulationResult


@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work.

    ``benchmark`` is resolved to a full :class:`BenchmarkSpec` at
    construction time so the cache key covers the actual phase structure,
    not just a name that could silently change meaning between code
    versions.
    """

    benchmark: BenchmarkSpec
    scheme: str = "adaptive"
    machine: Optional[MachineConfig] = None
    max_instructions: Optional[int] = None
    seed: Optional[int] = None
    record_history: bool = False
    history_stride: int = 4
    pid_interval_ns: Optional[float] = None
    adaptive_overrides: Optional[Dict[str, object]] = None
    #: per-run observability config (picklable; a live Observability is not)
    obs: Optional[ObsConfig] = None
    #: simulation core ("ref"/"fast"); None defers to REPRO_SIMCORE
    simcore: Optional[str] = None
    #: parent span of this job's worker span (picklable, crosses the pool
    #: boundary).  Deliberately NOT in canonical_dict(): span ids are
    #: random per submission and cannot affect simulation outcomes, so
    #: keying on them would break content-addressed cache hits.
    span: Optional[SpanContext] = None  # statcheck: disable=CACHE001 -- observability-only; random per submission, must not enter the cache key

    @staticmethod
    def make(
        benchmark: Union[str, BenchmarkSpec],
        scheme: str = "adaptive",
        **kwargs: Any,
    ) -> "SweepJob":
        spec = (
            get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
        )
        return SweepJob(benchmark=spec, scheme=scheme, **kwargs)

    @property
    def job_id(self) -> str:
        """Human-readable identity used in telemetry and progress output."""
        return f"{self.benchmark.name}/{self.scheme}"

    def canonical_dict(self) -> Dict[str, Any]:
        """Every simulation-affecting input, as JSON-stable plain data.

        This is the payload the content-addressed cache hashes; any field
        that can change the simulation's outcome must appear here.
        """
        machine = self.machine or MachineConfig()
        return {
            "benchmark": _plain(dataclasses.asdict(self.benchmark)),
            "scheme": self.scheme,
            "machine": _plain(dataclasses.asdict(machine)),
            "max_instructions": self.max_instructions,
            "seed": self.seed,
            "record_history": self.record_history,
            "history_stride": self.history_stride,
            "pid_interval_ns": self.pid_interval_ns,
            "adaptive_overrides": _plain(self.adaptive_overrides or {}),
            # obs never changes simulation outcomes, but it changes what the
            # stored result carries (probe_summary), so it is part of the key
            "obs": _plain(dataclasses.asdict(self.obs)) if self.obs else None,
            # the cores are bit-identical by contract, but keying on the
            # resolved core keeps their artifacts distinct so an equivalence
            # regression can never be masked by a cache hit from the other
            # core; resolving here also folds REPRO_SIMCORE into the key
            "simcore": resolve_core(self.simcore),
        }

    def canonical_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True)


def _plain(value: Any) -> Any:
    """Recursively convert to canonical JSON-serializable data."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def run_job(job: SweepJob) -> "SimulationResult":
    """Execute one job in the current process.

    Module-level (not a method) so a process pool can pickle it as the
    default worker entry point.
    """
    from repro.harness.experiment import run_experiment

    return run_experiment(
        job.benchmark,
        scheme=job.scheme,
        machine=job.machine,
        max_instructions=job.max_instructions,
        seed=job.seed,
        record_history=job.record_history,
        history_stride=job.history_stride,
        pid_interval_ns=job.pid_interval_ns,
        adaptive_overrides=dict(job.adaptive_overrides)
        if job.adaptive_overrides
        else None,
        obs=job.obs,
        simcore=job.simcore,
    )
