"""The sweep engine: fan jobs out over a process pool, robustly.

Execution model
---------------
* Each :class:`~repro.engine.jobs.SweepJob` is first checked against the
  optional content-addressed :class:`~repro.engine.cache.ResultCache`;
  hits never reach a worker.
* Remaining jobs run on a :class:`concurrent.futures.ProcessPoolExecutor`
  (``workers > 1``) or in-process (``workers == 1``).  If the pool cannot
  be created or breaks mid-sweep, the engine falls back to in-process
  serial execution for whatever is left -- a sweep degrades, it does not
  abort.
* A per-job wall-clock timeout is enforced *inside* the executing
  process via ``SIGALRM`` (tasks run on the worker's main thread), so a
  runaway job raises :class:`JobTimeoutError` instead of wedging a pool
  slot forever.
* A job that raises (or times out) is retried up to ``retries`` times;
  on exhaustion it is surfaced as a failed :class:`JobOutcome` in the
  telemetry stream and the result list, and the sweep continues.
* A sweep can be **drained**: :meth:`SweepEngine.request_shutdown`
  (typically installed on SIGINT/SIGTERM via :func:`shutdown_on_signals`)
  lets in-flight jobs finish, cancels everything still queued (surfaced
  as ``job_cancelled`` telemetry), and still emits ``sweep_finished`` --
  so an interrupted sweep flushes its telemetry and cache writes instead
  of orphaning pool workers.

Outcomes are returned in input-job order regardless of completion order,
so pool and serial execution are interchangeable downstream.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import signal
import threading
import time
from dataclasses import dataclass
from types import FrameType
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.engine import telemetry as tm
from repro.engine.cache import ResultCache
from repro.engine.jobs import SweepJob, run_job
from repro.obs.metrics import Counter, CounterFamily, Gauge, MetricsRegistry
from repro.obs.spans import (
    NULL_TRACER,
    Span,
    SpanContext,
    TracerLike,
    start_worker_span,
)
from repro.simcore import resolve_core
from repro.mcd.processor import SimulationResult

try:  # BrokenProcessPool moved/aliased across Python versions
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    BrokenProcessPool = concurrent.futures.BrokenExecutor  # type: ignore[misc,assignment]


#: the terminal job outcomes the ``repro_engine_jobs_total`` metric
#: distinguishes; anything else collapses to "other".
_OUTCOMES = frozenset({"finished", "failed", "cancelled"})


class JobTimeoutError(Exception):
    """A job exceeded the engine's per-job timeout."""


@dataclass(frozen=True)
class EngineConfig:
    """Engine knobs; defaults favour robustness over raw speed."""

    #: worker processes; 1 means in-process serial execution.
    workers: int = 1
    #: result-cache directory; ``None`` disables caching.
    cache_dir: Optional[str] = None
    #: per-job wall-clock timeout in seconds; ``None`` disables it.
    timeout_s: Optional[float] = None
    #: extra attempts after a job's first failure.
    retries: int = 1
    #: JSON-lines event log path; ``None`` disables it.
    events_path: Optional[str] = None
    #: print one progress line per completed job.
    progress: bool = False


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: SweepJob
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    attempts: int = 0
    from_cache: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


def _call_with_timeout(
    runner: Callable[[SweepJob], SimulationResult],
    job: SweepJob,
    timeout_s: Optional[float],
) -> SimulationResult:
    """Run ``runner(job)``, raising :class:`JobTimeoutError` after
    ``timeout_s`` when SIGALRM is available on this thread."""
    use_alarm = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return runner(job)

    def _on_alarm(signum: int, frame: object) -> None:
        raise JobTimeoutError(
            f"job {job.job_id} exceeded {timeout_s:.3g}s timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        return runner(job)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _pool_entry(
    runner: Callable[[SweepJob], SimulationResult],
    job: SweepJob,
    timeout_s: Optional[float],
    span_parent: Optional[Dict[str, str]] = None,
) -> Tuple[SimulationResult, Optional[Dict[str, Any]]]:
    """Worker-process entry point (module-level, hence picklable).

    With a ``span_parent`` context (a plain picklable dict), the run is
    wrapped in a worker span that carries the submitting trace ID across
    the process boundary; the finished-span dict rides home in the
    return value for the engine to record.  Without one, the call is
    exactly the pre-tracing path.
    """
    if span_parent is None:
        return _call_with_timeout(runner, job, timeout_s), None
    span = start_worker_span(
        f"job:{job.job_id}", span_parent, attrs={"seed": job.seed}
    )
    result = _call_with_timeout(runner, job, timeout_s)
    span.set_attr("instructions", result.instructions)
    return result, span.end()


#: what a pooled job ships home: the result plus its optional worker span.
_PoolResult = Tuple[SimulationResult, Optional[Dict[str, Any]]]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def pooled_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: int = 1,
) -> List[_ResultT]:
    """Map ``fn`` over ``items`` on a process pool, in input order.

    The engine's generic parallel map, with the same degradation
    contract as :class:`SweepEngine`: ``workers <= 1`` (or a single
    item) runs serially in-process, and a pool that cannot be created
    or breaks mid-run falls back to serial execution for whatever is
    left.  ``fn`` and every item must be picklable in the pooled case;
    exceptions raised by ``fn`` propagate to the caller either way.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: List[Optional[_ResultT]] = [None] * len(items)
    done_flags = [False] * len(items)
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(items))
        ) as executor:
            futures = {
                executor.submit(fn, item): index
                for index, item in enumerate(items)
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done_flags[index] = True
    except (
        BrokenProcessPool,
        OSError,
        ImportError,
        NotImplementedError,
    ):
        for index, item in enumerate(items):
            if not done_flags[index]:
                results[index] = fn(item)
                done_flags[index] = True
    return [results[index] for index in range(len(items))]  # type: ignore[misc]


class SweepEngine:
    """Orchestrates one sweep: cache, pool, retries, telemetry."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        runner: Callable[[SweepJob], SimulationResult] = run_job,
        telemetry: Optional[tm.RunTelemetry] = None,
        tracer: TracerLike = NULL_TRACER,
        trace_parent: Optional[SpanContext] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.runner = runner
        self.telemetry = telemetry or tm.RunTelemetry()
        if self.config.events_path:
            self.telemetry.add_listener(tm.JsonlEventLog(self.config.events_path))
        self.cache = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self._shutdown = threading.Event()
        self.tracer = tracer
        self.trace_parent = trace_parent
        self._sweep_span: Optional[Span] = None
        # Instruments are resolved to attributes once, here, and only
        # when a live registry is passed: the metrics-disabled engine
        # then makes zero calls into repro.obs.metrics for a whole run
        # (the sys.setprofile guard in tests/obs/test_overhead.py).
        self._m_jobs: Optional[CounterFamily] = None
        self._m_retries: Optional[Counter] = None
        self._m_timeouts: Optional[Counter] = None
        self._m_pending: Optional[Gauge] = None
        self._m_inflight: Optional[Gauge] = None
        self._m_cache_ratio: Optional[Gauge] = None
        self._m_instr_rate: Optional[Gauge] = None
        if metrics is not None and metrics.enabled:
            self._m_jobs = metrics.counter_family(
                "repro_engine_jobs_total",
                "Sweep jobs by terminal outcome", ("outcome",),
            )
            self._m_retries = metrics.counter(
                "repro_engine_retries_total", "Job attempts after a failure"
            )
            self._m_timeouts = metrics.counter(
                "repro_engine_timeouts_total", "Jobs that hit the per-job timeout"
            )
            self._m_pending = metrics.gauge(
                "repro_engine_pending_jobs",
                "Submitted jobs not yet finished (queue depth)",
            )
            self._m_inflight = metrics.gauge(
                "repro_engine_inflight_jobs", "Job attempts currently executing"
            )
            self._m_cache_ratio = metrics.gauge(
                "repro_engine_cache_hit_ratio",
                "Cache hits / jobs of the most recent sweep",
            )
            self._m_instr_rate = metrics.gauge(
                "repro_run_instr_per_s",
                "Instructions per wall-second of the latest finished job",
            )

    # -- public API ----------------------------------------------------

    def request_shutdown(self) -> None:
        """Drain the sweep: finish in-flight jobs, cancel queued ones.

        Safe to call from any thread (including a signal handler); the
        first call emits a ``shutdown_requested`` telemetry event.
        """
        if not self._shutdown.is_set():
            self._shutdown.set()
            self.telemetry.emit(tm.SHUTDOWN_REQUESTED)

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    def run(self, jobs: Sequence[SweepJob]) -> List[JobOutcome]:
        """Execute ``jobs``; outcomes come back in input order."""
        jobs = list(jobs)
        if self.config.progress:
            self.telemetry.add_listener(tm.ProgressReporter(len(jobs)))
        if self.tracer.enabled:
            self._sweep_span = self.tracer.start(
                "sweep",
                parent=self.trace_parent,
                attrs={"jobs": len(jobs), "workers": self.config.workers},
            )
        self.telemetry.emit(
            tm.SWEEP_STARTED,
            total_jobs=len(jobs),
            workers=self.config.workers,
            cache=self.cache is not None,
            # cores jobs will resolve to, in job order de-duplicated --
            # usually a single entry unless jobs pin cores explicitly
            simcores=sorted({resolve_core(job.simcore) for job in jobs}),
        )
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        pending: List[int] = []
        for index, job in enumerate(jobs):
            cached = self.cache.get(job) if self.cache else None
            if cached is not None:
                outcomes[index] = JobOutcome(
                    job=job, result=cached, from_cache=True
                )
                condensed = tm.condense_probe_summary(
                    getattr(cached, "probe_summary", None)
                )
                self.telemetry.record_probe_summary(condensed)
                extra = {"obs": condensed} if condensed else {}
                self.telemetry.emit(tm.JOB_CACHE_HIT, job.job_id, **extra)
                if self._m_jobs is not None:
                    self._m_jobs.labels(outcome="cache_hit").inc()
                if self.tracer.enabled:
                    self.tracer.start(
                        f"job:{job.job_id}",
                        parent=self._job_parent(job),
                        attrs={"cache": "hit", "seed": job.seed},
                    ).end()
            else:
                pending.append(index)

        hits = len(jobs) - len(pending)
        if self._m_cache_ratio is not None and jobs:
            self._m_cache_ratio.set(hits / len(jobs))
        if self._m_pending is not None:
            self._m_pending.inc(len(pending))

        if pending:
            if self.config.workers > 1 and len(pending) > 1:
                self._run_pooled(jobs, pending, outcomes)
            else:
                self._run_serial(jobs, pending, outcomes)

        self.telemetry.emit(tm.SWEEP_FINISHED, **self.telemetry.summary())
        if self._sweep_span is not None:
            self._sweep_span.set_attr("cache_hits", hits)
            self._sweep_span.end()
            self._sweep_span = None
        return [outcome for outcome in outcomes if outcome is not None]

    def results(self, jobs: Sequence[SweepJob]) -> List[SimulationResult]:
        """Like :meth:`run` but demand success: raise if any job failed."""
        outcomes = self.run(jobs)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            details = "; ".join(
                f"{o.job.job_id}: {o.error}" for o in failures
            )
            raise RuntimeError(f"{len(failures)} sweep job(s) failed: {details}")
        return [o.result for o in outcomes if o.result is not None]

    # -- execution paths ----------------------------------------------

    def _job_parent(self, job: SweepJob) -> Optional[SpanContext]:
        """The parent context for a job's spans: a job-carried context
        (e.g. the serve request that submitted it) wins over the
        engine's own sweep span."""
        if job.span is not None:
            return job.span
        if self._sweep_span is not None:
            return self._sweep_span.context
        return None

    def _span_parent_dict(self, job: SweepJob) -> Optional[Dict[str, str]]:
        """What crosses the process boundary: a plain dict, or None when
        tracing is off (keeping the worker path allocation-free)."""
        if not self.tracer.enabled:
            return None
        parent = self._job_parent(job)
        return parent.to_dict() if parent is not None else None

    def _record_worker_span(self, span: Optional[Dict[str, Any]]) -> None:
        if span is not None and self.tracer.enabled:
            self.tracer.record(span)

    def _job_done(self, outcome: str) -> None:
        if self._m_jobs is not None:
            # clamp: the label set stays bounded even if a new call site
            # passes a dynamic outcome string.
            outcome = outcome if outcome in _OUTCOMES else "other"
            self._m_jobs.labels(outcome=outcome).inc()
        if self._m_pending is not None:
            self._m_pending.dec()

    def _record_success(
        self,
        index: int,
        job: SweepJob,
        result: SimulationResult,
        attempts: int,
        wall_s: float,
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        outcomes[index] = JobOutcome(
            job=job, result=result, attempts=attempts, wall_s=wall_s
        )
        if self.cache is not None:
            self.cache.put(job, result)
        condensed = tm.condense_probe_summary(
            getattr(result, "probe_summary", None)
        )
        self.telemetry.record_probe_summary(condensed)
        extra = {"obs": condensed} if condensed else {}
        self.telemetry.emit(
            tm.JOB_FINISHED, job.job_id, attempts=attempts, wall_s=wall_s, **extra
        )
        self._job_done("finished")
        if self._m_instr_rate is not None and wall_s > 0:
            self._m_instr_rate.set(result.instructions / wall_s)

    def _record_failure(
        self,
        index: int,
        job: SweepJob,
        error: str,
        attempts: int,
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        outcomes[index] = JobOutcome(job=job, error=error, attempts=attempts)
        self.telemetry.emit(
            tm.JOB_FAILED, job.job_id, error=error, attempts=attempts
        )
        self._job_done("failed")
        if self._m_timeouts is not None and "JobTimeoutError" in error:
            self._m_timeouts.inc()

    def _record_cancelled(
        self,
        index: int,
        job: SweepJob,
        attempts: int,
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        """A drained job still yields an outcome (``ok`` False), keeping
        ``run()``'s one-outcome-per-job input-order contract intact."""
        outcomes[index] = JobOutcome(
            job=job, error="cancelled: shutdown requested", attempts=attempts
        )
        self.telemetry.emit(tm.JOB_CANCELLED, job.job_id, reason="shutdown")
        self._job_done("cancelled")

    def _run_serial(
        self,
        jobs: Sequence[SweepJob],
        indices: Sequence[int],
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        for index in indices:
            job = jobs[index]
            if self._shutdown.is_set():
                self._record_cancelled(index, job, 0, outcomes)
                continue
            attempts = 0
            while True:
                attempts += 1
                self.telemetry.emit(
                    tm.JOB_STARTED, job.job_id, attempt=attempts, mode="serial"
                )
                if self._m_inflight is not None:
                    self._m_inflight.inc()
                started = time.monotonic()
                try:
                    result, span = _pool_entry(
                        self.runner, job, self.config.timeout_s,
                        self._span_parent_dict(job),
                    )
                except Exception as exc:  # noqa: BLE001 -- isolate job faults
                    if self._m_inflight is not None:
                        self._m_inflight.dec()
                    error = f"{type(exc).__name__}: {exc}"
                    if attempts <= self.config.retries and not self._shutdown.is_set():
                        self.telemetry.emit(
                            tm.JOB_RETRIED, job.job_id,
                            error=error, attempt=attempts,
                        )
                        if self._m_retries is not None:
                            self._m_retries.inc()
                        continue
                    self._record_failure(index, job, error, attempts, outcomes)
                    break
                if self._m_inflight is not None:
                    self._m_inflight.dec()
                self._record_worker_span(span)
                self._record_success(
                    index, job, result, attempts,
                    time.monotonic() - started, outcomes,
                )
                break

    def _cancel_queued(
        self,
        jobs: Sequence[SweepJob],
        futures: "Dict[concurrent.futures.Future[_PoolResult], int]",
        attempts: Dict[int, int],
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        """Drain helper: cancel every not-yet-running pooled future.

        Jobs already executing on a worker keep running to completion;
        everything still queued is cancelled and surfaced as
        ``job_cancelled`` telemetry.
        """
        for future in list(futures):
            if future.cancel():
                index = futures.pop(future)
                if self._m_inflight is not None:
                    self._m_inflight.dec()
                self._record_cancelled(
                    index, jobs[index], attempts[index], outcomes
                )

    def _run_pooled(
        self,
        jobs: Sequence[SweepJob],
        indices: Sequence[int],
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        workers = min(self.config.workers, len(indices))
        try:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )
        except (OSError, ImportError, NotImplementedError, ValueError) as exc:
            self.telemetry.emit(
                tm.POOL_UNAVAILABLE,
                error=f"{type(exc).__name__}: {exc}",
                fallback="serial",
            )
            self._run_serial(jobs, indices, outcomes)
            return

        attempts: Dict[int, int] = {index: 0 for index in indices}
        started_at: Dict[int, float] = {}
        futures: Dict[concurrent.futures.Future[_PoolResult], int] = {}

        def submit(index: int) -> None:
            attempts[index] += 1
            self.telemetry.emit(
                tm.JOB_STARTED, jobs[index].job_id,
                attempt=attempts[index], mode="pool",
            )
            if self._m_inflight is not None:
                self._m_inflight.inc()
            started_at[index] = time.monotonic()
            future = executor.submit(
                _pool_entry, self.runner, jobs[index], self.config.timeout_s,
                self._span_parent_dict(jobs[index]),
            )
            futures[future] = index

        try:
            with executor:
                for index in indices:
                    if self._shutdown.is_set():
                        self._record_cancelled(index, jobs[index], 0, outcomes)
                        continue
                    submit(index)
                while futures:
                    done, _ = concurrent.futures.wait(
                        futures,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    for future in done:
                        index = futures.pop(future)
                        job = jobs[index]
                        wall_s = time.monotonic() - started_at[index]
                        if self._m_inflight is not None:
                            self._m_inflight.dec()
                        try:
                            result, span = future.result()
                        except BrokenProcessPool:
                            raise
                        except concurrent.futures.CancelledError:
                            if outcomes[index] is None:
                                self._record_cancelled(
                                    index, job, attempts[index], outcomes
                                )
                            continue
                        except Exception as exc:  # noqa: BLE001
                            error = f"{type(exc).__name__}: {exc}"
                            if (
                                attempts[index] <= self.config.retries
                                and not self._shutdown.is_set()
                            ):
                                self.telemetry.emit(
                                    tm.JOB_RETRIED, job.job_id,
                                    error=error, attempt=attempts[index],
                                )
                                if self._m_retries is not None:
                                    self._m_retries.inc()
                                submit(index)
                            else:
                                self._record_failure(
                                    index, job, error,
                                    attempts[index], outcomes,
                                )
                            continue
                        self._record_worker_span(span)
                        self._record_success(
                            index, job, result,
                            attempts[index], wall_s, outcomes,
                        )
                    if self._shutdown.is_set():
                        self._cancel_queued(jobs, futures, attempts, outcomes)
        except BrokenProcessPool as exc:
            # a worker died hard (OOM-kill, segfault); finish what's left
            # in-process rather than losing the sweep
            if self._m_inflight is not None:
                self._m_inflight.dec(len(futures))
            remaining = [i for i in indices if outcomes[i] is None]
            self.telemetry.emit(
                tm.POOL_UNAVAILABLE,
                error=f"{type(exc).__name__}: {exc}",
                fallback="serial",
                remaining_jobs=len(remaining),
            )
            self._run_serial(jobs, remaining, outcomes)


def run_sweep(
    jobs: Sequence[SweepJob],
    config: Optional[EngineConfig] = None,
    **config_overrides: Any,
) -> List[JobOutcome]:
    """One-call convenience: build an engine and run ``jobs`` through it."""
    if config is None:
        config = EngineConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either config or keyword overrides, not both")
    return SweepEngine(config).run(jobs)


@contextlib.contextmanager
def shutdown_on_signals(
    engine: SweepEngine,
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[SweepEngine]:
    """Install handlers that drain ``engine`` on the given signals.

    The first signal requests a graceful drain (in-flight jobs finish,
    queued jobs are cancelled, telemetry and cache writes are flushed);
    a second delivery falls through to the previously installed handler,
    so a double Ctrl-C still kills a wedged sweep.  Previous handlers
    are restored on exit.  Off the main thread, where Python forbids
    installing signal handlers, this degrades to a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield engine
        return

    previous: Dict[int, Any] = {}

    def _handler(signum: int, frame: Optional[FrameType]) -> None:
        if engine.shutdown_requested:
            # second signal: restore + re-raise to the old disposition
            old = previous.get(signum, signal.SIG_DFL)
            signal.signal(signum, old)
            if callable(old):
                old(signum, frame)
            else:
                signal.raise_signal(signum)
            return
        engine.request_shutdown()

    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
        yield engine
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
