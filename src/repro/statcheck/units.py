"""Physical-unit model for UNIT001: dimensions, algebra, annotation map.

The paper's controller mixes quantities that all arrive as bare Python
floats: times in nanoseconds, frequencies in GHz, voltages, energies in
nanojoules, queue occupancies in entries.  A frequency accidentally used
as a period (or the missing ``1/f`` in between) type-checks, runs, and
quietly skews every downstream number.  This module gives statcheck a
unit algebra to catch that class of bug statically:

* a :class:`Unit` is a vector of integer exponents over the four base
  dimensions ``(time, voltage, energy, occupancy)`` -- frequency is
  ``time^-1``, a slew rate in GHz/ns is ``time^-2``, a plain scalar is
  the zero vector;
* multiplication/division add/subtract exponent vectors, so
  ``slew_ghz_per_ns * dt`` correctly comes out as a frequency and
  ``abs(f_target - f_now) / slew_ghz_per_ns`` as a time;
* the **annotation map** seeds inference: exact symbol names used by
  ``repro.core`` / ``repro.dvfs`` / ``repro.mcd`` / ``repro.simcore``
  (``dt``, ``per``, ``voltage``, ``occupancy``, ``q_ref``, ...) plus the
  repo's naming conventions (``*_ns`` is a time, ``*_ghz`` a frequency,
  ``*_ghz_per_ns`` a slew rate, ``*_cycles`` a dimensionless count).

Unknown is always an option: a name with no annotation and no inferred
unit contributes nothing, so the rule fails open on dynamic code.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: exponents over (time, voltage, energy, occupancy)
Dim = Tuple[int, int, int, int]

SCALAR: Dim = (0, 0, 0, 0)
TIME: Dim = (1, 0, 0, 0)
FREQUENCY: Dim = (-1, 0, 0, 0)
SLEW: Dim = (-2, 0, 0, 0)  # frequency per time, e.g. GHz/ns
VOLTAGE: Dim = (0, 1, 0, 0)
ENERGY: Dim = (0, 0, 1, 0)
OCCUPANCY: Dim = (0, 0, 0, 1)
POWER: Dim = (-1, 0, 1, 0)  # energy per time

_NAMED: Dict[Dim, str] = {
    SCALAR: "scalar",
    TIME: "time [ns]",
    FREQUENCY: "frequency [GHz]",
    SLEW: "slew rate [GHz/ns]",
    VOLTAGE: "voltage [V]",
    ENERGY: "energy [nJ]",
    OCCUPANCY: "occupancy [entries]",
    POWER: "power [nJ/ns]",
}

_BASE_SYMBOLS = ("ns", "V", "nJ", "entries")


def unit_name(dim: Dim) -> str:
    """Human-readable name of a dimension vector."""
    if dim in _NAMED:
        return _NAMED[dim]
    parts = [
        f"{symbol}^{exp}"
        for symbol, exp in zip(_BASE_SYMBOLS, dim)
        if exp != 0
    ]
    return "·".join(parts) if parts else "scalar"


def mul(a: Dim, b: Dim) -> Dim:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3])


def div(a: Dim, b: Dim) -> Dim:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3])


def power(a: Dim, exponent: int) -> Dim:
    return (
        a[0] * exponent,
        a[1] * exponent,
        a[2] * exponent,
        a[3] * exponent,
    )


def invert(a: Dim) -> Dim:
    return power(a, -1)


#: Exact symbol names -> unit.  Applies to bare variables, attribute
#: names (``self.<name>``, ``cfg.<name>``), parameters, and keyword
#: arguments.  Seeded from the controller/simulator vocabulary of
#: ``repro.core``, ``repro.dvfs``, ``repro.mcd`` and ``repro.simcore``.
EXACT_ANNOTATIONS: Dict[str, Dim] = {
    # time
    "dt": TIME,
    "per": TIME,
    "fe_period": TIME,
    "deadline": TIME,
    "timer": TIME,
    "hint": TIME,
    # frequency
    "freq": FREQUENCY,
    "frequency": FREQUENCY,
    "f_now": FREQUENCY,
    "f_target": FREQUENCY,
    "f_min": FREQUENCY,
    "f_max": FREQUENCY,
    "fspan": FREQUENCY,
    "cur": FREQUENCY,
    "tgt": FREQUENCY,
    # voltage
    "voltage": VOLTAGE,
    "_voltage": VOLTAGE,
    "v_max": VOLTAGE,
    "v_min": VOLTAGE,
    "vspan": VOLTAGE,
    "volt": VOLTAGE,
    # energy
    "energy": ENERGY,
    # occupancy (queue entries)
    "occupancy": OCCUPANCY,
    "occ": OCCUPANCY,
    "q_ref": OCCUPANCY,
    "queue_ref": OCCUPANCY,
}

#: Name-suffix conventions -> unit, checked longest-first after the
#: exact map.  ``_ghz_per_ns`` must precede ``_ns``.
SUFFIX_ANNOTATIONS: Tuple[Tuple[str, Dim], ...] = (
    ("_ghz_per_ns", SLEW),
    ("ghz_per_ns", SLEW),
    ("_ns", TIME),
    ("_ghz", FREQUENCY),
    ("_cycles", SCALAR),
    ("_volt", VOLTAGE),
)


def declared_unit(name: str) -> Optional[Dim]:
    """Unit a symbol name declares via the annotation map, if any.

    ``None`` means the name carries no declaration (not "scalar": a
    declared scalar like ``*_cycles`` participates in checks, an
    undeclared name never does).
    """
    if name in EXACT_ANNOTATIONS:
        return EXACT_ANNOTATIONS[name]
    lowered = name.lower()
    for suffix, dim in SUFFIX_ANNOTATIONS:
        if lowered.endswith(suffix):
            return dim
    return None
