"""Rule registry: every rule class self-registers under its stable ID."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type, TypeVar

if TYPE_CHECKING:
    from repro.statcheck.engine import Rule

_RULES: "Dict[str, Type[Rule]]" = {}

R = TypeVar("R", bound="Type[Rule]")


def register(cls: R) -> R:
    """Class decorator adding a rule to the global registry.

    IDs are stable public API (they appear in suppressions and CI
    baselines), so re-registering an existing ID is a programming error.
    """
    rule_id = cls.id
    if not rule_id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule_id in _RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _RULES[rule_id] = cls
    return cls


def get_rule(rule_id: str) -> "Type[Rule]":
    _load_builtin_rules()
    return _RULES[rule_id]


def all_rules() -> "List[Type[Rule]]":
    """Every registered rule class, sorted by ID."""
    _load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def _load_builtin_rules() -> None:
    # importing the package populates the registry via @register
    import repro.statcheck.rules  # noqa: F401
