"""Per-function dataflow: a forward abstract walker + reaching definitions.

The semantic rules need flow-sensitive facts about local variables --
"which assignments can reach this read" (def-use) and "what physical
unit does this name carry here" (UNIT001).  Both are instances of a
forward dataflow analysis over the function body, so this module ships
one shared walker and two clients:

* :class:`ForwardWalker` -- an abstract-interpretation skeleton over the
  statement AST.  It threads an environment (``Dict[str, V]``) through
  straight-line code, forks it at ``if``/``try``/loops and re-merges the
  branch environments with the subclass's :meth:`merge`.  There is no
  explicit CFG: one pass per loop body is enough for lint-grade facts
  (the merge after the body accounts for the zero-iteration path, and a
  second iteration could only *widen* values toward unknown -- rules
  fail open on unknown, so skipping it can suppress, never invent, a
  finding).
* :class:`ReachingDefinitions` -- the classic def-use instance: the
  environment maps each local name to the set of assignment lines that
  may reach it; every ``Name`` load is recorded together with that set.

Nested function/class bodies open new scopes and are deliberately not
descended into (they are analyzed as their own functions); their *names*
are treated as ordinary assignments in the enclosing scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Generic, List, Optional, Tuple, TypeVar

from repro.statcheck.astutil import FUNCTION_NODES

V = TypeVar("V")

Env = Dict[str, V]


def _as_load(node: ast.expr) -> ast.expr:
    """A ``Load``-context clone of an attribute/subscript store target."""
    clone: ast.expr
    if isinstance(node, ast.Attribute):
        clone = ast.Attribute(value=node.value, attr=node.attr, ctx=ast.Load())
    elif isinstance(node, ast.Subscript):
        clone = ast.Subscript(
            value=node.value, slice=node.slice, ctx=ast.Load()
        )
    else:  # pragma: no cover - callers only pass attribute/subscript
        return node
    return ast.copy_location(clone, node)


class ForwardWalker(Generic[V]):
    """Forward abstract interpreter over one function (or module) body.

    Subclasses provide the value domain: :meth:`merge` joins the values a
    name carries on two control-flow paths, :meth:`infer` computes the
    abstract value of an expression (and may emit findings as a side
    effect), and :meth:`assign_hook` observes name bindings.
    """

    #: When True, ``x.attr op= e`` / ``x[i] op= e`` infer the current
    #: value of the target (as a Load expression) and pass it to
    #: :meth:`aug_combine` as ``left``.  Off by default: the original
    #: clients (units, def-use) define augmented semantics for plain
    #: names only, and widening their inputs could change findings.
    aug_reads_stores: bool = False

    def merge(self, a: V, b: V) -> V:
        raise NotImplementedError

    def infer(self, node: ast.expr, env: "Env[V]") -> Optional[V]:
        """Abstract value of an expression; ``None`` means unknown."""
        raise NotImplementedError

    def assign_hook(
        self, name: str, value: Optional[V], node: ast.AST, env: "Env[V]"
    ) -> None:
        """Called on every binding of ``name``; override to observe."""

    def store_hook(
        self, target: ast.expr, value: Optional[V], env: "Env[V]"
    ) -> None:
        """Called on non-name stores (attributes, subscripts)."""

    # -- driver ---------------------------------------------------------

    def run(
        self, body: List[ast.stmt], env: Optional["Env[V]"] = None
    ) -> "Env[V]":
        current: Env[V] = dict(env) if env else {}
        for stmt in body:
            current = self._stmt(stmt, current)
        return current

    def _merge_envs(self, a: "Env[V]", b: "Env[V]") -> "Env[V]":
        merged: Env[V] = dict(a)
        for name, value in b.items():
            if name in merged:
                merged[name] = self.merge(merged[name], value)
            else:
                merged[name] = value
        return merged

    def _bind(
        self, target: ast.expr, value: Optional[V], env: "Env[V]"
    ) -> None:
        if isinstance(target, ast.Name):
            if value is None:
                env.pop(target.id, None)
            else:
                env[target.id] = value
            self.assign_hook(target.id, value, target, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, env)
        else:
            # attribute / subscript stores: evaluate for side effects
            self.infer(target, env)
            self.store_hook(target, value, env)

    def _stmt(self, stmt: ast.stmt, env: "Env[V]") -> "Env[V]":
        if isinstance(stmt, ast.Assign):
            value = self.infer(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            value = self.infer(stmt.value, env) if stmt.value else None
            self._bind(stmt.target, value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            # x += e reads x, combines, and rebinds x
            right = self.infer(stmt.value, env)
            left: Optional[V] = None
            if isinstance(stmt.target, ast.Name):
                left = self.infer(
                    ast.copy_location(
                        ast.Name(id=stmt.target.id, ctx=ast.Load()),
                        stmt.target,
                    ),
                    env,
                )
            elif self.aug_reads_stores and isinstance(
                stmt.target, (ast.Attribute, ast.Subscript)
            ):
                left = self.infer(_as_load(stmt.target), env)
            combined = self.aug_combine(stmt, left, right)
            self._bind(stmt.target, combined, env)
            return env
        if isinstance(stmt, ast.If):
            self.infer(stmt.test, env)
            then_env = self.run(stmt.body, env)
            else_env = self.run(stmt.orelse, env)
            return self._merge_envs(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.infer(stmt.iter, env)
            entry = dict(env)
            self._bind(stmt.target, None, entry)
            body_env = self.run(stmt.body, entry)
            merged = self._merge_envs(env, body_env)
            return self.run(stmt.orelse, merged)
        if isinstance(stmt, ast.While):
            self.infer(stmt.test, env)
            body_env = self.run(stmt.body, dict(env))
            merged = self._merge_envs(env, body_env)
            return self.run(stmt.orelse, merged)
        if isinstance(stmt, ast.Try):
            body_env = self.run(stmt.body, dict(env))
            merged = self._merge_envs(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                if handler.name is not None:
                    handler_env.pop(handler.name, None)
                merged = self._merge_envs(
                    merged, self.run(handler.body, handler_env)
                )
            merged = self.run(stmt.orelse, merged)
            return self.run(stmt.finalbody, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, env)
            return self.run(stmt.body, env)
        if isinstance(stmt, FUNCTION_NODES) or isinstance(stmt, ast.ClassDef):
            # new scope: do not descend; the def binds its name here
            env.pop(stmt.name, None)
            return env
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env.pop(name, None)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.infer(stmt.value, env)
            self.on_return(stmt, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value, env)
            return env
        if isinstance(stmt, ast.Assert):
            self.infer(stmt.test, env)
            if stmt.msg is not None:
                self.infer(stmt.msg, env)
            return env
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                else:
                    self.infer(target, env)
            return env
        return env

    def aug_combine(
        self, stmt: ast.AugAssign, left: Optional[V], right: Optional[V]
    ) -> Optional[V]:
        """Value of ``x op= e``; defaults to keeping the left value."""
        return left

    def on_return(self, stmt: ast.Return, env: Dict[str, Optional[V]]) -> None:
        """Hook invoked at every ``return`` with the environment in
        effect there (after the value expression has been inferred).
        Lets path-sensitive checks -- e.g. span start/end pairing --
        observe what escapes the function on each exit path."""


# ---------------------------------------------------------------------------
# reaching definitions / def-use
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Use:
    """One read of a name with the definitions that may reach it."""

    name: str
    node: ast.Name
    reaching: FrozenSet[int]  # line numbers of candidate definitions


@dataclass
class DefUseResult:
    """Def-use chains of one function scope."""

    #: every name ever assigned -> all definition line numbers
    definitions: Dict[str, List[int]] = field(default_factory=dict)
    #: every Name load in source order
    uses: List[Use] = field(default_factory=list)

    def reaching(self, name: str, line: int) -> FrozenSet[int]:
        """Definition lines reaching the first use of ``name`` at ``line``."""
        for use in self.uses:
            if use.name == name and use.node.lineno == line:
                return use.reaching
        return frozenset()


class ReachingDefinitions(ForwardWalker[FrozenSet[int]]):
    """Def-use instance of the walker: values are sets of def lines."""

    def __init__(self) -> None:
        self.result = DefUseResult()

    def merge(self, a: FrozenSet[int], b: FrozenSet[int]) -> FrozenSet[int]:
        return a | b

    def assign_hook(
        self,
        name: str,
        value: Optional[FrozenSet[int]],
        node: ast.AST,
        env: "Env[FrozenSet[int]]",
    ) -> None:
        line = getattr(node, "lineno", 0)
        self.result.definitions.setdefault(name, []).append(line)
        env[name] = frozenset({line})

    def infer(
        self, node: ast.expr, env: "Env[FrozenSet[int]]"
    ) -> Optional[FrozenSet[int]]:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                self.result.uses.append(
                    Use(
                        name=child.id,
                        node=child,
                        reaching=env.get(child.id, frozenset()),
                    )
                )
        return None

    def aug_combine(
        self,
        stmt: ast.AugAssign,
        left: Optional[FrozenSet[int]],
        right: Optional[FrozenSet[int]],
    ) -> Optional[FrozenSet[int]]:
        return None  # assign_hook re-seeds the def set from the new line


def def_use(func: "ast.AST") -> DefUseResult:
    """Compute def-use chains for one function (or module) body.

    Parameters count as definitions at the ``def`` line, so a read of an
    untouched parameter reaches exactly one definition.
    """
    walker = ReachingDefinitions()
    env: Env[FrozenSet[int]] = {}
    body: List[ast.stmt]
    if isinstance(func, FUNCTION_NODES):
        args = func.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for param in params:
            walker.result.definitions.setdefault(param.arg, []).append(
                func.lineno
            )
            env[param.arg] = frozenset({func.lineno})
        body = func.body
    elif isinstance(func, ast.Module):
        body = func.body
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot analyze {type(func).__name__}")
    walker.run(body, env)
    return walker.result


__all__: Tuple[str, ...] = (
    "DefUseResult",
    "ForwardWalker",
    "ReachingDefinitions",
    "Use",
    "def_use",
)
