"""Execution-context model: who runs where, with what types.

The serve layer (PRs 6-7) runs one program in three execution contexts:

* the **event loop** -- ``async def`` coroutine bodies, tasks spawned
  with ``create_task``, callbacks scheduled with
  ``call_soon_threadsafe`` / ``run_coroutine_threadsafe``;
* **threads** -- ``threading.Thread(target=...)`` bodies and callables
  dispatched through ``loop.run_in_executor``;
* **pool workers** -- callables crossing ``executor.submit`` /
  ``pooled_map`` into worker processes (the RACE001 model).

The concurrency rules (ASYNC001/003, LOCK001) are all *reachability
questions over contexts*: "can a blocking call execute on the loop",
"can a loop-confined method execute on a thread", "is this attribute
written from two contexts at once".  This module builds the shared
model once per analysis run:

* :class:`TypeInferencer` -- annotation- and constructor-driven type
  inference for locals, parameters and ``self`` attributes, so
  ``self._m_requests.labels(...).inc()`` resolves through
  ``counter_family(...) -> CounterFamily`` and ``labels() -> Counter``
  to the project method ``Counter.inc``;
* :func:`make_resolver` -- plugs that inference into the call graph as
  its fallback resolver, giving edges for typed attribute receivers and
  class constructors;
* :class:`ContextModel` -- the three context-reachability maps
  (kind-filtered BFS over the graph: a thread traversal never follows a
  ``loop`` hop or enters a coroutine body), the loop-confined class set
  and thread-safe method set from source markers, and the blocking-call
  tables.

Markers (documented in DESIGN.md §6h):

* ``# statcheck: loop-confined`` on (or directly above) a ``class``
  line, or a ``@loop_confined`` decorator -- the class's methods must
  only run on the event loop (ASYNC003);
* ``# statcheck: thread-safe`` on (or directly above) a ``def`` line,
  or a ``@thread_safe`` decorator -- opts one method of a confined
  class out, for deliberately thread-side code.

Everything fails open: an unresolvable call contributes no edge, an
unannotated value has no type, and code reachable from no modeled root
belongs to no context.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.statcheck.astutil import dotted_name, walk_scope
from repro.statcheck.callgraph import CallGraph
from repro.statcheck.engine import Project, SourceFile
from repro.statcheck.semantic import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
)

# ---------------------------------------------------------------------------
# blocking-call tables (ASYNC001)
# ---------------------------------------------------------------------------

#: Fully-resolved call targets that block the calling thread.  On the
#: event loop each of these stalls *every* in-flight request -- the
#: static analogue of the paper's reaction-time argument: one slow
#: synchronous step delays all concurrent control decisions.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the calling thread",
    "open": "synchronous file I/O",
    "io.open": "synchronous file I/O",
    "os.system": "spawns and waits on a shell",
    "os.waitpid": "waits on a child process",
    "subprocess.run": "spawns and waits on a subprocess",
    "subprocess.call": "spawns and waits on a subprocess",
    "subprocess.check_call": "spawns and waits on a subprocess",
    "subprocess.check_output": "spawns and waits on a subprocess",
    "socket.create_connection": "synchronous socket connect",
    "urllib.request.urlopen": "synchronous HTTP request",
    "shutil.copy": "synchronous file copy",
    "shutil.copytree": "synchronous tree copy",
    "shutil.rmtree": "synchronous tree removal",
}

#: Method names that block regardless of receiver type (pathlib file
#: I/O, socket primitives).  Narrow on purpose: ``.read()``/``.write()``
#: are far too common to match syntactically.
BLOCKING_METHOD_ATTRS: Dict[str, str] = {
    "read_text": "synchronous file read",
    "write_text": "synchronous file write",
    "read_bytes": "synchronous file read",
    "write_bytes": "synchronous file write",
    "accept": "blocking socket accept",
    "recv": "blocking socket receive",
    "sendall": "blocking socket send",
}

#: Project functions that are themselves long-running synchronous work
#: (a scalar simulation run takes seconds); matched by bare name after
#: resolution to a project function.
BLOCKING_PROJECT_NAMES: FrozenSet[str] = frozenset({"run_experiment"})

# ---------------------------------------------------------------------------
# context traversal kinds
# ---------------------------------------------------------------------------

#: Edges an event-loop traversal follows: plain calls, awaits, task
#: spawns, and loop-scheduling hops (which land back on the loop).
LOOP_EDGE_KINDS: FrozenSet[str] = frozenset(
    {"direct", "method", "await", "task", "loop"}
)

#: Edges a thread traversal follows.  ``loop`` hops are deliberately
#: excluded -- ``call_soon_threadsafe`` / ``run_coroutine_threadsafe``
#: hand work *back* to the loop, which is exactly how thread code is
#: supposed to touch loop-confined state.
THREAD_EDGE_KINDS: FrozenSet[str] = frozenset(
    {"direct", "method", "thread", "executor"}
)

#: Edges inside a pool worker process (no loop, no extra threads that
#: the model cares about).
POOL_EDGE_KINDS: FrozenSet[str] = frozenset({"direct", "method", "pool"})


# ---------------------------------------------------------------------------
# type inference
# ---------------------------------------------------------------------------

#: typing wrappers whose argument carries the interesting type
_UNWRAP_SUBSCRIPTS = frozenset({"Optional", "Final", "ClassVar", "Annotated"})


class TypeInferencer:
    """Best-effort nominal types for expressions, from three sources:

    * **annotations** -- return types, parameter types and
      ``self.x: T`` attribute declarations, unwrapped through
      ``Optional[...]`` / ``"quoted"`` / ``X | None`` forms;
    * **constructors** -- ``self.store = JobStore(...)`` types the
      attribute, ``engine = SweepEngine(...)`` types the local;
    * **return chaining** -- ``self.metrics.counter(...)`` types
      through :class:`MetricsRegistry`'s annotated return.

    Types are project class qualnames; anything else is ``None``
    (unknown).  Conflicting evidence poisons the binding back to
    unknown, so the inference under-approximates and the rules built on
    it fail open.
    """

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        #: function qualname -> class qualname of its return value
        self.return_types: Dict[str, str] = {}
        #: function qualname -> {param name: class qualname}
        self.param_types: Dict[str, Dict[str, str]] = {}
        #: class qualname -> {attribute: class qualname}
        self.attr_types: Dict[str, Dict[str, str]] = {}
        self._poisoned_attrs: Set[Tuple[str, str]] = set()
        self._locals: Dict[str, Dict[str, str]] = {}
        self._locals_in_progress: Set[str] = set()
        self._build()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        for qualname in sorted(self.table.functions):
            fn = self.table.functions[qualname]
            returns = fn.node.returns
            if returns is not None:
                resolved = self._annotation_type(fn.module, returns)
                if resolved is not None:
                    self.return_types[qualname] = resolved
            params: Dict[str, str] = {}
            args = fn.node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.annotation is None:
                    continue
                param_type = self._annotation_type(fn.module, arg.annotation)
                if param_type is not None:
                    params[arg.arg] = param_type
            if fn.class_name is not None:
                owner = self.table.modules[fn.module].classes.get(fn.class_name)
                if owner is not None:
                    params.setdefault("self", owner.qualname)
                    params.setdefault("cls", owner.qualname)
            if params:
                self.param_types[qualname] = params
        # two rounds so chained attributes settle:
        # self.metrics = MetricsRegistry()      (round 1)
        # self._m = self.metrics.counter(...)   (round 2 sees round 1)
        for _ in range(2):
            self._build_attr_types()

    def _build_attr_types(self) -> None:
        for cls_qualname in sorted(self.table.classes):
            cls = self.table.classes[cls_qualname]
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if isinstance(node, ast.AnnAssign):
                        attr = self._self_attr(node.target)
                        if attr is not None:
                            self._record_attr(
                                cls_qualname,
                                attr,
                                self._annotation_type(
                                    method.module, node.annotation
                                ),
                            )
                    elif isinstance(node, ast.Assign):
                        self_targets = [
                            attr
                            for attr in (
                                self._self_attr(t) for t in node.targets
                            )
                            if attr is not None
                        ]
                        if not self_targets:
                            continue
                        value_type = self.infer(method, node.value)
                        for attr in self_targets:
                            self._record_attr(cls_qualname, attr, value_type)

    @staticmethod
    def _self_attr(target: ast.expr) -> Optional[str]:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _record_attr(
        self, cls_qualname: str, attr: str, inferred: Optional[str]
    ) -> None:
        if inferred is None or (cls_qualname, attr) in self._poisoned_attrs:
            return
        attrs = self.attr_types.setdefault(cls_qualname, {})
        existing = attrs.get(attr)
        if existing is None:
            attrs[attr] = inferred
        elif existing != inferred:
            del attrs[attr]
            self._poisoned_attrs.add((cls_qualname, attr))

    def _annotation_type(
        self, module: str, node: ast.expr, depth: int = 0
    ) -> Optional[str]:
        if depth > 6:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self._annotation_type(module, parsed, depth + 1)
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base is None:
                return None
            last = base.rsplit(".", 1)[-1]
            inner: ast.expr = node.slice
            if last in _UNWRAP_SUBSCRIPTS:
                if isinstance(inner, ast.Tuple):
                    if not inner.elts:
                        return None
                    inner = inner.elts[0]
                return self._annotation_type(module, inner, depth + 1)
            if last == "Union":
                elements = (
                    list(inner.elts)
                    if isinstance(inner, ast.Tuple)
                    else [inner]
                )
                return self._single_type(module, elements, depth)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self._single_type(module, [node.left, node.right], depth)
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if dotted is None:
                return None
            cls = self.table.resolve_class(module, dotted)
            return cls.qualname if cls is not None else None
        return None

    def _single_type(
        self, module: str, elements: List[ast.expr], depth: int
    ) -> Optional[str]:
        """The unique project type among union members, if there is one."""
        found: Set[str] = set()
        for element in elements:
            resolved = self._annotation_type(module, element, depth + 1)
            if resolved is not None:
                found.add(resolved)
        return found.pop() if len(found) == 1 else None

    # -- queries --------------------------------------------------------

    def infer(
        self, fn: FunctionInfo, expr: ast.expr, depth: int = 0
    ) -> Optional[str]:
        """Class qualname of ``expr`` evaluated inside ``fn``, or None."""
        if depth > 8:
            return None
        if isinstance(expr, ast.Name):
            params = self.param_types.get(fn.qualname)
            if params is not None and expr.id in params:
                return params[expr.id]
            return self._locals_of(fn).get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer(fn, expr.value, depth + 1)
            if base is None:
                return None
            return self.attr_types.get(base, {}).get(expr.attr)
        if isinstance(expr, ast.Await):
            return self.infer(fn, expr.value, depth + 1)
        if isinstance(expr, ast.Call):
            return self._infer_call(fn, expr, depth)
        if isinstance(expr, ast.IfExp):
            body = self.infer(fn, expr.body, depth + 1)
            orelse = self.infer(fn, expr.orelse, depth + 1)
            if body is not None and orelse is not None:
                return body if body == orelse else None
            # one branch is typically a None default: Optional narrowing
            return body if body is not None else orelse
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                inferred = self.infer(fn, value, depth + 1)
                if inferred is not None:
                    return inferred
            return None
        return None

    def _infer_call(
        self, fn: FunctionInfo, call: ast.Call, depth: int
    ) -> Optional[str]:
        func = call.func
        dotted = dotted_name(func)
        if dotted is not None and not dotted.startswith(("self.", "cls.")):
            cls = self.table.resolve_class(fn.module, dotted)
            if cls is not None:
                return cls.qualname
            target = self.table.resolve_function(fn.module, dotted)
            if target is not None:
                return self.return_types.get(target.qualname)
        if isinstance(func, ast.Attribute):
            receiver = self.infer(fn, func.value, depth + 1)
            if receiver is not None:
                cls = self.table.classes.get(receiver)
                if cls is not None:
                    methods = self.table.mro_methods(cls, func.attr)
                    if methods:
                        return self.return_types.get(methods[0].qualname)
        return None

    def _locals_of(self, fn: FunctionInfo) -> Dict[str, str]:
        cached = self._locals.get(fn.qualname)
        if cached is not None:
            return cached
        if fn.qualname in self._locals_in_progress:
            return {}
        self._locals_in_progress.add(fn.qualname)
        result: Dict[str, str] = {}
        # the partial map is visible to nested infer() calls on purpose
        self._locals[fn.qualname] = result
        poisoned: Set[str] = set()
        for node in walk_scope(fn.node):
            bindings: List[Tuple[str, ast.expr]] = []
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                bindings.append((node.targets[0].id, node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        bindings.append(
                            (item.optional_vars.id, item.context_expr)
                        )
            for name, value in bindings:
                if name in poisoned:
                    continue
                inferred = self.infer(fn, value)
                existing = result.get(name)
                if inferred is None:
                    # a re-binding we cannot type invalidates the name
                    if existing is not None:
                        del result[name]
                        poisoned.add(name)
                    continue
                if existing is None:
                    result[name] = inferred
                elif existing != inferred:
                    del result[name]
                    poisoned.add(name)
        self._locals_in_progress.discard(fn.qualname)
        return result


def make_resolver(
    table: SymbolTable, types: TypeInferencer
) -> Callable[[FunctionInfo, ast.expr], Optional[FunctionInfo]]:
    """Call-graph fallback resolver backed by type inference.

    Handles the two shapes the syntactic resolver cannot: attribute
    calls on typed receivers (``self.store.publish`` where ``store`` was
    constructed as a ``JobStore``) and class constructor calls
    (``SweepEngine(...)`` resolves to ``SweepEngine.__init__``).
    """

    def resolve(fn: FunctionInfo, node: ast.expr) -> Optional[FunctionInfo]:
        if isinstance(node, ast.Attribute):
            receiver = types.infer(fn, node.value)
            if receiver is not None:
                cls = table.classes.get(receiver)
                if cls is not None:
                    methods = table.mro_methods(cls, node.attr)
                    if methods:
                        return methods[0]
        dotted = dotted_name(node)
        if dotted is not None and not dotted.startswith(("self.", "cls.")):
            cls_info = table.resolve_class(fn.module, dotted)
            if cls_info is not None:
                init = table.mro_methods(cls_info, "__init__")
                if init:
                    return init[0]
        return None

    return resolve


# ---------------------------------------------------------------------------
# source markers
# ---------------------------------------------------------------------------

_CONFINED_MARKER = re.compile(r"#\s*statcheck:\s*loop-confined\b")
_THREAD_SAFE_MARKER = re.compile(r"#\s*statcheck:\s*thread-safe\b")


def _has_marker(
    file: SourceFile, node: ast.AST, marker: "re.Pattern[str]"
) -> bool:
    """Marker comment on the def/class line, a decorator line, or the
    line directly above."""
    lines = file.source.splitlines()
    lineno = getattr(node, "lineno", 1)
    start = lineno
    for decorator in getattr(node, "decorator_list", []):
        start = min(start, getattr(decorator, "lineno", start))
    start = max(1, start - 1)
    for line in range(start, lineno + 1):
        if line <= len(lines) and marker.search(lines[line - 1]):
            return True
    return False


def _has_decorator(node: ast.AST, name: str) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        dotted = dotted_name(target)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == name:
            return True
    return False


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------


@dataclass
class ContextModel:
    """The shared per-run concurrency model the relational rules query."""

    table: SymbolTable
    types: TypeInferencer
    graph: CallGraph
    #: qualnames of ``async def`` functions (coroutine bodies)
    async_functions: FrozenSet[str]
    #: context -> {reachable qualname -> root it was reached from}
    loop: Dict[str, str] = field(default_factory=dict)
    thread: Dict[str, str] = field(default_factory=dict)
    pool: Dict[str, str] = field(default_factory=dict)
    #: class qualnames marked ``# statcheck: loop-confined``
    loop_confined: FrozenSet[str] = frozenset()
    #: method qualnames marked ``# statcheck: thread-safe`` (opt-out)
    thread_safe: FrozenSet[str] = frozenset()

    @classmethod
    def build(cls, project: Project) -> "ContextModel":
        table = SymbolTable.build(project)
        types = TypeInferencer(table)
        graph = CallGraph.build(table, resolver=make_resolver(table, types))
        async_functions = frozenset(
            qualname
            for qualname, fn in table.functions.items()
            if isinstance(fn.node, ast.AsyncFunctionDef)
        )
        loop_roots: Set[str] = set(async_functions)
        for edge in graph.edges:
            if edge.kind in ("task", "loop"):
                loop_roots.add(edge.callee)
        loop = graph.reachable_via(loop_roots, LOOP_EDGE_KINDS)

        def sync_only(qualname: str) -> bool:
            # a thread/pool traversal cannot execute a coroutine body
            return qualname not in async_functions

        thread = graph.reachable_via(
            graph.thread_entries, THREAD_EDGE_KINDS, enter=sync_only
        )
        pool = graph.reachable_via(
            graph.worker_entries, POOL_EDGE_KINDS, enter=sync_only
        )
        confined: Set[str] = set()
        thread_safe: Set[str] = set()
        for qualname in sorted(table.classes):
            info = table.classes[qualname]
            if _has_marker(
                info.file, info.node, _CONFINED_MARKER
            ) or _has_decorator(info.node, "loop_confined"):
                confined.add(qualname)
            for method in info.methods.values():
                if _has_marker(
                    method.file, method.node, _THREAD_SAFE_MARKER
                ) or _has_decorator(method.node, "thread_safe"):
                    thread_safe.add(method.qualname)
        return cls(
            table=table,
            types=types,
            graph=graph,
            async_functions=async_functions,
            loop=loop,
            thread=thread,
            pool=pool,
            loop_confined=frozenset(confined),
            thread_safe=frozenset(thread_safe),
        )

    def contexts_of(self, qualname: str) -> Tuple[str, ...]:
        """Which execution contexts ``qualname`` may run in (sorted)."""
        contexts = []
        if qualname in self.loop:
            contexts.append("loop")
        if qualname in self.pool:
            contexts.append("pool")
        if qualname in self.thread:
            contexts.append("thread")
        return tuple(contexts)


def context_model(project: Project) -> ContextModel:
    """The per-run :class:`ContextModel`, built once and memoized on the
    project (the analyzer creates a fresh :class:`Project` per run, so
    the cache cannot go stale across runs)."""
    cached = getattr(project, "_statcheck_context_model", None)
    if isinstance(cached, ContextModel):
        return cached
    model = ContextModel.build(project)
    setattr(project, "_statcheck_context_model", model)
    return model
