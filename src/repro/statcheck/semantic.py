"""Project-wide symbol table: the semantic layer's ground truth.

The syntactic rules of PR 3 look at one AST at a time; the semantic
rules (UNIT001/SIM001/RACE001) need to answer *project* questions --
"which function does this call resolve to", "which module-level names
are mutable", "what does module A import from module B".  This module
builds that index once per analysis run:

* :class:`FunctionInfo` / :class:`ClassInfo` -- every function, method
  and class in the project under a stable dotted qualname
  (``repro.engine.scheduler._pool_entry``,
  ``repro.mcd.processor.MCDProcessor._sample``);
* :class:`ModuleInfo` -- per-module import map, top-level symbols,
  module-level *mutable* bindings (dict/list/set/deque displays and
  constructors), and the set of project modules it imports -- the
  dependency edges the incremental cache invalidates along;
* :class:`SymbolTable` -- the project-wide index with name resolution
  through import aliases (``from repro.engine.jobs import run_job as
  rj`` resolves ``rj`` to the ``run_job`` FunctionInfo).

Everything here is a *static over-approximation that fails open*: a name
that cannot be resolved simply resolves to ``None`` and downstream rules
do not fire on it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.statcheck.astutil import FUNCTION_NODES, import_map
from repro.statcheck.engine import Project, SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors whose module-level result is a shared mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)

_MUTABLE_DISPLAYS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str
    name: str
    node: FunctionNode
    file: SourceFile
    module: str
    #: enclosing class name for methods, ``None`` for plain functions
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition plus its methods and resolved base names."""

    qualname: str
    name: str
    node: ast.ClassDef
    file: SourceFile
    module: str
    #: base-class names as written, resolved through the import map when
    #: possible (``MCDProcessor`` -> ``repro.mcd.processor.MCDProcessor``)
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module slice of the symbol table."""

    module: str
    file: SourceFile
    #: local name -> fully-qualified target (see :func:`astutil.import_map`)
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound to a mutable container, with the binding node
    mutable_globals: Dict[str, ast.AST] = field(default_factory=dict)
    #: project modules this module imports (incremental-cache dependencies)
    deps: Set[str] = field(default_factory=set)


def _is_mutable_value(value: ast.AST, imports: Dict[str, str]) -> bool:
    if isinstance(value, _MUTABLE_DISPLAYS):
        return True
    if isinstance(value, ast.Call):
        from repro.statcheck.astutil import resolve_call

        target = resolve_call(value.func, imports)
        return target in _MUTABLE_CONSTRUCTORS
    return False


def _module_level_targets(stmt: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(name, value)`` for module-level name bindings."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id, stmt.value


def _dep_modules(
    tree: ast.Module, module: str, project_modules: Set[str]
) -> Set[str]:
    """Project modules this module imports, at any nesting depth.

    ``from repro.mcd import processor`` depends on ``repro.mcd.processor``
    when that module exists in the project, else on ``repro.mcd``.
    """
    deps: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in project_modules:
                    deps.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            base = node.module
            if base in project_modules:
                deps.add(base)
            for alias in node.names:
                candidate = f"{base}.{alias.name}"
                if candidate in project_modules:
                    deps.add(candidate)
    deps.discard(module)
    return deps


class SymbolTable:
    """Project-wide index of modules, functions, classes and globals."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, project: Project) -> "SymbolTable":
        table = cls()
        project_modules = {
            file.module for file in project.files if file.tree is not None
        }
        for file in project.files:
            if file.tree is None:
                continue
            table._index_module(file, project_modules)
        return table

    # -- construction ---------------------------------------------------

    def _index_module(
        self, file: SourceFile, project_modules: Set[str]
    ) -> None:
        assert file.tree is not None
        imports = import_map(file.tree)
        info = ModuleInfo(
            module=file.module,
            file=file,
            imports=imports,
            deps=_dep_modules(file.tree, file.module, project_modules),
        )
        for stmt in file.tree.body:
            if isinstance(stmt, FUNCTION_NODES):
                self._index_function(info, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(info, stmt)
            else:
                for name, value in _module_level_targets(stmt):
                    if _is_mutable_value(value, imports):
                        info.mutable_globals[name] = value
        self.modules[file.module] = info

    def _index_function(
        self,
        info: ModuleInfo,
        node: FunctionNode,
        class_name: Optional[str],
    ) -> FunctionInfo:
        parts = [info.module]
        if class_name is not None:
            parts.append(class_name)
        parts.append(node.name)
        fn = FunctionInfo(
            qualname=".".join(parts),
            name=node.name,
            node=node,
            file=info.file,
            module=info.module,
            class_name=class_name,
        )
        self.functions[fn.qualname] = fn
        if class_name is None:
            info.functions[node.name] = fn
        # nested defs get their own (addressable) entries so the call
        # graph can give them edges; they are not module-level symbols
        for child in ast.walk(node):
            if child is node or not isinstance(child, FUNCTION_NODES):
                continue
            nested = FunctionInfo(
                qualname=f"{fn.qualname}.{child.name}",
                name=child.name,
                node=child,
                file=info.file,
                module=info.module,
                class_name=class_name,
            )
            self.functions.setdefault(nested.qualname, nested)
        return fn

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        from repro.statcheck.astutil import dotted_name

        bases: List[str] = []
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            resolved = info.imports.get(head, head)
            bases.append(f"{resolved}.{rest}" if rest else resolved)
        cls_info = ClassInfo(
            qualname=f"{info.module}.{node.name}",
            name=node.name,
            node=node,
            file=info.file,
            module=info.module,
            bases=tuple(bases),
        )
        for stmt in node.body:
            if isinstance(stmt, FUNCTION_NODES):
                method = self._index_function(info, stmt, class_name=node.name)
                cls_info.methods[stmt.name] = method
        info.classes[node.name] = cls_info
        self.classes[cls_info.qualname] = cls_info

    # -- queries --------------------------------------------------------

    def resolve_function(
        self, module: str, dotted: str
    ) -> Optional[FunctionInfo]:
        """Resolve a (possibly aliased) dotted name used in ``module`` to a
        project function, or ``None`` when it points outside the project."""
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest and head in info.functions:
            return info.functions[head]
        resolved_head = info.imports.get(head, head)
        full = f"{resolved_head}.{rest}" if rest else resolved_head
        return self.functions.get(full)

    def resolve_class(self, module: str, dotted: str) -> Optional[ClassInfo]:
        """Like :meth:`resolve_function` for classes."""
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest and head in info.classes:
            return info.classes[head]
        resolved_head = info.imports.get(head, head)
        full = f"{resolved_head}.{rest}" if rest else resolved_head
        return self.classes.get(full)

    def classes_named(self, name: str) -> List[ClassInfo]:
        """Every project class with the given bare name (stable order)."""
        return [
            cls
            for qualname, cls in sorted(self.classes.items())
            if cls.name == name
        ]

    def mro_methods(self, cls: ClassInfo, method: str) -> List[FunctionInfo]:
        """The method implementations ``cls`` (or a project base) provides.

        Walks the class and its project-resolvable base classes in
        declaration order; unresolvable bases are skipped (fail open).
        """
        seen: Set[str] = set()
        todo: List[ClassInfo] = [cls]
        found: List[FunctionInfo] = []
        while todo:
            current = todo.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                found.append(current.methods[method])
            for base in current.bases:
                base_cls = self.classes.get(base)
                if base_cls is None:
                    # the base may be referenced by bare name in-module
                    base_cls = self.resolve_class(current.module, base)
                if base_cls is not None:
                    todo.append(base_cls)
        return found
