"""MET001: metrics label values must have bounded cardinality.

Every distinct label value materializes a child time series that lives
for the process lifetime (:class:`~repro.obs.metrics.MetricFamily`
interns children forever).  A label fed from request or job data --
``labels(path=request.path)``, ``labels(job=job.name)`` -- grows
without bound and eventually *is* the memory leak.

The rule checks every ``*.labels(...)`` argument for bounded origin,
reasoning locally (you should not need whole-program context to know a
label's cardinality):

* string/number literals and module-level constants are bounded;
* attribute reads off module-level names (``JobState.QUEUED``) are
  bounded -- class-level enumerations are static;
* ``for state in (A, B, C):`` loop variables over literal collections
  are bounded;
* the **clamp idiom** is bounded: ``x if x in KNOWN else "other"``
  where ``KNOWN`` is a literal (or module-level) set/tuple/frozenset;
* ``str(x)`` is bounded iff ``x`` is; ``.pattern`` / ``.status`` reads
  are allowlisted (router patterns and HTTP status codes are static);
* everything else that traces back to a parameter or local of the
  enclosing function is **unbounded** -- clamp it at the use site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.statcheck.astutil import FUNCTION_NODES, dotted_name, walk_scope
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: attribute reads considered bounded wherever they come from: router
#: match patterns and HTTP status codes form small static sets.
_BOUNDED_ATTRS = frozenset({"pattern", "status"})

#: calls that preserve boundedness of their single argument
_CAST_FUNCTIONS = frozenset({"str", "int", "repr", "format"})

#: literal-collection constructors
_COLLECTION_CONSTRUCTORS = frozenset({"set", "frozenset", "tuple", "list"})


def _literal_collection_elements(expr: ast.expr) -> Optional[List[ast.expr]]:
    """Elements of a literal set/tuple/list (possibly wrapped in a
    ``frozenset({...})``-style constructor call), else ``None``."""
    if isinstance(expr, (ast.Set, ast.Tuple, ast.List)):
        return list(expr.elts)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _COLLECTION_CONSTRUCTORS
        and len(expr.args) == 1
    ):
        return _literal_collection_elements(expr.args[0])
    return None


class _FunctionEnv:
    """Name origins inside one function: what is locally bound, what is
    bound once to a known expression, what iterates a literal set."""

    def __init__(self, fn: ast.AST, module_bounded: Set[str]) -> None:
        self.module_bounded = module_bounded
        self.bound_names: Set[str] = set()
        self.single_assign: Dict[str, ast.expr] = {}
        self.loop_bounded: Set[str] = set()
        args = fn.args  # type: ignore[attr-defined]
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.bound_names.add(arg.arg)
        poisoned: Set[str] = set()
        for node in walk_scope(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self.bound_names.add(node.id)
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if name in self.single_assign or name in poisoned:
                    self.single_assign.pop(name, None)
                    poisoned.add(name)
                else:
                    self.single_assign[name] = node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    elements = _literal_collection_elements(node.iter)
                    iter_name = (
                        node.iter.id
                        if isinstance(node.iter, ast.Name)
                        else None
                    )
                    if elements is not None or (
                        iter_name is not None
                        and iter_name in self.module_bounded
                    ):
                        self.loop_bounded.add(node.target.id)

    def is_bounded(self, expr: ast.expr, depth: int = 0) -> bool:
        if depth > 6:
            return False
        if isinstance(expr, ast.Constant):
            return True
        if isinstance(expr, ast.JoinedStr):
            return all(
                self.is_bounded(value.value, depth + 1)
                if isinstance(value, ast.FormattedValue)
                else True
                for value in expr.values
            )
        if isinstance(expr, ast.Name):
            if expr.id in self.loop_bounded:
                return True
            if expr.id in self.single_assign:
                return self.is_bounded(self.single_assign[expr.id], depth + 1)
            if expr.id in self.bound_names:
                return False  # parameter or untracked local: request data
            # a module-level name: a constant, class, or import --
            # static by construction (fails open on imported values)
            return True
        if isinstance(expr, ast.Attribute):
            if expr.attr in _BOUNDED_ATTRS:
                return True
            base = expr.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name) and base.id not in self.bound_names:
                # attribute of a module-level name: JobState.QUEUED
                return True
            return False
        if isinstance(expr, ast.Call):
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id in _CAST_FUNCTIONS
                and len(expr.args) == 1
            ):
                return self.is_bounded(expr.args[0], depth + 1)
            return False
        if isinstance(expr, ast.IfExp):
            if self._is_clamp(expr):
                return True
            return self.is_bounded(expr.body, depth + 1) and self.is_bounded(
                expr.orelse, depth + 1
            )
        if isinstance(expr, ast.BoolOp):
            return all(
                self.is_bounded(value, depth + 1) for value in expr.values
            )
        return False

    def _is_clamp(self, expr: ast.IfExp) -> bool:
        """``x if x in KNOWN else "other"``: membership in a static
        collection proves boundedness regardless of where x came from."""
        test = expr.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.In)
        ):
            return False
        container = test.comparators[0]
        is_static = _literal_collection_elements(container) is not None or (
            isinstance(container, ast.Name)
            and container.id in self.module_bounded
        )
        return is_static and self.is_bounded(expr.orelse, 1)


def _module_bounded_names(tree: ast.Module) -> Set[str]:
    """Module-level names bound to literal collections (the clamp sets)."""
    names: Set[str] = set()
    for stmt in tree.body:
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if value is None or _literal_collection_elements(value) is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register
class MetricsLabelCardinalityRule(Rule):
    """Label values come from static sets, not request data."""

    id = "MET001"
    description = (
        "metrics label values must have statically bounded cardinality "
        "(constants, enumerations, clamped sets): every distinct value "
        "interns a child series for the process lifetime, so "
        "request-derived labels are an unbounded memory leak"
    )
    scope = ()

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        module_bounded = _module_bounded_names(file.tree)
        for fn in ast.walk(file.tree):
            if not isinstance(fn, FUNCTION_NODES):
                continue
            env: Optional[_FunctionEnv] = None
            for node in walk_scope(fn):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "labels"
                ):
                    continue
                receiver = dotted_name(node.func.value)
                arguments = [(None, arg) for arg in node.args] + [
                    (kw.arg, kw.value) for kw in node.keywords
                ]
                for label_name, value in arguments:
                    if env is None:
                        env = _FunctionEnv(fn, module_bounded)
                    if env.is_bounded(value):
                        continue
                    label = (
                        f"label {label_name}" if label_name else "label value"
                    )
                    origin = dotted_name(value)
                    shown = f" ({origin})" if origin is not None else ""
                    yield self.finding(
                        file,
                        value,
                        f"{label} on {receiver or 'metric'}.labels() flows "
                        f"from request/job data{shown}; clamp it to a "
                        "static set (value if value in KNOWN else "
                        "\"other\") or use an enumeration",
                    )
