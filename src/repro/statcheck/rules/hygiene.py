"""General Python hygiene rules (PY001, PY002).

These two are the classic footguns that have bitten control-loop
reproductions specifically: a mutable default argument shared across
controller instances couples runs that must be independent, and an
overbroad ``except`` in the scheduler retry path turns a real defect
into a silent retry storm.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import FUNCTION_NODES, import_map, resolve_call
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: Constructors of mutable containers, flagged when used as a default.
_MUTABLE_CALLS = frozenset(
    {
        "bytearray",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "dict",
        "list",
        "set",
    }
)

_MUTABLE_LITERALS = (
    ast.Dict,
    ast.DictComp,
    ast.List,
    ast.ListComp,
    ast.Set,
    ast.SetComp,
)

#: Exception types too broad to swallow silently.
_OVERBROAD = frozenset({"BaseException", "Exception"})


@register
class MutableDefaultRule(Rule):
    """PY001: default argument values must be immutable."""

    id = "PY001"
    description = (
        "no mutable default arguments; the default is evaluated once and "
        "shared by every call -- use None and create inside the function"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, FUNCTION_NODES + (ast.Lambda,)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                default for default in args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default, imports):
                    yield self.finding(
                        file,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and build the container inside "
                        "the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST, imports: "dict[str, str]") -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            return resolve_call(node.func, imports) in _MUTABLE_CALLS
        return False


@register
class SwallowedExceptionRule(Rule):
    """PY002: no bare/overbroad except that silently swallows errors."""

    id = "PY002"
    description = (
        "no bare except, and no except Exception/BaseException whose "
        "handler neither re-raises nor uses the caught exception"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    file,
                    node,
                    "bare except catches SystemExit and KeyboardInterrupt; "
                    "name the exceptions this handler is meant for",
                )
                continue
            if not self._is_overbroad(node.type):
                continue
            if self._handler_reraises(node):
                continue
            if node.name is not None and self._uses_name(node, node.name):
                # the error is inspected/reported, not swallowed
                continue
            yield self.finding(
                file,
                node,
                f"overbroad 'except {ast.unparse(node.type)}' swallows "
                "errors silently; catch specific exceptions, re-raise, or "
                "report the caught error",
            )

    @staticmethod
    def _is_overbroad(type_node: ast.AST) -> bool:
        nodes = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(
            isinstance(node, ast.Name) and node.id in _OVERBROAD
            for node in nodes
        )

    @staticmethod
    def _handler_reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise) for node in ast.walk(handler)
        )

    @staticmethod
    def _uses_name(handler: ast.ExceptHandler, name: str) -> bool:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
        return False
