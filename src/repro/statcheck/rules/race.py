"""RACE001: shared-state writes in pool-worker-reachable code.

The sweep engine fans jobs out over a ``ProcessPoolExecutor``.  A
function that runs inside a worker and mutates a module-level container
(``CACHE[key] = ...``, ``RESULTS.append(...)``, ``global COUNT``) is a
latent correctness bug twice over: under the pool each worker mutates
its *own copy* so the write silently vanishes from the parent, and under
the engine's serial fallback the same code suddenly *does* share state
-- two execution modes, two behaviours.

This rule combines the semantic layer's pieces: the
:class:`~repro.statcheck.semantic.SymbolTable` knows which module-level
names are mutable containers, the
:class:`~repro.statcheck.callgraph.CallGraph` knows which functions are
reachable from pool submissions (``executor.submit(fn, ...)``,
``pool.map(fn, ...)``, ``pooled_map(fn, ...)``).  Any mutation of a
module-level mutable inside a worker-reachable function is flagged,
with the worker entry point it is reachable from named in the message.

Names rebound locally (parameters, plain local assignments without a
``global`` declaration) shadow the global and are not flagged; imported
globals (``from repro.engine.state import CACHE``) resolve through the
import map.  Unresolvable call targets contribute no reachability, so
the rule fails open on dynamic dispatch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.statcheck.callgraph import CallGraph
from repro.statcheck.engine import Project, Rule
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.semantic import FunctionInfo, SymbolTable

#: methods that mutate their receiver in place
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _local_bindings(fn: FunctionInfo) -> Tuple[Set[str], Set[str]]:
    """Names bound locally in ``fn`` and names declared ``global``."""
    declared_global: Set[str] = set()
    bound: Set[str] = set()
    args = fn.node.args
    for param in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(param.arg)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
    return bound - declared_global, declared_global


class _GlobalResolver:
    """Resolve a bare name in a function to a module-level mutable."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table

    def resolve(self, fn: FunctionInfo, name: str) -> Optional[str]:
        """Dotted ``module.NAME`` of the mutable global, or ``None``."""
        module = self.table.modules.get(fn.module)
        if module is None:
            return None
        if name in module.mutable_globals:
            return f"{fn.module}.{name}"
        imported = module.imports.get(name)
        if imported is None or "." not in imported:
            return None
        src_module, _, attr = imported.rpartition(".")
        src = self.table.modules.get(src_module)
        if src is not None and attr in src.mutable_globals:
            return f"{src_module}.{attr}"
        return None


def _mutations(fn: FunctionInfo) -> Iterator[Tuple[str, ast.AST, str]]:
    """Yield ``(name, node, how)`` for candidate shared-state mutations."""
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    yield target.value.id, node, "item assignment"
                elif isinstance(target, ast.Name) and isinstance(
                    node, (ast.Assign, ast.AugAssign)
                ):
                    # only a race when the name is declared global;
                    # the caller filters on that
                    yield target.id, node, "rebinding"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    yield target.value.id, node, "item deletion"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr in _MUTATING_METHODS
        ):
            yield node.func.value.id, node, f".{node.func.attr}() call"


@register
class PoolSharedStateRule(Rule):
    """No module-level mutable state mutated from pool workers."""

    id = "RACE001"
    description = (
        "functions reachable from pool-worker entry points (executor/pool "
        "submissions, pooled_map) must not mutate module-level mutable "
        "containers: worker processes mutate private copies, and the "
        "serial fallback silently changes the sharing semantics"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        table = SymbolTable.build(project)
        graph = CallGraph.build(table)
        in_worker = graph.worker_reachable()
        if not in_worker:
            return
        resolver = _GlobalResolver(table)
        for qualname in sorted(in_worker):
            fn = table.functions.get(qualname)
            if fn is None:
                continue
            entry = in_worker[qualname]
            local, declared_global = _local_bindings(fn)
            seen: Set[Tuple[str, int]] = set()
            for name, node, how in _mutations(fn):
                if name in local:
                    continue
                if how == "rebinding" and name not in declared_global:
                    continue
                target = resolver.resolve(fn, name)
                if target is None and how == "rebinding":
                    # ``global`` rebinding races even on immutable values
                    module = table.modules.get(fn.module)
                    if module is not None:
                        target = f"{fn.module}.{name}"
                if target is None:
                    continue
                key = (target, getattr(node, "lineno", 0))
                if key in seen:
                    continue
                seen.add(key)
                via = (
                    ""
                    if entry == qualname
                    else f" (reachable from worker entry {entry})"
                )
                noun = "name" if how == "rebinding" else "mutable"
                yield self.finding(
                    fn.file,
                    node,
                    f"{how} on module-level {noun} {target} inside "
                    f"pool-worker code {qualname}{via}; worker processes "
                    "see private copies and the serial fallback shares it",
                )
