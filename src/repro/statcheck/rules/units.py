"""UNIT001: physical-unit propagation through controller arithmetic.

Everything in the simulator is a bare float, but the quantities are
dimensioned: periods in ns, frequencies in GHz, voltages, energies,
queue occupancies.  Using a frequency where a period belongs (or
dropping the ``1/f`` conversion between them) runs cleanly and corrupts
every downstream number -- exactly the bug class a golden test cannot
localize.  This rule propagates units from the annotation map in
:mod:`repro.statcheck.units` through each function with the forward
dataflow walker and flags:

* ``+``/``-`` (and augmented forms) over two *different known,
  non-scalar* units -- ``freq_ghz + period_ns``;
* comparisons, ``min``/``max`` and conditional-expression branches that
  mix known non-scalar units;
* assignments (including attribute stores and keyword arguments) where
  the *name* declares one unit and the value carries another --
  ``period_ns = freq_ghz`` is the missing-``1/f`` shape.

Scalars (literals, ``*_cycles`` counts) combine freely with any unit:
epsilon offsets and cycle-count scaling are idiomatic here.  Unknown
units never fire -- the rule fails open on dynamic values.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.statcheck.astutil import FUNCTION_NODES, resolve_call, import_map
from repro.statcheck.dataflow import Env, ForwardWalker
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.units import (
    SCALAR,
    Dim,
    declared_unit,
    div,
    mul,
    power,
    unit_name,
)

#: builtins / math functions that are unit-transparent in the first arg
_PASSTHROUGH = frozenset(
    {"abs", "float", "round", "math.floor", "math.ceil", "math.fabs"}
)
#: variadic selectors: result has the (single) common unit of their args
_SELECTORS = frozenset({"min", "max"})
#: calls that always produce a dimensionless count
_SCALAR_CALLS = frozenset({"len", "int", "bool"})

UnitValue = Optional[Dim]


def _mixable(a: UnitValue, b: UnitValue) -> bool:
    """Whether two units are distinct, known, and both non-scalar."""
    return (
        a is not None and b is not None and a != b and SCALAR not in (a, b)
    )


class UnitWalker(ForwardWalker[UnitValue]):
    """Forward unit inference over one function scope."""

    def __init__(self, imports: Dict[str, str]) -> None:
        self.imports = imports
        self.problems: List[Tuple[ast.AST, str]] = []

    def _report(self, node: ast.AST, message: str) -> None:
        self.problems.append((node, message))

    def merge(self, a: UnitValue, b: UnitValue) -> UnitValue:
        return a if a == b else None

    # -- binding checks -------------------------------------------------

    def assign_hook(
        self,
        name: str,
        value: UnitValue,
        node: ast.AST,
        env: "Env[UnitValue]",
    ) -> None:
        declared = declared_unit(name)
        if _mixable(declared, value):
            assert declared is not None and value is not None
            self._report(
                node,
                f"{unit_name(value)} value assigned to "
                f"{unit_name(declared)}-named variable {name!r} "
                "(missing unit conversion, e.g. 1/f?)",
            )
            env[name] = value  # trust the value over the name downstream
        elif value is None:
            # explicitly unknown: do NOT fall back to the declared unit,
            # the local meaning has been overwritten dynamically
            env[name] = None

    def store_hook(
        self, target: ast.expr, value: UnitValue, env: "Env[UnitValue]"
    ) -> None:
        if isinstance(target, ast.Attribute):
            declared = declared_unit(target.attr)
            if _mixable(declared, value):
                assert declared is not None and value is not None
                self._report(
                    target,
                    f"{unit_name(value)} value stored into "
                    f"{unit_name(declared)}-named attribute "
                    f"{target.attr!r} (missing unit conversion?)",
                )

    def aug_combine(
        self, stmt: ast.AugAssign, left: UnitValue, right: UnitValue
    ) -> UnitValue:
        op = stmt.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if _mixable(left, right):
                assert left is not None and right is not None
                self._report(
                    stmt,
                    f"augmented {type(op).__name__.lower()} mixes "
                    f"{unit_name(left)} and {unit_name(right)}",
                )
                return None
            return left if left not in (None, SCALAR) else right
        if isinstance(op, ast.Mult) and left is not None and right is not None:
            return mul(left, right)
        if isinstance(op, ast.Div) and left is not None and right is not None:
            return div(left, right)
        return None

    # -- expression inference -------------------------------------------

    def infer(self, node: ast.expr, env: "Env[UnitValue]") -> UnitValue:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return SCALAR
            return None
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in env:
                return env[node.id]
            return declared_unit(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value, env)
            return declared_unit(node.attr)
        if isinstance(node, ast.UnaryOp):
            operand = self.infer(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return operand
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env)
        if isinstance(node, ast.Compare):
            self._check_compare(node, env)
            return None
        if isinstance(node, ast.BoolOp):
            for value_node in node.values:
                self.infer(value_node, env)
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test, env)
            then = self.infer(node.body, env)
            other = self.infer(node.orelse, env)
            if _mixable(then, other):
                assert then is not None and other is not None
                self._report(
                    node,
                    "conditional branches carry different units: "
                    f"{unit_name(then)} vs {unit_name(other)}",
                )
                return None
            return then if then == other else None
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.infer(node.value, env)
            self._bind(node.target, value, env)
            return value
        if isinstance(node, ast.Subscript):
            self.infer(node.value, env)
            self.infer(node.slice, env)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value, env)
        # containers, comprehensions, f-strings, lambdas: visit children
        # for their side effects (nested calls/compares), carry no unit
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child, env)
        return None

    def _infer_binop(self, node: ast.BinOp, env: "Env[UnitValue]") -> UnitValue:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if _mixable(left, right):
                assert left is not None and right is not None
                verb = "adds" if isinstance(op, ast.Add) else "subtracts"
                self._report(
                    node,
                    f"{verb} {unit_name(right)} "
                    f"{'to' if isinstance(op, ast.Add) else 'from'} "
                    f"{unit_name(left)}",
                )
                return None
            if left is not None and left != SCALAR:
                return left
            if right is not None and right != SCALAR:
                return right
            return SCALAR if left == SCALAR or right == SCALAR else None
        if isinstance(op, ast.Mult):
            if left is None or right is None:
                return None
            return mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return div(left, right)
        if isinstance(op, ast.Pow):
            exponent = node.right
            if (
                left is not None
                and isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
            ):
                return power(left, exponent.value)
            return None
        if isinstance(op, ast.Mod):
            return left
        return None

    def _check_compare(self, node: ast.Compare, env: "Env[UnitValue]") -> None:
        units = [self.infer(node.left, env)]
        units.extend(self.infer(comp, env) for comp in node.comparators)
        known = [u for u in units if u is not None and u != SCALAR]
        for first, second in zip(known, known[1:]):
            if first != second:
                self._report(
                    node,
                    f"compares {unit_name(first)} against "
                    f"{unit_name(second)}",
                )
                return

    def _infer_call(self, node: ast.Call, env: "Env[UnitValue]") -> UnitValue:
        arg_units = [self.infer(arg, env) for arg in node.args]
        for keyword in node.keywords:
            value = self.infer(keyword.value, env)
            if keyword.arg is None:
                continue
            declared = declared_unit(keyword.arg)
            if _mixable(declared, value):
                assert declared is not None and value is not None
                self._report(
                    keyword.value,
                    f"{unit_name(value)} value passed to "
                    f"{unit_name(declared)}-named argument "
                    f"{keyword.arg!r} (missing unit conversion?)",
                )
        target = resolve_call(node.func, self.imports)
        if target is None:
            if not isinstance(node.func, ast.Name):
                self.infer(node.func, env)
            return None
        if target in _SCALAR_CALLS:
            return SCALAR
        if target in _PASSTHROUGH and arg_units:
            return arg_units[0]
        if target in _SELECTORS:
            known = [u for u in arg_units if u is not None and u != SCALAR]
            for first, second in zip(known, known[1:]):
                if first != second:
                    self._report(
                        node,
                        f"{target}() mixes {unit_name(first)} and "
                        f"{unit_name(second)} operands",
                    )
                    return None
            if known and all(u == known[0] for u in known):
                return known[0]
            return None
        return None


@register
class UnitPropagationRule(Rule):
    """Mixed-unit arithmetic and missing 1/f conversions."""

    id = "UNIT001"
    description = (
        "no arithmetic mixing different physical units (ns, GHz, V, nJ, "
        "queue entries) and no frequency/period assignment without a 1/f "
        "conversion, per the repro.statcheck.units annotation map"
    )
    scope = ("repro.core", "repro.dvfs", "repro.mcd", "repro.simcore")

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for scope_node in self._unit_scopes(file.tree):
            walker = UnitWalker(imports)
            env: Env[UnitValue] = {}
            if isinstance(scope_node, FUNCTION_NODES):
                args = scope_node.args
                params = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
                for param in params:
                    unit = declared_unit(param.arg)
                    if unit is not None:
                        env[param.arg] = unit
                walker.run(scope_node.body, env)
            else:
                walker.run(scope_node.body, env)
            for node, message in walker.problems:
                yield self.finding(file, node, message)

    @staticmethod
    def _unit_scopes(tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, FUNCTION_NODES):
                yield node
