"""SPAN001/SPAN002: span lifecycle and cache-key discipline.

Two contracts from the tracing layer (PR 7):

* **SPAN001, start/end pairing** -- a span obtained from ``*.spans.start(...)``
  (or a ``Span(...)`` constructor) must reach ``end()`` on the paths
  that complete normally, unless it *escapes* the function -- returned,
  stored on ``self``/a container, passed to another callable, or
  managed by a ``with`` block.  A span that is started, held in a
  local, and silently dropped never records its duration and leaks an
  open entry in the recorder.

  The check runs the shared :class:`~repro.statcheck.dataflow.
  ForwardWalker` with span identities as the abstract value, using the
  ``on_return`` hook to watch every exit path.  Merges of distinct
  states (a span started in only one branch -- the coalescer's
  conditional flush-span pattern) mark the span escaped, so the rule
  under-approximates and fails open.

* **SPAN002, cache-key purity** -- functions that build cache keys or canonical
  forms (``cache_key*``, ``canonical*``) must not read span plumbing
  (``.span`` / ``.span_context`` / ``.parent_span``): a pool-bound
  :class:`SpanContext` differs per run, so keying on it silently
  disables result reuse.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.statcheck.astutil import (
    FUNCTION_NODES,
    dotted_name,
    import_map,
    resolve_call,
    walk_scope,
)
from repro.statcheck.dataflow import Env, ForwardWalker
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: method names that start a span on a recorder-ish receiver
_START_ATTRS = frozenset({"start", "start_span"})

#: method names that finish a span
_END_ATTRS = frozenset({"end", "finish"})

#: attributes that carry span plumbing (cache-key purity check)
_SPAN_PLUMBING_ATTRS = frozenset({"span", "span_context", "parent_span"})

_CACHE_KEY_FUNCTION = re.compile(r"(cache_key|canonical)", re.IGNORECASE)


class _SpanState:
    """Identity of one span-start site, with lifecycle flags that are
    shared across all control-flow paths (fail-open unioning)."""

    __slots__ = ("line", "label", "ended", "escaped")

    def __init__(self, line: int, label: str) -> None:
        self.line = line
        self.label = label
        self.ended = False
        self.escaped = False


class _SpanWalker(ForwardWalker[_SpanState]):
    def __init__(self, imports: Dict[str, str], with_exprs: Set[int]) -> None:
        self.imports = imports
        #: ids of Call nodes used as ``with`` context expressions --
        #: their __exit__ ends the span
        self.with_exprs = with_exprs
        self.created: List[_SpanState] = []

    # -- domain ---------------------------------------------------------

    def merge(self, a: _SpanState, b: _SpanState) -> _SpanState:
        if a is not b:
            # a name holding different spans (or a span on only one
            # path): give up tracking rather than invent a finding
            a.escaped = True
            b.escaped = True
        return a

    def infer(
        self, node: ast.expr, env: "Env[_SpanState]"
    ) -> Optional[_SpanState]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Await):
            return self.infer(node.value, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Lambda):
            return None  # separate scope
        if isinstance(node, ast.Attribute):
            # reading span.context / span.attrs is not an escape
            self.infer(node.value, env)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                value = self.infer(child, env)
                if value is not None:
                    # span flows into a container/expression we cannot
                    # track: assume it reaches an owner that ends it
                    value.escaped = True
        return None

    def _call(
        self, node: ast.Call, env: "Env[_SpanState]"
    ) -> Optional[_SpanState]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _END_ATTRS:
            receiver = self.infer(func.value, env)
            if receiver is not None:
                receiver.ended = True
                self._mark_arguments(node, env)
                return None
        if self._is_span_start(node):
            state = _SpanState(
                line=getattr(node, "lineno", 1),
                label=dotted_name(func) or "span",
            )
            if id(node) in self.with_exprs:
                state.ended = True  # with-managed: __exit__ ends it
            self.created.append(state)
            self._mark_arguments(node, env)
            return state
        if isinstance(func, ast.Attribute):
            self.infer(func.value, env)
        self._mark_arguments(node, env)
        return None

    def _mark_arguments(
        self, node: ast.Call, env: "Env[_SpanState]"
    ) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            value = self.infer(arg, env)
            if value is not None:
                value.escaped = True

    def _is_span_start(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _START_ATTRS:
            receiver = dotted_name(func.value)
            if receiver is not None:
                last = receiver.rsplit(".", 1)[-1].lower()
                if "span" in last or "tracer" in last:
                    return True
        resolved = resolve_call(func, self.imports)
        return resolved is not None and (
            resolved == "Span" or resolved.endswith(".Span")
        )

    # -- hooks ----------------------------------------------------------

    def store_hook(
        self,
        target: ast.expr,
        value: Optional[_SpanState],
        env: "Env[_SpanState]",
    ) -> None:
        if value is not None:
            value.escaped = True  # stored on self/container: owner ends it

    def on_return(
        self, stmt: ast.Return, env: "Env[_SpanState]"
    ) -> None:
        if stmt.value is not None:
            value = self.infer(stmt.value, env)
            if value is not None:
                value.escaped = True  # returned: the caller owns it


@register
class SpanPairingRule(Rule):
    """Started spans end (or escape to an owner)."""

    id = "SPAN001"
    description = (
        "a started span must reach end() on completing paths or escape "
        "to an owner (returned, stored, passed on, with-managed): a "
        "dropped open span never records its duration"
    )
    scope = ()

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for fn in ast.walk(file.tree):
            if not isinstance(fn, FUNCTION_NODES):
                continue
            yield from self._check_pairing(file, fn, imports)

    def _check_pairing(
        self,
        file: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: Dict[str, str],
    ) -> Iterator[Finding]:
        with_exprs: Set[int] = set()
        for node in walk_scope(fn):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
        walker = _SpanWalker(imports, with_exprs)
        walker.run(fn.body)
        for state in walker.created:
            if state.ended or state.escaped:
                continue
            site = ast.Pass(lineno=state.line, col_offset=0)
            yield self.finding(
                file,
                site,
                f"span started by {state.label}(...) in {fn.name} never "
                "reaches end() and never escapes to an owner; close it "
                "in a finally block or use it as a context manager",
            )

@register
class SpanCacheKeyPurityRule(Rule):
    """Cache keys stay span-free."""

    id = "SPAN002"
    description = (
        "cache-key/canonical builders must not read span plumbing "
        "(.span/.span_context/.parent_span): span context is per-run, "
        "so keying on it means identical jobs never hit the cache"
    )
    scope = ()

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        for fn in ast.walk(file.tree):
            if not isinstance(fn, FUNCTION_NODES):
                continue
            if _CACHE_KEY_FUNCTION.search(fn.name):
                yield from self._check_cache_key(file, fn)

    def _check_cache_key(
        self,
        file: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for node in walk_scope(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in _SPAN_PLUMBING_ATTRS
            ):
                yield self.finding(
                    file,
                    node,
                    f"{fn.name} reads .{node.attr} while building a "
                    "cache key/canonical form; span context is per-run "
                    "and must stay out of keys or identical jobs will "
                    "never hit the cache",
                )
