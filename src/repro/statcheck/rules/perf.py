"""Performance rule: keep the simulator's hot loops allocation-free.

The simcore fast path exists because the reference simulator allocated
small dicts and lists millions of times per run on its event loop.  That
class of regression is easy to reintroduce -- a debug-friendly ``{...}``
in a per-event branch looks harmless in review -- and expensive to
rediscover by profiling.  PERF001 encodes the invariant statically: inside
the recognized hot functions of the simulation packages, no dict/list/set
is constructed *inside a loop*.

A function is "hot" when it is one of the reference event-loop entry
points (``_domain_cycle`` / ``_front_end_cycle``) or is explicitly marked
with the :func:`repro.simcore.markers.hot_path` decorator.  One-time
setup allocations before the loop are fine; the rule only fires on
allocations lexically inside a ``for``/``while`` body, where they run
once per event or per sample.

A cold branch inside a hot loop (e.g. probe emission that is skipped
unless observability is enabled) may carry a justified line suppression:
``# statcheck: disable=PERF001 -- <why this branch is cold>``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.statcheck.astutil import import_map, resolve_call
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: Packages whose loops are per-event/per-sample hot paths.
PERF_SCOPE: Tuple[str, ...] = ("repro.mcd", "repro.simcore")

#: Reference-core functions that are hot by name (the per-event arms of
#: ``MCDProcessor.run``); everything else opts in via ``@hot_path``.
_HOT_NAMES = frozenset({"_domain_cycle", "_front_end_cycle"})

#: Decorator names that mark a function as a hot path.
_HOT_DECORATORS = frozenset({"hot_path"})

#: Builtin constructors whose call allocates a fresh container.
_ALLOCATING_CALLS = frozenset({"dict", "list", "set"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


def _is_hot(node: ast.AST) -> bool:
    if not isinstance(node, _FUNCTION_NODES):
        return False
    if node.name in _HOT_NAMES:
        return True
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name in _HOT_DECORATORS:
            return True
    return False


@register
class HotLoopAllocationRule(Rule):
    """PERF001: no per-iteration container allocation in hot loops."""

    id = "PERF001"
    description = (
        "no dict/list/set literals, comprehensions, or dict()/list()/set() "
        "calls inside loops of hot-path functions (_domain_cycle, "
        "_front_end_cycle, or @hot_path); hoist the allocation out of the "
        "loop or reuse a preallocated buffer"
    )
    scope = PERF_SCOPE

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not _is_hot(node):
                continue
            yield from self._check_hot_function(file, node, imports)

    def _check_hot_function(
        self, file: SourceFile, fn: ast.AST, imports: "dict[str, str]"
    ) -> Iterator[Finding]:
        # find loops belonging to this function (not to nested functions),
        # then flag every allocation lexically inside a loop body exactly
        # once (nested loops share the outermost walk)
        todo = list(ast.iter_child_nodes(fn))
        while todo:
            node = todo.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue  # nested defs are their own (non-hot) scope
            if isinstance(node, _LOOP_NODES):
                yield from self._check_loop(file, node, imports)
                continue  # _check_loop walked the whole subtree
            todo.extend(ast.iter_child_nodes(node))

    def _check_loop(
        self, file: SourceFile, loop: ast.AST, imports: "dict[str, str]"
    ) -> Iterator[Finding]:
        todo = list(ast.iter_child_nodes(loop))
        while todo:
            node = todo.pop()
            if isinstance(node, _FUNCTION_NODES):
                continue  # a def's body allocating per call is its problem
            todo.extend(ast.iter_child_nodes(node))
            what = None
            if isinstance(node, ast.Dict):
                what = "dict literal"
            elif isinstance(node, ast.List):
                what = "list literal"
            elif isinstance(node, ast.Set):
                what = "set literal"
            elif isinstance(node, ast.DictComp):
                what = "dict comprehension"
            elif isinstance(node, ast.ListComp):
                what = "list comprehension"
            elif isinstance(node, ast.SetComp):
                what = "set comprehension"
            elif isinstance(node, ast.Call):
                resolved = resolve_call(node.func, imports)
                if resolved in _ALLOCATING_CALLS:
                    what = f"{resolved}() call"
            if what is not None:
                yield self.finding(
                    file,
                    node,
                    f"{what} allocates on every iteration of a hot loop; "
                    "hoist it out of the loop or reuse a preallocated "
                    "buffer",
                )
