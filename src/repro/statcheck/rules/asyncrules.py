"""ASYNC001-003: event-loop discipline for the serve layer.

Three rules over the :mod:`repro.statcheck.concurrency` context model:

* **ASYNC001** -- a blocking call (``time.sleep``, synchronous file or
  socket I/O, ``subprocess``, a scalar ``run_experiment``) reachable
  from a coroutine body stalls every in-flight request: the service
  analogue of the paper's reaction-time argument.  Off-loop work
  belongs behind ``loop.run_in_executor`` -- the call graph models that
  hop, so properly dispatched work is not flagged.
* **ASYNC002** -- ``create_task`` / ``ensure_future`` whose handle is
  discarded.  A dropped task is garbage-collectable mid-flight and its
  exceptions vanish; the clean pattern is the ``ServeApp._tasks``
  retention idiom (keep the handle, remove it on completion).
* **ASYNC003** -- methods of loop-confined classes (``# statcheck:
  loop-confined`` / ``@loop_confined``) called from thread or pool
  context.  Confined state has no lock on purpose: every touch must
  come from the loop, and thread-side code must hop back via
  ``call_soon_threadsafe`` / ``run_coroutine_threadsafe`` (edges the
  thread traversal deliberately refuses to follow, so the sanctioned
  hop pattern stays clean).  ``__init__``/``__new__`` are exempt
  (construction happens-before publication); ``# statcheck:
  thread-safe`` opts a single method out.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.statcheck.astutil import dotted_name, import_map, resolve_call, walk_scope
from repro.statcheck.callgraph import TASK_SPAWN_ATTRS
from repro.statcheck.concurrency import (
    BLOCKING_CALLS,
    BLOCKING_METHOD_ATTRS,
    BLOCKING_PROJECT_NAMES,
    context_model,
)
from repro.statcheck.engine import Project, Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: fully-resolved task-spawn functions (module-level forms)
_TASK_SPAWN_FUNCTIONS = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future"}
)


@register
class BlockingCallInCoroutineRule(Rule):
    """No blocking calls reachable from ``async def`` bodies."""

    id = "ASYNC001"
    description = (
        "code reachable from coroutine bodies must not make blocking "
        "calls (sleep, sync file/socket I/O, subprocess, scalar "
        "simulation runs): one blocked step stalls every in-flight "
        "request; dispatch through loop.run_in_executor instead"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = context_model(project)
        for qualname in sorted(model.loop):
            fn = model.table.functions.get(qualname)
            if fn is None:
                continue
            module = model.table.modules.get(fn.module)
            imports = module.imports if module is not None else {}
            root = model.loop[qualname]
            via = "" if root == qualname else f" (reachable from {root})"
            for node in walk_scope(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve_call(node.func, imports)
                reason: Optional[str] = None
                shown = resolved
                if resolved is not None and resolved in BLOCKING_CALLS:
                    reason = BLOCKING_CALLS[resolved]
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in BLOCKING_METHOD_ATTRS
                ):
                    reason = BLOCKING_METHOD_ATTRS[node.func.attr]
                    shown = f".{node.func.attr}()"
                else:
                    func_name = dotted_name(node.func)
                    if func_name is not None:
                        target = model.table.resolve_function(
                            fn.module, func_name
                        )
                        if (
                            target is not None
                            and target.name in BLOCKING_PROJECT_NAMES
                        ):
                            reason = (
                                "runs a full scalar simulation synchronously"
                            )
                            shown = target.qualname
                if reason is None:
                    continue
                yield self.finding(
                    fn.file,
                    node,
                    f"blocking call {shown} ({reason}) in {qualname}, "
                    f"which runs on the event loop{via}; move it behind "
                    "loop.run_in_executor",
                )


@register
class DroppedTaskHandleRule(Rule):
    """Spawned tasks must keep their handles."""

    id = "ASYNC002"
    description = (
        "create_task/ensure_future results must be retained (assigned, "
        "awaited, or registered like ServeApp._tasks): a dropped handle "
        "can be garbage-collected mid-flight and its exception is lost"
    )
    scope = ()

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            resolved = resolve_call(call.func, imports)
            is_spawn = resolved in _TASK_SPAWN_FUNCTIONS or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in TASK_SPAWN_ATTRS
            )
            if not is_spawn:
                continue
            yield self.finding(
                file,
                node,
                "task spawned and immediately dropped; retain the handle "
                "(assign it, await it, or track it in a task set with a "
                "done-callback) so cancellation and exceptions are "
                "observable",
            )


@register
class LoopConfinementRule(Rule):
    """Loop-confined classes stay on the loop."""

    id = "ASYNC003"
    description = (
        "methods of loop-confined classes (# statcheck: loop-confined) "
        "must not be called from thread or pool context; thread-side "
        "code hops back via call_soon_threadsafe / "
        "run_coroutine_threadsafe"
    )
    scope = ()

    #: edge kinds that dispatch the callee *into* off-loop execution
    _CROSSING_KINDS = frozenset({"thread", "executor", "pool"})
    #: edge kinds that stay in the caller's own context
    _SAME_CONTEXT_KINDS = frozenset({"direct", "method"})
    _EXEMPT_METHODS = frozenset({"__init__", "__new__"})

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = context_model(project)
        if not model.loop_confined:
            return
        seen: Set[Tuple[str, str, int]] = set()
        confined_methods: Dict[str, str] = {}
        for cls_qualname in model.loop_confined:
            cls = model.table.classes.get(cls_qualname)
            if cls is None:
                continue
            for method in cls.methods.values():
                confined_methods[method.qualname] = cls.name
        for edge in model.graph.edges:
            cls_name = confined_methods.get(edge.callee)
            if cls_name is None:
                continue
            callee = model.table.functions.get(edge.callee)
            if callee is None or callee.name in self._EXEMPT_METHODS:
                continue
            if edge.callee in model.thread_safe:
                continue
            off_loop_caller = (
                edge.caller in model.thread or edge.caller in model.pool
            )
            crossing = edge.kind in self._CROSSING_KINDS
            same_context = (
                edge.kind in self._SAME_CONTEXT_KINDS and off_loop_caller
            )
            if not crossing and not same_context:
                continue
            caller = model.table.functions.get(edge.caller)
            if caller is None:
                continue
            key = (edge.caller, edge.callee, edge.line)
            if key in seen:
                continue
            seen.add(key)
            if crossing:
                how = f"dispatched to a {edge.kind} entry point"
            else:
                root = model.thread.get(edge.caller) or model.pool.get(
                    edge.caller
                )
                how = (
                    f"called from {edge.caller}, which runs off-loop "
                    f"(reachable from {root})"
                )
            site = ast.Pass(lineno=edge.line, col_offset=0)
            yield self.finding(
                caller.file,
                site,
                f"loop-confined {edge.callee} ({cls_name} is marked "
                f"loop-confined) {how}; hand work back to the loop with "
                "call_soon_threadsafe or run_coroutine_threadsafe",
            )
