"""POOL001: everything submitted to a process pool must be picklable.

``ProcessPoolExecutor`` pickles the callable by qualified name; lambdas
and functions defined inside another function cannot cross the process
boundary and fail at submit time -- but only on the pooled path, so a
sweep tested serially (``--jobs 1``) ships green and dies in CI's pool
smoke.  Catch it at PR time instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.statcheck.astutil import (
    FUNCTION_NODES,
    SUBMIT_METHODS,
    is_pool_receiver,
    iter_scopes,
    walk_scope,
)
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register


@register
class PoolPayloadRule(Rule):
    """No lambdas or local functions handed to pool submit methods."""

    id = "POOL001"
    description = (
        "no lambdas, closures, or local functions submitted to a process "
        "pool; only module-level callables pickle across workers"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        for scope in iter_scopes(file.tree):
            local_funcs: Set[str] = {
                node.name
                for node in walk_scope(scope)
                if isinstance(node, FUNCTION_NODES)
            }
            if isinstance(scope, ast.Module):
                # module-level defs ARE picklable; only flag lambdas there
                local_funcs = set()
            for node in walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in SUBMIT_METHODS:
                    continue
                if not is_pool_receiver(func):
                    continue
                if not node.args:
                    continue
                payload = node.args[0]
                if isinstance(payload, ast.Lambda):
                    yield self.finding(
                        file,
                        payload,
                        f"lambda submitted to {func.attr}() cannot be "
                        "pickled into a worker process; use a module-level "
                        "function",
                    )
                elif (
                    isinstance(payload, ast.Name)
                    and payload.id in local_funcs
                ):
                    yield self.finding(
                        file,
                        payload,
                        f"local function {payload.id!r} submitted to "
                        f"{func.attr}() cannot be pickled into a worker "
                        "process; move it to module level",
                    )
