"""SOA001/SOA002/SOA003/VEC001: array semantics for the batch simcore.

PR 9 moved the DVFS control plane into NumPy code that the scalar rules
cannot see: UNIT001 stops at scalar attributes, SIM001 at ``self.X``
mentions.  These rules interpret vector code with the abstract domain in
:mod:`repro.statcheck.arrays` and hold the batch driver to the same
contracts the scalar cores live under:

* **SOA001** -- shape/broadcast mismatch: elementwise ops over provably
  incompatible symbolic shapes (named axes that differ, literal sizes
  that differ), subscript stores that collapse axes or cannot fit the
  target region, reshapes that change the element count, out-of-range
  constant indices.
* **SOA002** -- dtype drift: mixed float32/float64 arithmetic where the
  scalar cores accumulate in Python floats (== float64), and stores that
  silently downcast (float into int containers, wide floats into narrow
  float arrays).  ``astype`` is the explicit escape hatch.
* **SOA003** -- UNIT001's unit algebra lifted elementwise: mixed-unit
  ``+``/``-``/comparisons inside vector expressions, ``np.where`` over
  branches with different units, and unit-declared names/attributes
  bound to arrays carrying a different unit.
* **VEC001** -- vector-scalar drift, the SIM001 analogue for the batch
  core.  A driver class marked ``# statcheck: vector-state=<LaneClass>``
  promises that its per-lane arrays shadow scalar state of the lane
  class: every array ``__init__`` seeds *from lane attributes* and then
  mutates per round must have at least one of those source attributes
  written back by the lane's ``_absorb*`` path (or be listed in the
  driver's ``_DRIVER_INTERNAL`` set for state that is deliberately not
  written back, e.g. FSM counters the reference also discards); and
  conversely every attribute an ``_absorb*`` method stores must seed
  some driver array.  Adding state to one side without the other is a
  finding, not a nightly golden-suite surprise.

The SOA rules are scoped to ``repro.simcore`` -- the one package whose
arrays carry the paper's physical quantities; the analysis fails open
everywhere a value is dynamic.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statcheck.arrays import ArrayWalker, ArrayValue, Problem
from repro.statcheck.astutil import FUNCTION_NODES, dotted_name, import_map
from repro.statcheck.dataflow import Env
from repro.statcheck.engine import Project, Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.semantic import ClassInfo, SymbolTable
from repro.statcheck.units import declared_unit

# ---------------------------------------------------------------------------
# shared per-file array analysis (SOA001/SOA002/SOA003)
# ---------------------------------------------------------------------------

#: tree identity -> (tree, sorted problems); the strong tree reference
#: keeps ids unique among live entries.  Three rules share one walk.
_CACHE: Dict[int, Tuple[ast.Module, List[Problem]]] = {}
_CACHE_LIMIT = 256


def _seed_env(
    func: ast.AST, module_env: "Env[ArrayValue]", imports: Dict[str, str]
) -> "Env[ArrayValue]":
    """Starting environment of one function: globals + annotated params."""
    env: Env[ArrayValue] = dict(module_env)
    if not isinstance(func, FUNCTION_NODES):
        return env
    args = func.args
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for param in params:
        if param.arg == "self":
            continue
        unit = declared_unit(param.arg)
        is_arr = _is_ndarray_annotation(param.annotation, imports)
        if unit is not None or is_arr:
            env[param.arg] = ArrayValue(is_array=is_arr, unit=unit)
        else:
            env.pop(param.arg, None)  # parameter shadows any global
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            env.pop(extra.arg, None)
    return env


def _is_ndarray_annotation(
    annotation: Optional[ast.expr], imports: Dict[str, str]
) -> bool:
    if annotation is None:
        return False
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1] == "ndarray"
    dotted = dotted_name(node)
    if dotted is None:
        return False
    head, _, rest = dotted.partition(".")
    resolved = imports.get(head, head)
    full = f"{resolved}.{rest}" if rest else resolved
    return full in ("numpy.ndarray", "ndarray")


def _analyze_class(
    cls: ast.ClassDef,
    imports: Dict[str, str],
    module_env: "Env[ArrayValue]",
) -> List[Problem]:
    """Two-round fixpoint over the class's ``self.X`` map, then report."""
    methods = [
        stmt for stmt in cls.body if isinstance(stmt, FUNCTION_NODES)
    ]
    ordered = sorted(methods, key=lambda m: m.name != "__init__")
    attrs: Dict[str, Optional[ArrayValue]] = {}
    for _ in range(2):
        for method in ordered:
            walker = ArrayWalker(imports, self_attrs=attrs, collect=attrs)
            walker.run(method.body, _seed_env(method, module_env, imports))
    problems: List[Problem] = []
    for method in ordered:
        walker = ArrayWalker(imports, self_attrs=dict(attrs))
        walker.run(method.body, _seed_env(method, module_env, imports))
        problems.extend(walker.problems)
    return problems


def _analyze_tree(tree: ast.Module) -> List[Problem]:
    imports = import_map(tree)
    problems: List[Problem] = []
    module_walker = ArrayWalker(imports)
    module_env = module_walker.run(tree.body, {})
    problems.extend(module_walker.problems)
    method_ids: Set[int] = set()
    classes: List[ast.ClassDef] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes.append(node)
            for stmt in node.body:
                if isinstance(stmt, FUNCTION_NODES):
                    method_ids.add(id(stmt))
    for cls in classes:
        problems.extend(_analyze_class(cls, imports, module_env))
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES) and id(node) not in method_ids:
            walker = ArrayWalker(imports)
            walker.run(node.body, _seed_env(node, module_env, imports))
            problems.extend(walker.problems)
    problems.sort(
        key=lambda problem: (
            getattr(problem[0], "lineno", 0),
            getattr(problem[0], "col_offset", 0),
            problem[1],
            problem[2],
        )
    )
    return problems


def _file_problems(file: SourceFile) -> List[Problem]:
    assert file.tree is not None
    key = id(file.tree)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is file.tree:
        return hit[1]
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    problems = _analyze_tree(file.tree)
    _CACHE[key] = (file.tree, problems)
    return problems


class _ArraySemanticsRule(Rule):
    """Base for the three per-file SOA rules sharing one walk."""

    scope = ("repro.simcore",)

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        for node, rule_key, message in _file_problems(file):
            if rule_key == self.id:
                yield self.finding(file, node, message)


@register
class ShapeContractRule(_ArraySemanticsRule):
    """Provably incompatible shapes in vector expressions and stores."""

    id = "SOA001"
    description = (
        "vector expressions must broadcast: no elementwise ops over "
        "provably incompatible symbolic shapes, no axis-collapsing "
        "subscript stores, no element-count-changing reshapes, no "
        "out-of-range constant indices"
    )


@register
class DtypeDriftRule(_ArraySemanticsRule):
    """Implicit downcasts and mixed-precision accumulation."""

    id = "SOA002"
    description = (
        "no mixed float32/float64 array arithmetic and no silently "
        "downcasting stores in vector code -- the scalar cores "
        "accumulate in Python floats (float64), so narrower dtypes "
        "break the bit-identity contract; cast explicitly with astype"
    )


@register
class ArrayUnitRule(_ArraySemanticsRule):
    """UNIT001's unit algebra lifted elementwise through array ops."""

    id = "SOA003"
    description = (
        "the physical-unit algebra applies per element inside vector "
        "code: no mixed-unit elementwise +/-/comparisons, no np.where "
        "over branches with different units, no unit-declared name "
        "bound to an array carrying a different unit"
    )


# ---------------------------------------------------------------------------
# VEC001: vector-scalar drift between a marked driver and its lane class
# ---------------------------------------------------------------------------

_MARKER = re.compile(
    r"#\s*statcheck:\s*vector-state\s*=\s*([A-Za-z_][A-Za-z0-9_.]*)"
)
_INTERNAL_NAME = "_DRIVER_INTERNAL"


def _marked_classes(
    file: SourceFile,
) -> Iterator[Tuple[ast.ClassDef, str]]:
    """Classes carrying a vector-state marker on or above their def line."""
    assert file.tree is not None
    lines = file.source.splitlines()
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(lines):
                match = _MARKER.search(lines[lineno - 1])
                if match is not None:
                    yield node, match.group(1)
                    break


def _self_attr_of(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``self.X`` / ``self.X[...]`` store target -> (attr, node)."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr, node
    return None


def _value_provenance(value: ast.expr, imports: Dict[str, str]) -> Set[str]:
    """Attribute names read through non-``self``, non-import roots.

    For ``np.array([[fn(lane.regulators[d]) ...]])`` style seeds this is
    the set of lane-object attributes the array is built from (both
    intermediate and terminal names of each access chain); ``np.*`` and
    ``self.*`` chains contribute nothing.
    """
    names: Set[str] = set()
    for node in ast.walk(value):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
        ):
            continue
        root: ast.expr = node
        while isinstance(root, (ast.Attribute, ast.Subscript, ast.Call)):
            if isinstance(root, ast.Attribute):
                root = root.value
            elif isinstance(root, ast.Subscript):
                root = root.value
            else:
                root = root.func
        if (
            isinstance(root, ast.Name)
            and root.id != "self"
            and root.id not in imports
        ):
            names.add(node.attr)
    return names


def _assign_pairs(
    node: ast.stmt,
) -> Iterator[Tuple[List[ast.expr], Optional[ast.expr], bool]]:
    """``(targets, value, is_augmented)`` of one binding statement."""
    if isinstance(node, ast.Assign):
        yield list(node.targets), node.value, False
    elif isinstance(node, ast.AugAssign):
        yield [node.target], node.value, True
    elif isinstance(node, ast.AnnAssign):
        yield [node.target], node.value, False


def _driver_init_stores(
    cls: ast.ClassDef, imports: Dict[str, str]
) -> Dict[str, Tuple[ast.expr, Set[str]]]:
    """``__init__`` self-stores -> (first store site, union provenance)."""
    stores: Dict[str, Tuple[ast.expr, Set[str]]] = {}
    init = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, FUNCTION_NODES) and stmt.name == "__init__"
        ),
        None,
    )
    if init is None:
        return stores
    for node in ast.walk(init):
        for targets, value, _aug in _assign_pairs(node):
            if value is None:
                continue
            prov = _value_provenance(value, imports)
            for target in targets:
                found = _self_attr_of(target)
                if found is None:
                    continue
                attr, site = found
                if attr in stores:
                    stores[attr] = (stores[attr][0], stores[attr][1] | prov)
                else:
                    stores[attr] = (site, prov)
    return stores


def _self_attr_load(value: Optional[ast.expr]) -> Optional[str]:
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return value.attr
    return None


def _collect_aliases(
    target: ast.expr,
    value: Optional[ast.expr],
    aliases: Dict[str, Set[str]],
) -> None:
    """One-level ``name = self.attr`` aliasing, incl. paired tuples."""
    if isinstance(target, ast.Name):
        attr = _self_attr_load(value)
        if attr is not None:
            aliases.setdefault(target.id, set()).add(attr)
    elif (
        isinstance(target, (ast.Tuple, ast.List))
        and isinstance(value, (ast.Tuple, ast.List))
        and len(target.elts) == len(value.elts)
    ):
        for element, element_value in zip(target.elts, value.elts):
            _collect_aliases(element, element_value, aliases)


def _driver_mutations(cls: ast.ClassDef) -> Dict[str, ast.expr]:
    """Attrs mutated outside ``__init__``: direct self-stores plus
    in-place stores through one-level local aliases (``state, counter =
    self.state_level, self.counter_level`` then ``state[mask] = 0``)."""
    mutated: Dict[str, ast.expr] = {}
    for stmt in cls.body:
        if not isinstance(stmt, FUNCTION_NODES) or stmt.name == "__init__":
            continue
        aliases: Dict[str, Set[str]] = {}
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    _collect_aliases(target, node.value, aliases)
        for node in ast.walk(stmt):
            for targets, _value, aug in _assign_pairs(node):
                for target in targets:
                    found = _self_attr_of(target)
                    if found is not None:
                        mutated.setdefault(found[0], found[1])
                        continue
                    base = target
                    subscripted = False
                    if isinstance(base, ast.Subscript):
                        base = base.value
                        subscripted = True
                    # a plain `name = ...` rebinds the local; only
                    # subscript/augmented stores mutate the aliased array
                    if isinstance(base, ast.Name) and (subscripted or aug):
                        for attr in aliases.get(base.id, ()):
                            mutated.setdefault(attr, target)
    return mutated


def _driver_internal(cls: ast.ClassDef) -> Set[str]:
    """String elements of the class-level ``_DRIVER_INTERNAL`` set."""
    for stmt in cls.body:
        for targets, value, _aug in _assign_pairs(stmt):
            if value is None:
                continue
            if not any(
                isinstance(target, ast.Name)
                and target.id == _INTERNAL_NAME
                for target in targets
            ):
                continue
            node: ast.expr = value
            if isinstance(node, ast.Call) and node.args:
                node = node.args[0]
            if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
                return {
                    elt.value
                    for elt in node.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                }
    return set()


def _absorbed_stores(lane: ClassInfo) -> Dict[str, ast.expr]:
    """Terminal attrs any ``_absorb*`` method stores (any receiver)."""
    stores: Dict[str, ast.expr] = {}
    for name in sorted(lane.methods):
        if not name.startswith("_absorb"):
            continue
        for node in ast.walk(lane.methods[name].node):
            for targets, _value, _aug in _assign_pairs(node):
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Attribute):
                        stores.setdefault(base.attr, base)
    return stores


@register
class VectorScalarContractRule(Rule):
    """Marked driver arrays and lane ``_absorb*`` state must pair up."""

    id = "VEC001"
    description = (
        "every per-lane array a '# statcheck: vector-state=<LaneClass>' "
        "driver seeds from lane attributes and mutates per round must "
        "have a source attribute the lane's _absorb* path writes back "
        "(or be listed in _DRIVER_INTERNAL), and every attribute "
        "_absorb* stores must seed some driver array -- one-sided state "
        "is silent vector-scalar drift"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        table = SymbolTable.build(project)
        #: lane qualname -> (lane, union of driver init provenances)
        by_lane: Dict[str, Tuple[ClassInfo, Set[str]]] = {}
        for file in project.files:
            if file.tree is None:
                continue
            imports = import_map(file.tree)
            for cls_node, lane_name in _marked_classes(file):
                lane = table.resolve_class(file.module, lane_name)
                if lane is None:
                    yield self.finding(
                        file,
                        cls_node,
                        f"vector-state marker names {lane_name!r}, which "
                        "resolves to no project class; fix or remove the "
                        "stale marker",
                    )
                    continue
                yield from self._check_driver(
                    file, cls_node, imports, lane
                )
                union = set()
                for _site, prov in _driver_init_stores(
                    cls_node, imports
                ).values():
                    union |= prov
                if lane.qualname in by_lane:
                    by_lane[lane.qualname] = (
                        lane,
                        by_lane[lane.qualname][1] | union,
                    )
                else:
                    by_lane[lane.qualname] = (lane, union)
        for qualname in sorted(by_lane):
            lane, union = by_lane[qualname]
            for attr in sorted(_absorbed_stores(lane)):
                if attr in union:
                    continue
                site = _absorbed_stores(lane)[attr]
                yield self.finding(
                    lane.file,
                    site,
                    f"{lane.name}._absorb* writes attribute {attr!r} but "
                    "no vector-state driver seeds an array from it; the "
                    "scalar state has no vector counterpart",
                )

    def _check_driver(
        self,
        file: SourceFile,
        cls_node: ast.ClassDef,
        imports: Dict[str, str],
        lane: ClassInfo,
    ) -> Iterator[Finding]:
        stores = _driver_init_stores(cls_node, imports)
        mutated = _driver_mutations(cls_node)
        internal = _driver_internal(cls_node)
        absorbed = set(_absorbed_stores(lane))
        for attr in sorted(mutated):
            entry = stores.get(attr)
            if entry is None:
                continue  # not seeded in __init__: fail open
            site, prov = entry
            if not prov or attr in internal:
                continue
            if prov & absorbed:
                continue
            yield self.finding(
                file,
                site,
                f"driver array self.{attr} (seeded from "
                f"{', '.join(sorted(prov))}) is mutated per round but "
                f"none of its source attributes are written back by "
                f"{lane.name}._absorb*; the vector state has no scalar "
                "counterpart",
            )
        for name in sorted(internal):
            if name not in stores:
                yield self.finding(
                    file,
                    cls_node,
                    f"{_INTERNAL_NAME} lists {name!r} but __init__ never "
                    f"binds self.{name}; remove the stale entry",
                )
                continue
            site, prov = stores[name]
            overlap = prov & absorbed
            if overlap:
                yield self.finding(
                    file,
                    site,
                    f"{_INTERNAL_NAME} exempts self.{name} but its "
                    f"source attribute(s) {', '.join(sorted(overlap))} "
                    f"are written back by {lane.name}._absorb*; remove "
                    "the exemption or the write-back",
                )
