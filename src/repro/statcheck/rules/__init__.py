"""Built-in statcheck rules; importing this package registers them all."""

from repro.statcheck.rules import (  # noqa: F401  (import-for-registration)
    arraycontract,
    asyncrules,
    cache_key,
    control,
    determinism,
    hygiene,
    lock,
    metrics_labels,
    obs_events,
    perf,
    pool,
    race,
    simcontract,
    span_discipline,
    units,
)
