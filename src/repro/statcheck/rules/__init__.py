"""Built-in statcheck rules; importing this package registers them all."""

from repro.statcheck.rules import (  # noqa: F401  (import-for-registration)
    cache_key,
    control,
    determinism,
    hygiene,
    obs_events,
    perf,
    pool,
    race,
    simcontract,
    units,
)
