"""SIM001: reference/fast simulator state-contract drift.

The fast core (:class:`repro.simcore.fast.FastMCDProcessor`) re-derives
the reference hot loop of :class:`repro.mcd.processor.MCDProcessor` as a
megaloop over local variables, writing the state back at the end.  The
bit-identity CI gate catches *value* drift, but only for states the
golden workloads exercise; the structural hazard is a new piece of
mutable state added to the reference loop that the fast loop silently
never carries.  This rule makes that drift a static finding:

every ``self.<attr>`` the reference class *assigns outside* ``__init__``
(plain stores, augmented stores, and subscript stores like
``self._freq_sum[d] += per``) must be *touched* -- read or written,
subscripted or not -- somewhere in the fast class.  A reference-side
attribute the fast class never mentions means the megaloop neither
consumes nor maintains that state, and the two cores have structurally
diverged.

Pairings are found by class name (``MCDProcessor`` vs a subclass whose
name starts with ``Fast`` or ``Batch``), so the rule also covers
fixture-shaped pairs in tests.  Base resolution is transitive:
``BatchMCDProcessor`` derives from ``MCDProcessor`` *via*
``FastMCDProcessor``, and each derived core is held to the full
reference contract independently.  Findings land on the derived class
definition, where the missing write-back belongs; a deliberate
divergence is suppressed there with
``# statcheck: disable=SIM001 -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statcheck.engine import Project, Rule
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.semantic import ClassInfo, SymbolTable

#: reference class name -> required derived-core name prefixes
_REF_CLASS = "MCDProcessor"
_CORE_PREFIXES = ("Fast", "Batch")


def _self_attr_of(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``self.X`` or ``self.X[...]`` store target -> (attr name, node)."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr, node
    return None


def _assigned_self_attrs(cls: ClassInfo) -> Dict[str, ast.expr]:
    """Attrs assigned in any method except __init__, with one store site."""
    assigned: Dict[str, ast.expr] = {}
    for name, method in sorted(cls.methods.items()):
        if name == "__init__":
            continue
        for node in ast.walk(method.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                found = _self_attr_of(target)
                if found is not None:
                    assigned.setdefault(found[0], found[1])
    return assigned


def _touched_self_attrs(cls: ClassInfo) -> Set[str]:
    """Every ``self.X`` mention (any context) anywhere in the class."""
    touched: Set[str] = set()
    for node in ast.walk(cls.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            touched.add(node.attr)
    return touched


def _derives_from(
    table: SymbolTable, cls: ClassInfo, ref: ClassInfo, seen: Set[str]
) -> bool:
    """Does ``cls`` inherit from ``ref``, directly or transitively?

    Transitivity matters: the batch core subclasses the *fast* core, not
    the reference directly, yet must still carry the reference contract.
    """
    if cls.qualname in seen:
        return False  # inheritance cycles cannot happen, but stay total
    seen.add(cls.qualname)
    for base in cls.bases:
        base_cls = table.classes.get(base) or table.resolve_class(
            cls.module, base
        )
        if base_cls is None:
            continue
        if base_cls.qualname == ref.qualname:
            return True
        if _derives_from(table, base_cls, ref, seen):
            return True
    return False


def _core_subclasses(
    table: SymbolTable, ref: ClassInfo
) -> Iterator[ClassInfo]:
    for qualname in sorted(table.classes):
        cls = table.classes[qualname]
        if cls.qualname == ref.qualname:
            continue
        if not cls.name.startswith(_CORE_PREFIXES):
            continue
        if not cls.name.endswith(ref.name):
            continue
        if _derives_from(table, cls, ref, set()):
            yield cls


@register
class SimContractRule(Rule):
    """Fast core must carry every reference hot-path state attribute."""

    id = "SIM001"
    description = (
        "every state attribute the reference MCDProcessor hot path assigns "
        "must be read or written by each Fast*/Batch* subclass (or carry a "
        "justified suppression) -- silent state drift between the cores "
        "breaks the bit-identity contract structurally"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        table = SymbolTable.build(project)
        for ref in table.classes_named(_REF_CLASS):
            assigned = _assigned_self_attrs(ref)
            if not assigned:
                continue
            for core in _core_subclasses(table, ref):
                touched = _touched_self_attrs(core)
                for attr in sorted(assigned):
                    if attr in touched:
                        continue
                    store = assigned[attr]
                    yield self.finding(
                        core.file,
                        core.node,
                        f"reference hot path assigns self.{attr} "
                        f"({ref.module}:{store.lineno}) but "
                        f"{core.name} never reads or writes it; the derived "
                        "core has drifted from the reference state contract",
                    )
