"""SIM001: reference/fast simulator state-contract drift.

The fast core (:class:`repro.simcore.fast.FastMCDProcessor`) re-derives
the reference hot loop of :class:`repro.mcd.processor.MCDProcessor` as a
megaloop over local variables, writing the state back at the end.  The
bit-identity CI gate catches *value* drift, but only for states the
golden workloads exercise; the structural hazard is a new piece of
mutable state added to the reference loop that the fast loop silently
never carries.  This rule makes that drift a static finding:

every ``self.<attr>`` the reference class *assigns outside* ``__init__``
(plain stores, augmented stores, and subscript stores like
``self._freq_sum[d] += per``) must be *touched* -- read or written,
subscripted or not -- somewhere in the fast class.  A reference-side
attribute the fast class never mentions means the megaloop neither
consumes nor maintains that state, and the two cores have structurally
diverged.

Pairings are found by class name (``MCDProcessor`` vs a subclass whose
name starts with ``Fast``), so the rule also covers fixture-shaped
pairs in tests.  Findings land on the fast class definition, where the
missing write-back belongs; a deliberate divergence is suppressed there
with ``# statcheck: disable=SIM001 -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statcheck.engine import Project, Rule
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.semantic import ClassInfo, SymbolTable

#: reference class name -> required fast-subclass name prefix
_REF_CLASS = "MCDProcessor"
_FAST_PREFIX = "Fast"


def _self_attr_of(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``self.X`` or ``self.X[...]`` store target -> (attr name, node)."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr, node
    return None


def _assigned_self_attrs(cls: ClassInfo) -> Dict[str, ast.expr]:
    """Attrs assigned in any method except __init__, with one store site."""
    assigned: Dict[str, ast.expr] = {}
    for name, method in sorted(cls.methods.items()):
        if name == "__init__":
            continue
        for node in ast.walk(method.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                found = _self_attr_of(target)
                if found is not None:
                    assigned.setdefault(found[0], found[1])
    return assigned


def _touched_self_attrs(cls: ClassInfo) -> Set[str]:
    """Every ``self.X`` mention (any context) anywhere in the class."""
    touched: Set[str] = set()
    for node in ast.walk(cls.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            touched.add(node.attr)
    return touched


def _fast_subclasses(
    table: SymbolTable, ref: ClassInfo
) -> Iterator[ClassInfo]:
    for qualname in sorted(table.classes):
        cls = table.classes[qualname]
        if cls.qualname == ref.qualname:
            continue
        if not cls.name.startswith(_FAST_PREFIX):
            continue
        if not cls.name.endswith(ref.name):
            continue
        for base in cls.bases:
            base_cls = table.classes.get(base) or table.resolve_class(
                cls.module, base
            )
            if base_cls is not None and base_cls.qualname == ref.qualname:
                yield cls
                break


@register
class SimContractRule(Rule):
    """Fast core must carry every reference hot-path state attribute."""

    id = "SIM001"
    description = (
        "every state attribute the reference MCDProcessor hot path assigns "
        "must be read or written by its Fast* subclass (or carry a "
        "justified suppression) -- silent state drift between the two "
        "cores breaks the bit-identity contract structurally"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        table = SymbolTable.build(project)
        for ref in table.classes_named(_REF_CLASS):
            assigned = _assigned_self_attrs(ref)
            if not assigned:
                continue
            for fast in _fast_subclasses(table, ref):
                touched = _touched_self_attrs(fast)
                for attr in sorted(assigned):
                    if attr in touched:
                        continue
                    store = assigned[attr]
                    yield self.finding(
                        fast.file,
                        fast.node,
                        f"reference hot path assigns self.{attr} "
                        f"({ref.module}:{store.lineno}) but "
                        f"{fast.name} never reads or writes it; the fast "
                        "core has drifted from the reference state contract",
                    )
