"""Determinism rules: the invariants behind "same spec, same bits".

Every simulation result is cached content-addressed and compared across
process-pool and serial execution, so any nondeterminism -- a shared
global RNG, a wall-clock read feeding simulated state, hashing in
set-iteration order -- silently corrupts sweeps rather than failing
loudly.  These rules push all randomness through injected, seeded
``random.Random`` / ``numpy`` Generator instances and keep host time out
of simulated code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import (
    import_map,
    iter_scopes,
    resolve_call,
    walk_scope,
)
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: Packages whose code runs inside (or decides for) the simulated machine.
SIMULATION_SCOPE = ("repro.mcd", "repro.core", "repro.dvfs", "repro.simcore")

#: Module-level functions of ``random`` that draw from (or reseed) the
#: interpreter-global RNG.  ``random.Random(seed)`` constructs an owned,
#: seeded instance and is the sanctioned alternative.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` attributes that do NOT touch the legacy global state.
_NUMPY_RANDOM_OK = frozenset(
    {"Generator", "RandomState", "SeedSequence", "default_rng"}
)

#: Host-clock reads.  ``perf_counter`` is monotonic rather than wall
#: clock, but a read is a read: any control or simulation decision based
#: on it varies run to run.  Code that only *profiles* with it carries a
#: justified file-level suppression.
_WALL_CLOCK = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.time",
        "time.time_ns",
        "datetime.date.today",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
    }
)

#: Hash entry points whose inputs must be deterministically ordered.
_HASH_FUNCS = frozenset(
    {
        "hash",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.md5",
        "hashlib.new",
        "hashlib.sha1",
        "hashlib.sha224",
        "hashlib.sha256",
        "hashlib.sha384",
        "hashlib.sha512",
    }
)


@register
class UnseededRandomRule(Rule):
    """DET001: module-level RNG calls make runs irreproducible."""

    id = "DET001"
    description = (
        "no global random/np.random calls in simulation or controller "
        "code; inject a seeded random.Random / numpy Generator instead"
    )
    scope = SIMULATION_SCOPE

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved is None:
                continue
            if (
                resolved.startswith("random.")
                and resolved.split(".", 1)[1] in _GLOBAL_RANDOM_FUNCS
            ):
                yield self.finding(
                    file,
                    node,
                    f"call to global RNG {resolved}() is unseeded shared "
                    "state; draw from an injected seeded random.Random",
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved.rsplit(".", 1)[1] not in _NUMPY_RANDOM_OK
            ):
                yield self.finding(
                    file,
                    node,
                    f"call to legacy global {resolved}() is unseeded shared "
                    "state; use numpy.random.default_rng(seed)",
                )


@register
class WallClockRule(Rule):
    """DET002: host-clock reads have no place in simulated time."""

    id = "DET002"
    description = (
        "no wall-clock reads (time.time, perf_counter, datetime.now, ...) "
        "in simulation or controller code; simulated time is the only clock"
    )
    scope = SIMULATION_SCOPE

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node.func, imports)
            if resolved in _WALL_CLOCK:
                yield self.finding(
                    file,
                    node,
                    f"host clock read {resolved}() in simulation/controller "
                    "code; derive timing from simulated time instead",
                )


@register
class UnorderedHashRule(Rule):
    """DET003: set iteration order must never feed a hash or cache key."""

    id = "DET003"
    description = (
        "no iteration over unordered sets in functions that compute hashes "
        "or cache keys; wrap the iterable in sorted(...)"
    )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for scope in iter_scopes(file.tree):
            if not self._scope_hashes(scope, imports):
                continue
            for node in walk_scope(scope):
                iterables = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(node, ast.comprehension):
                    iterables.append(node.iter)
                for iterable in iterables:
                    if self._is_unordered(iterable, imports):
                        yield self.finding(
                            file,
                            iterable,
                            "iteration over an unordered set inside "
                            "hash/cache-key derivation; iteration order is "
                            "not deterministic -- wrap in sorted(...)",
                        )

    @staticmethod
    def _scope_hashes(scope: ast.AST, imports: "dict[str, str]") -> bool:
        for node in walk_scope(scope):
            if isinstance(node, ast.Call):
                if resolve_call(node.func, imports) in _HASH_FUNCS:
                    return True
        return False

    @staticmethod
    def _is_unordered(node: ast.AST, imports: "dict[str, str]") -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return resolve_call(node.func, imports) in ("set", "frozenset")
        return False
