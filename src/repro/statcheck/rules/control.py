"""Control-law rules.

The integral-gain literature (and this paper's own FSM delay counters)
warn against branching on exact float equality in a control loop: the
compared quantities are accumulated in floating point, so ``==`` turns a
robust threshold into a razor edge that fires or starves depending on
rounding.  Controller and FSM decision code must compare against a
tolerance instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.statcheck.astutil import import_map, resolve_call
from repro.statcheck.engine import Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

#: Calls whose result is obviously a float.
_FLOAT_CALLS = frozenset(
    {
        "abs",
        "float",
        "math.exp",
        "math.fabs",
        "math.log",
        "math.sqrt",
        "max",
        "min",
        "round",
        "sum",
    }
)


def _is_floatish(node: ast.AST, imports: "dict[str, str]") -> bool:
    """Conservatively: is this expression certainly floating point?

    Only expressions that are *syntactically* float -- a float literal, a
    ``float(...)`` conversion, a true division, or arithmetic involving
    one of those -- count, so integer state-machine comparisons
    (``trigger != slope_trigger``) never false-positive.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, imports)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, imports) or _is_floatish(
            node.right, imports
        )
    if isinstance(node, ast.Call):
        resolved = resolve_call(node.func, imports)
        if resolved == "float":
            return True
        if resolved in _FLOAT_CALLS:
            return any(_is_floatish(arg, imports) for arg in node.args)
    return False


@register
class FloatEqualityRule(Rule):
    """CTL001: no exact float equality in controller/FSM decisions."""

    id = "CTL001"
    description = (
        "no float == / != comparisons in controller or FSM decision code; "
        "compare against a tolerance (math.isclose or abs(a-b) < eps)"
    )
    scope = ("repro.core", "repro.dvfs")

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        assert file.tree is not None
        imports = import_map(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left, imports) or _is_floatish(right, imports):
                    yield self.finding(
                        file,
                        node,
                        "exact float equality in control decision code is "
                        "sensitive to rounding; compare against a tolerance "
                        "(math.isclose or abs(a-b) < eps)",
                    )
                    break
