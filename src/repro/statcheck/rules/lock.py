"""LOCK001: cross-context attribute writes need a lock.

The metrics instruments and span recorder are touched from the event
loop (request handlers), executor threads (the coalescer's batch
runner, the sweep engine) and -- through the trace pipeline -- pool
workers.  An instance attribute written from two of those contexts
without a lock is a data race: counter increments are lost, gauge
values tear.

The rule joins three facts per ``(class, attribute)`` pair:

* **writes** -- ``self.x = ...`` / ``self.x += ...`` / ``self.x[k] =
  ...`` / ``self.x.append(...)`` inside the class's methods
  (``__init__``/``__new__`` are exempt: construction happens-before
  publication);
* **contexts** -- which execution contexts each writing method can run
  in, from the :mod:`repro.statcheck.concurrency` reachability maps;
* **guards** -- whether the write is lexically inside ``with
  self._lock:`` (any context manager whose name mentions ``lock`` or
  ``mutex``).

A pair written from >=2 contexts fires on every unguarded write site.
Single-context classes stay lock-free (that is the point of loop
confinement); intentionally unguarded single-owner objects take a
justified ``# statcheck: disable=LOCK001`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.statcheck.astutil import FUNCTION_NODES, dotted_name
from repro.statcheck.concurrency import context_model
from repro.statcheck.engine import Project, Rule
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register
from repro.statcheck.semantic import FunctionInfo

#: methods that mutate their receiver in place (mirrors RACE001's set)
_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _is_lock_guard(expr: ast.expr) -> bool:
    """``with self._lock:`` / ``with LOCK:`` -- name mentions a lock."""
    target = expr.func if isinstance(expr, ast.Call) else expr
    dotted = dotted_name(target)
    if dotted is None:
        return False
    last = dotted.rsplit(".", 1)[-1].lower()
    return "lock" in last or "mutex" in last


def _self_attr_of(node: ast.expr) -> str:
    """The ``X`` of a ``self.X`` expression, or ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


#: one write site: (attribute, AST node, lock-guarded?, description)
_Write = Tuple[str, ast.AST, bool, str]


def _collect_writes(method: FunctionInfo) -> List[_Write]:
    writes: List[_Write] = []

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, FUNCTION_NODES) and node is not method.node:
            return  # nested scope, analyzed on its own
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _is_lock_guard(item.context_expr) for item in node.items
            )
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = _self_attr_of(target)
                if attr:
                    writes.append((attr, node, guarded, "assignment to"))
                elif isinstance(target, ast.Subscript):
                    attr = _self_attr_of(target.value)
                    if attr:
                        writes.append(
                            (attr, node, guarded, "item assignment on")
                        )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS:
                attr = _self_attr_of(node.func.value)
                if attr:
                    writes.append(
                        (attr, node, guarded, f".{node.func.attr}() on")
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for stmt in method.node.body:
        visit(stmt, False)
    return writes


@register
class CrossContextWriteRule(Rule):
    """Attributes shared across execution contexts take a lock."""

    id = "LOCK001"
    description = (
        "an instance attribute written from two or more execution "
        "contexts (event loop, threads, pool workers) must hold a lock "
        "around the write; single-owner objects suppress with a "
        "justified pragma instead"
    )
    scope = ()  # cross-module

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = context_model(project)
        for cls_qualname in sorted(model.table.classes):
            cls = model.table.classes[cls_qualname]
            by_attr: Dict[str, List[Tuple[FunctionInfo, _Write]]] = {}
            contexts_by_attr: Dict[str, Set[str]] = {}
            for method in cls.methods.values():
                if method.name in _EXEMPT_METHODS:
                    continue
                contexts = model.contexts_of(method.qualname)
                for write in _collect_writes(method):
                    attr = write[0]
                    by_attr.setdefault(attr, []).append((method, write))
                    contexts_by_attr.setdefault(attr, set()).update(contexts)
            for attr in sorted(by_attr):
                contexts = tuple(sorted(contexts_by_attr[attr]))
                if len(contexts) < 2:
                    continue
                for method, (name, node, guarded, how) in sorted(
                    by_attr[attr],
                    key=lambda item: getattr(item[1][1], "lineno", 0),
                ):
                    if guarded:
                        continue
                    if not model.contexts_of(method.qualname):
                        continue  # write site itself is unreachable
                    yield self.finding(
                        method.file,
                        node,
                        f"unguarded {how} self.{name} in "
                        f"{method.qualname}: {cls.name}.{name} is written "
                        f"from contexts {'+'.join(contexts)}; hold a lock "
                        "around the write or confine the object to one "
                        "context",
                    )
