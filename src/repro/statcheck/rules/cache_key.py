"""CACHE001: the sweep cache key must cover every job field.

The content-addressed result cache hashes
``SweepJob.canonical_dict()``; a job field that does not flow into that
dict means two *different* simulations share a cache entry -- the warm
sweep silently returns results for a spec that was never run.  This is a
cross-module invariant no generic linter can state, and the exact
failure mode PR 2 hit when ``obs`` joined the job spec (CACHE_VERSION
1 -> 2).

The rule finds the dataclass named ``SweepJob`` (wherever it lives),
collects its field names, and requires each to be read as ``self.<field>``
somewhere inside ``canonical_dict``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.statcheck.engine import Project, Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

JOB_CLASS = "SweepJob"
KEY_METHOD = "canonical_dict"


def _job_classes(
    project: Project,
) -> "Iterator[Tuple[SourceFile, ast.ClassDef]]":
    for file in project.files:
        if file.tree is None:
            continue
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name == JOB_CLASS:
                yield file, node


def _dataclass_fields(cls: ast.ClassDef) -> "List[Tuple[str, ast.AnnAssign]]":
    fields = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((name, stmt))
    return fields


def _key_method(cls: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == KEY_METHOD:
            return stmt
    return None


def _self_reads(func: ast.FunctionDef) -> Set[str]:
    reads = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return reads


@register
class CacheKeyCompletenessRule(Rule):
    """Every ``SweepJob`` field must reach the cache-key derivation."""

    id = "CACHE001"
    description = (
        "every SweepJob dataclass field must be read inside "
        "canonical_dict(), or cached results are served for specs that "
        "were never simulated"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for file, cls in _job_classes(project):
            method = _key_method(cls)
            if method is None:
                yield self.finding(
                    file,
                    cls,
                    f"{JOB_CLASS} defines no {KEY_METHOD}() cache-key "
                    "derivation; its results cannot be safely cached",
                )
                continue
            reads = _self_reads(method)
            for name, node in _dataclass_fields(cls):
                if name not in reads:
                    yield self.finding(
                        file,
                        node,
                        f"{JOB_CLASS} field {name!r} never flows into "
                        f"{KEY_METHOD}(); two jobs differing only in "
                        f"{name!r} would share one cache entry",
                    )
