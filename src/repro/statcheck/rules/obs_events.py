"""OBS001: the probe event stream and its schema registry must agree.

``repro.obs.schema.EVENT_SCHEMAS`` is the contract for every JSONL /
Chrome-trace artifact; an event kind emitted without a schema entry
fails trace validation at runtime (in whatever run first emits it), and
a schema without an emitter is dead weight that silently rots.  This
rule checks both directions at PR time:

* every literal ``probe.event("kind", ...)`` kind in the scanned tree
  must be a key of ``EVENT_SCHEMAS``;
* every ``EVENT_SCHEMAS`` key must be emitted by at least one call site
  (orphan schemas are flagged at their definition line);
* event kinds must be string literals -- a computed kind cannot be
  checked statically and would dodge the contract.

The rule activates only when a module defining ``EVENT_SCHEMAS`` is in
the scanned file set, so scanning a subtree without the registry does
not false-positive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.statcheck.astutil import dotted_name
from repro.statcheck.engine import Project, Rule, SourceFile
from repro.statcheck.findings import Finding
from repro.statcheck.registry import register

SCHEMA_REGISTRY = "EVENT_SCHEMAS"

#: Receiver names that identify the probe bus.
_PROBE_NAMES = frozenset({"probe", "_probe", "bus", "_bus"})


def _probe_event_calls(
    file: SourceFile,
) -> "Iterator[Tuple[ast.Call, Optional[str]]]":
    """Yield ``(call, kind)`` for probe event emissions; kind None when
    the first argument is not a string literal."""
    assert file.tree is not None
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "event":
            continue
        receiver = dotted_name(func.value)
        if receiver is None:
            continue
        if receiver.rsplit(".", 1)[-1] not in _PROBE_NAMES:
            continue
        if not node.args:
            yield node, None
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield node, first.value
        else:
            yield node, None


def _schema_registries(
    project: Project,
) -> "Iterator[Tuple[SourceFile, Dict[str, ast.AST]]]":
    """Find module-level ``EVENT_SCHEMAS = {...}`` dict literals."""
    for file in project.files:
        if file.tree is None:
            continue
        for stmt in file.tree.body:
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                if any(
                    isinstance(target, ast.Name)
                    and target.id == SCHEMA_REGISTRY
                    for target in stmt.targets
                ):
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == SCHEMA_REGISTRY
                ):
                    value = stmt.value
            if not isinstance(value, ast.Dict):
                continue
            keys: Dict[str, ast.AST] = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys[key.value] = key
            yield file, keys


@register
class ProbeSchemaRule(Rule):
    """Emitted probe events and registered schemas must match 1:1."""

    id = "OBS001"
    description = (
        "every probe.event(...) kind must have a schema in EVENT_SCHEMAS "
        "and every schema must have an emitter (no orphans)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        registries = list(_schema_registries(project))
        if not registries:
            return
        registered: Dict[str, Tuple[SourceFile, ast.AST]] = {}
        for file, keys in registries:
            for kind, node in keys.items():
                registered.setdefault(kind, (file, node))

        emitted: "Dict[str, List[Tuple[SourceFile, ast.Call]]]" = {}
        for file in project.files:
            if file.tree is None:
                continue
            for call, kind in _probe_event_calls(file):
                if kind is None:
                    yield self.finding(
                        file,
                        call,
                        "probe event kind is not a string literal; only "
                        "literal kinds can be checked against EVENT_SCHEMAS",
                    )
                else:
                    emitted.setdefault(kind, []).append((file, call))

        for kind, sites in sorted(emitted.items()):
            if kind in registered:
                continue
            for file, call in sites:
                yield self.finding(
                    file,
                    call,
                    f"probe event kind {kind!r} has no schema registered "
                    f"in {SCHEMA_REGISTRY}; trace validation will reject it",
                )
        for kind, (file, node) in sorted(registered.items()):
            if kind not in emitted:
                yield self.finding(
                    file,
                    node,
                    f"orphan event schema {kind!r}: no probe.event call in "
                    "the scanned tree emits it",
                )
