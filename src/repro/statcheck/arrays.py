"""Abstract domain for NumPy values: symbolic shape, dtype, unit.

The batch simcore (:mod:`repro.simcore.soa`) re-expresses the DVFS
control plane as ``[L, 3]`` array arithmetic.  A silent broadcast, a
float32 downcast in an energy accumulator, or a unit mix-up inside a
vector expression type-checks, runs, and only (maybe) surfaces as a
golden-suite failure.  This module gives statcheck an abstract
interpretation of NumPy code so those become findings:

* :class:`Axis` -- one array dimension, identified by a *symbolic name*
  (the collection it was built from: ``lanes``, ``_DOM_BY_COL``) and/or
  a literal size.  Two axes are provably incompatible when both sizes
  are known and differ, or both names are known and differ (a named
  axis can never be size-1-broadcast away without the size being known).
* :class:`ArrayValue` -- the abstract value: optional symbolic shape
  (``None`` = unknown rank, ``()`` = scalar), optional dtype drawn from
  a small promotion lattice, optional physical unit (the UNIT001
  :data:`repro.statcheck.units.Dim` vector, carried *per element*), and
  an optional length-axis for sequences/ints (``len(lanes)`` carries the
  ``lanes`` axis so ``np.zeros((length, 4))`` gets a named first dim).
* :class:`ArrayWalker` -- a :class:`ForwardWalker` instance with
  transfer functions for numpy constructors (``array``/``zeros``/
  ``full``/``arange``/``stack``...), elementwise ufuncs, ``where``,
  reductions (``sum``/``argmin``/``any``... with ``axis=``/``keepdims``),
  ``reshape``/``transpose``/``astype``, subscripts (integer indexing,
  literal slices, ``None`` axis insertion), list displays and
  comprehensions (the ``np.array([[f(lane) for d in _DOM_BY_COL] for
  lane in lanes])`` idiom yields shape ``(lanes, _DOM_BY_COL)`` with the
  element expression's unit), and broadcasting.

Everything fails open: an unknown value poisons precisely the facts it
touches and never invents a finding.  The walker reports *problems*
tagged with the rule key they belong to (``SOA001`` shape, ``SOA002``
dtype, ``SOA003`` unit); :mod:`repro.statcheck.rules.arraycontract`
turns them into findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.statcheck.astutil import dotted_name
from repro.statcheck.dataflow import Env, ForwardWalker
from repro.statcheck.units import (
    SCALAR,
    Dim,
    declared_unit,
    div,
    mul,
    power,
    unit_name,
)

#: dtype promotion lattice, narrowest to widest; ``promote`` is max.
DTYPE_ORDER: Tuple[str, ...] = (
    "bool",
    "int8",
    "int16",
    "int32",
    "int64",
    "float16",
    "float32",
    "float64",
)

_DTYPE_RANK: Dict[str, int] = {name: i for i, name in enumerate(DTYPE_ORDER)}

#: float dtypes narrower than the scalar cores' Python floats
NARROW_FLOATS = frozenset({"float16", "float32"})

#: numpy attribute / builtin names that denote a dtype
_DTYPE_TOKENS: Dict[str, str] = {
    **{name: name for name in DTYPE_ORDER},
    "float": "float64",
    "int": "int64",
    "intp": "int64",
    "double": "float64",
    "single": "float32",
    "half": "float16",
    "bool_": "bool",
}


def promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Joint dtype of an elementwise op, ``None`` when either is unknown."""
    if a is None or b is None:
        return None
    if a not in _DTYPE_RANK or b not in _DTYPE_RANK:
        return None
    return a if _DTYPE_RANK[a] >= _DTYPE_RANK[b] else b


def is_float(dtype: Optional[str]) -> bool:
    return dtype is not None and dtype.startswith("float")


@dataclass(frozen=True)
class Axis:
    """One symbolic array dimension: a name, a literal size, or both."""

    name: Optional[str] = None
    size: Optional[int] = None

    def __str__(self) -> str:
        if self.name is not None and self.size is not None:
            return f"{self.name}={self.size}"
        if self.name is not None:
            return self.name
        if self.size is not None:
            return str(self.size)
        return "?"


#: a known-rank shape; () is a scalar
Shape = Tuple[Axis, ...]

UNKNOWN_AXIS = Axis(None, None)


def shape_str(shape: Shape) -> str:
    return "[" + ", ".join(str(axis) for axis in shape) + "]"


def combine_axes(x: Axis, y: Axis) -> Tuple[Axis, bool]:
    """Broadcast two aligned axes -> (result, provably-compatible).

    ``False`` means numpy would raise at runtime: both sizes known and
    unequal (neither 1), or both names known and different with no
    size-1 escape.  Anything under-determined stays compatible (fail
    open) with the most specific axis we can justify.
    """
    if x.size == 1:
        return y, True
    if y.size == 1:
        return x, True
    if x.size is not None and y.size is not None:
        if x.size != y.size:
            return UNKNOWN_AXIS, False
        return Axis(x.name if x.name is not None else y.name, x.size), True
    if x.name is not None and y.name is not None:
        if x.name != y.name:
            return UNKNOWN_AXIS, False
        return Axis(x.name, x.size if x.size is not None else y.size), True
    # one side wholly unknown, or name-vs-size: cannot prove anything
    return UNKNOWN_AXIS, True


def broadcast_shapes(
    a: Shape, b: Shape
) -> Tuple[Optional[Shape], Optional[str]]:
    """NumPy broadcasting over symbolic shapes.

    Returns ``(shape, None)`` on success or ``(None, reason)`` when the
    shapes are provably incompatible.
    """
    rank = max(len(a), len(b))
    padded_a = (Axis(None, 1),) * (rank - len(a)) + a
    padded_b = (Axis(None, 1),) * (rank - len(b)) + b
    result: List[Axis] = []
    for x, y in zip(padded_a, padded_b):
        merged, ok = combine_axes(x, y)
        if not ok:
            return None, (
                f"cannot broadcast {shape_str(a)} with {shape_str(b)}: "
                f"axis {x} is incompatible with axis {y}"
            )
        result.append(merged)
    return tuple(result), None


@dataclass(frozen=True)
class ArrayValue:
    """Abstract value of one expression in the array domain."""

    #: known to be an ndarray (engages numpy broadcasting semantics)
    is_array: bool = False
    #: symbolic shape; ``None`` = unknown rank, ``()`` = scalar
    shape: Optional[Shape] = None
    #: element dtype from :data:`DTYPE_ORDER`, ``None`` = unknown
    dtype: Optional[str] = None
    #: physical unit per element (:data:`~repro.statcheck.units.Dim`)
    unit: Optional[Dim] = None
    #: the length-axis this value measures (ints from ``len``) or leads
    #: with (sequences of unknown element rank)
    axis: Optional[Axis] = None
    #: set when the value *is* a dtype (``np.float64``, ``_F64``)
    dtype_token: Optional[str] = None

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    @property
    def is_known_array(self) -> bool:
        """Known to be an ndarray of known, non-zero rank."""
        return self.is_array and self.shape is not None and len(self.shape) > 0


AV = Optional[ArrayValue]

SCALAR_INT = ArrayValue(shape=(), dtype="int64", unit=SCALAR)
SCALAR_FLOAT = ArrayValue(shape=(), dtype="float64", unit=SCALAR)
SCALAR_BOOL = ArrayValue(shape=(), dtype="bool", unit=SCALAR)

#: (node, rule key, message)
Problem = Tuple[ast.AST, str, str]

_NUMPY_MODULES = ("numpy", "np")

#: elementwise binary ufuncs and the unit discipline they impose
_UFUNC_ADDITIVE = frozenset(
    {"add", "subtract", "minimum", "maximum", "fmin", "fmax", "hypot",
     "greater", "greater_equal", "less", "less_equal", "equal", "not_equal"}
)
_UFUNC_MULTIPLY = frozenset({"multiply"})
_UFUNC_DIVIDE = frozenset({"divide", "true_divide", "floor_divide"})
_UFUNC_LOGICAL = frozenset(
    {"logical_and", "logical_or", "logical_xor", "bitwise_and",
     "bitwise_or", "bitwise_xor"}
)
_UFUNC_COMPARISONS = frozenset(
    {"greater", "greater_equal", "less", "less_equal", "equal", "not_equal",
     "logical_and", "logical_or", "logical_xor"}
)
#: unary ufuncs transparent in shape, dtype and unit
_UFUNC_PASSTHROUGH = frozenset(
    {"abs", "absolute", "fabs", "negative", "positive", "copy",
     "ascontiguousarray", "asarray_chkfinite"}
)
#: unary ufuncs transparent in shape only (unit/dtype not preserved)
_UFUNC_SHAPE_ONLY = frozenset(
    {"sqrt", "exp", "log", "log2", "log10", "sign", "square",
     "floor", "ceil", "rint", "trunc", "isnan", "isfinite", "isinf",
     "logical_not", "invert"}
)
_REDUCTIONS = frozenset(
    {"sum", "prod", "mean", "min", "max", "amin", "amax", "argmin",
     "argmax", "any", "all", "count_nonzero", "nanmin", "nanmax",
     "nansum", "std", "var"}
)
_INT_REDUCTIONS = frozenset({"argmin", "argmax", "count_nonzero"})
_BOOL_REDUCTIONS = frozenset({"any", "all"})
#: array methods sharing the reduction/transform transfer functions
_ARRAY_METHODS = _REDUCTIONS | {
    "astype", "copy", "reshape", "transpose", "fill", "tolist", "item",
}

#: list methods that mutate the receiver in place
_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "clear", "pop", "remove"}
)


def _mixable(a: Optional[Dim], b: Optional[Dim]) -> bool:
    return a is not None and b is not None and a != b and SCALAR not in (a, b)


def _const_int(node: ast.expr) -> Optional[int]:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
        and not isinstance(node.operand.value, bool)
    ):
        return -node.operand.value
    return None


class ArrayWalker(ForwardWalker[ArrayValue]):
    """Forward array-semantics inference over one function scope."""

    aug_reads_stores = True

    def __init__(
        self,
        imports: Mapping[str, str],
        self_attrs: Optional[Mapping[str, AV]] = None,
        collect: Optional[Dict[str, AV]] = None,
    ) -> None:
        #: local import alias -> fully qualified module/symbol
        self.imports = dict(imports)
        #: frozen ``self.X`` -> abstract value map (method analysis)
        self.self_attrs: Mapping[str, AV] = self_attrs or {}
        #: when set, ``self.X = value`` stores are merged into this map
        #: instead of being trusted from :attr:`self_attrs` (pre-pass)
        self.collect = collect
        self.problems: List[Problem] = []

    # -- reporting ------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.problems.append((node, rule, message))

    # -- lattice --------------------------------------------------------

    def merge(self, a: ArrayValue, b: ArrayValue) -> ArrayValue:
        if a == b:
            return a
        return ArrayValue(
            is_array=a.is_array and b.is_array,
            shape=a.shape if a.shape == b.shape else None,
            dtype=a.dtype if a.dtype == b.dtype else None,
            unit=a.unit if a.unit == b.unit else None,
            axis=a.axis if a.axis == b.axis else None,
            dtype_token=(
                a.dtype_token if a.dtype_token == b.dtype_token else None
            ),
        )

    @staticmethod
    def _merge_optional(a: AV, b: AV) -> AV:
        if a is None or b is None:
            return None
        walker = ArrayWalker({})
        return walker.merge(a, b)

    # -- binding hooks --------------------------------------------------

    def assign_hook(
        self,
        name: str,
        value: AV,
        node: ast.AST,
        env: "Env[ArrayValue]",
    ) -> None:
        declared = declared_unit(name)
        if (
            value is not None
            and value.is_known_array
            and _mixable(declared, value.unit)
        ):
            assert declared is not None and value.unit is not None
            self._report(
                node,
                "SOA003",
                f"array of {unit_name(value.unit)} assigned to "
                f"{unit_name(declared)}-named variable {name!r} "
                "(missing elementwise unit conversion?)",
            )
        # a declared name refines a unit-free value: `freq_ghz =
        # np.zeros(n)` carries FREQUENCY from here on (np.zeros yields
        # SCALAR, which a declaration overrides; a *conflicting* unit is
        # the finding above, not a refinement)
        if (
            declared is not None
            and value is not None
            and value.unit in (None, SCALAR)
        ):
            env[name] = replace(value, unit=declared)

    def store_hook(
        self, target: ast.expr, value: AV, env: "Env[ArrayValue]"
    ) -> None:
        if isinstance(target, ast.Attribute):
            self._attr_store(target, value, env)
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, value, env)

    def _attr_store(
        self, target: ast.Attribute, value: AV, env: "Env[ArrayValue]"
    ) -> None:
        declared = declared_unit(target.attr)
        if (
            value is not None
            and value.is_known_array
            and _mixable(declared, value.unit)
        ):
            assert declared is not None and value.unit is not None
            self._report(
                target,
                "SOA003",
                f"array of {unit_name(value.unit)} stored into "
                f"{unit_name(declared)}-named attribute {target.attr!r} "
                "(missing elementwise unit conversion?)",
            )
        if (
            self.collect is not None
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if target.attr in self.collect:
                self.collect[target.attr] = self._merge_optional(
                    self.collect[target.attr], value
                )
            else:
                self.collect[target.attr] = value

    def _subscript_store(
        self, target: ast.Subscript, value: AV, env: "Env[ArrayValue]"
    ) -> None:
        container = self.infer(target.value, env)
        if container is None or container.shape is None:
            return
        region = self._index_shape(
            container.shape, target.slice, env, target, container.is_array
        )
        if value is None:
            return
        if region is not None and value.shape is not None:
            self._check_store_shape(target, value.shape, region)
        # dtype discipline: in-place stores cannot widen the container
        if container.is_array and is_float(container.dtype):
            scalar_value = value.shape == () and not value.is_array
            if (
                is_float(value.dtype)
                and not scalar_value
                and _DTYPE_RANK.get(value.dtype or "", 0)
                > _DTYPE_RANK.get(container.dtype or "", 0)
            ):
                self._report(
                    target,
                    "SOA002",
                    f"storing {value.dtype} values into a "
                    f"{container.dtype} array silently downcasts them",
                )
        if (
            container.is_array
            and container.dtype is not None
            and not is_float(container.dtype)
            and is_float(value.dtype)
            and not (value.shape == () and not value.is_array)
        ):
            self._report(
                target,
                "SOA002",
                f"storing {value.dtype} values into a {container.dtype} "
                "array silently truncates them",
            )

    def _check_store_shape(
        self, target: ast.expr, value_shape: Shape, region: Shape
    ) -> None:
        """``value`` must broadcast *into* ``region`` (numpy store rule)."""
        if len(value_shape) > len(region):
            self._report(
                target,
                "SOA001",
                f"storing shape {shape_str(value_shape)} into a region of "
                f"shape {shape_str(region)} collapses "
                f"{len(value_shape) - len(region)} axis/axes",
            )
            return
        pad = (Axis(None, 1),) * (len(region) - len(value_shape))
        for x, y in zip(pad + value_shape, region):
            # store semantics: value axes must be 1 or match the region
            if x.size == 1:
                continue
            _, ok = combine_axes(x, y)
            if not ok or (y.size == 1 and x.size not in (None, 1)):
                self._report(
                    target,
                    "SOA001",
                    f"cannot store shape {shape_str(value_shape)} into a "
                    f"region of shape {shape_str(region)}: axis {x} does "
                    f"not fit axis {y}",
                )
                return

    def aug_combine(
        self,
        stmt: ast.AugAssign,
        left: AV,
        right: AV,
    ) -> AV:
        return self._binop_value(stmt.op, left, right, stmt)

    # -- expression inference -------------------------------------------

    def infer(self, node: ast.expr, env: "Env[ArrayValue]") -> AV:
        if isinstance(node, ast.Constant):
            return self._infer_constant(node)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            token = _DTYPE_TOKENS.get(node.id)
            if token is not None and node.id in ("bool", "float", "int"):
                return ArrayValue(dtype_token=token)
            declared = declared_unit(node.id)
            if declared is not None:
                return ArrayValue(unit=declared)
            return None
        if isinstance(node, ast.Attribute):
            return self._infer_attribute(node, env)
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left, env)
            right = self.infer(node.right, env)
            return self._binop_value(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            operand = self.infer(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub, ast.Invert)):
                if (
                    operand is not None
                    and operand.axis is not None
                    and isinstance(node.op, ast.USub)
                ):
                    return replace(operand, axis=None)
                return operand
            return SCALAR_BOOL  # `not x`
        if isinstance(node, ast.Compare):
            return self._infer_compare(node, env)
        if isinstance(node, ast.BoolOp):
            values = [self.infer(v, env) for v in node.values]
            known = [v for v in values if v is not None]
            if len(known) == len(values):
                result = known[0]
                for other in known[1:]:
                    result = self.merge(result, other)
                return result
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test, env)
            then = self.infer(node.body, env)
            other = self.infer(node.orelse, env)
            return self._merge_optional(then, other)
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.Subscript):
            return self._infer_subscript(node, env)
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._infer_display(node, env)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._infer_comprehension(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.infer(node.value, env)
            self._bind(node.target, value, env)
            return value
        if isinstance(node, ast.Starred):
            return self.infer(node.value, env)
        # dicts, sets, f-strings, lambdas, await...: visit children for
        # side effects (nested calls/compares), carry no array value
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child, env)
        return None

    def _infer_constant(self, node: ast.Constant) -> AV:
        value = node.value
        if isinstance(value, bool):
            return SCALAR_BOOL
        if isinstance(value, int):
            if value >= 0:
                return replace(SCALAR_INT, axis=Axis(None, value))
            return SCALAR_INT
        if isinstance(value, float):
            return SCALAR_FLOAT
        return None

    def _infer_attribute(
        self, node: ast.Attribute, env: "Env[ArrayValue]"
    ) -> AV:
        dotted = dotted_name(node)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            resolved = self.imports.get(head, head)
            if resolved in _NUMPY_MODULES or resolved == "numpy":
                token = _DTYPE_TOKENS.get(rest)
                if token is not None:
                    return ArrayValue(dtype_token=token)
        receiver = self.infer(node.value, env)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.self_attrs
        ):
            known = self.self_attrs[node.attr]
            declared = declared_unit(node.attr)
            if known is None:
                if declared is not None:
                    return ArrayValue(unit=declared)
                return None
            if known.unit in (None, SCALAR) and declared is not None:
                return replace(known, unit=declared)
            return known
        if node.attr == "T" and receiver is not None and receiver.is_array:
            if receiver.shape is not None:
                return replace(receiver, shape=receiver.shape[::-1])
            return receiver
        declared = declared_unit(node.attr)
        if declared is not None:
            return ArrayValue(unit=declared)
        return None

    # -- operators ------------------------------------------------------

    def _binop_value(
        self,
        op: ast.operator,
        left: AV,
        right: AV,
        node: ast.AST,
    ) -> AV:
        # list repetition: [0] * length carries length's axis
        if isinstance(op, ast.Mult):
            repeated = self._list_repetition(left, right)
            if repeated is not None:
                return repeated
        if isinstance(op, ast.Add):
            concat = self._list_concat(left, right)
            if concat is not None:
                return concat
        if left is None and right is None:
            return None
        numpy_semantics = bool(
            (left is not None and left.is_array)
            or (right is not None and right.is_array)
        )
        shape = self._broadcast_operands(left, right, node, numpy_semantics)
        dtype = self._op_dtype(op, left, right, node, numpy_semantics)
        unit = self._op_unit(op, left, right, node, numpy_semantics)
        if shape is None and dtype is None and unit is None:
            return None
        return ArrayValue(
            is_array=numpy_semantics, shape=shape, dtype=dtype, unit=unit
        )

    @staticmethod
    def _list_repetition(left: AV, right: AV) -> AV:
        for seq, count in ((left, right), (right, left)):
            if (
                seq is not None
                and not seq.is_array
                and seq.shape is not None
                and len(seq.shape) >= 1
                and seq.shape[0].size == 1
                and count is not None
                and count.axis is not None
            ):
                return ArrayValue(
                    shape=(count.axis,) + seq.shape[1:],
                    dtype=seq.dtype,
                    unit=seq.unit,
                    axis=count.axis,
                )
        return None

    @staticmethod
    def _list_concat(left: AV, right: AV) -> AV:
        if (
            left is not None
            and right is not None
            and not left.is_array
            and not right.is_array
            and left.rank == 1
            and right.rank == 1
        ):
            assert left.shape is not None and right.shape is not None
            a, b = left.shape[0].size, right.shape[0].size
            size = a + b if a is not None and b is not None else None
            return ArrayValue(
                shape=(Axis(None, size),),
                dtype=promote(left.dtype, right.dtype),
                unit=left.unit if left.unit == right.unit else None,
            )
        return None

    def _broadcast_operands(
        self, left: AV, right: AV, node: ast.AST, numpy_semantics: bool
    ) -> Optional[Shape]:
        if (
            left is None
            or right is None
            or left.shape is None
            or right.shape is None
        ):
            return None
        if not numpy_semantics:
            return None
        shape, error = broadcast_shapes(left.shape, right.shape)
        if error is not None:
            self._report(node, "SOA001", error)
            return None
        return shape

    def _op_dtype(
        self,
        op: ast.operator,
        left: AV,
        right: AV,
        node: ast.AST,
        numpy_semantics: bool,
    ) -> Optional[str]:
        if not numpy_semantics:
            return None
        if isinstance(
            op, (ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            lt = left.dtype if left is not None else None
            rt = right.dtype if right is not None else None
            return promote(lt, rt)
        if not isinstance(
            op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
                 ast.Mod, ast.Pow)
        ):
            return None
        lt = left.dtype if left is not None else None
        rt = right.dtype if right is not None else None
        self._check_mixed_precision(left, right, node)
        # python float scalar + narrow-float array keeps the array dtype
        for array_side, scalar_side in ((left, right), (right, left)):
            if (
                array_side is not None
                and array_side.is_known_array
                and array_side.dtype in NARROW_FLOATS
                and scalar_side is not None
                and scalar_side.shape == ()
                and not scalar_side.is_array
            ):
                return array_side.dtype
        if isinstance(op, ast.Div):
            joined = promote(lt, rt)
            if joined is not None and not is_float(joined):
                return "float64"
            return joined
        return promote(lt, rt)

    def _check_mixed_precision(
        self, left: AV, right: AV, node: ast.AST
    ) -> None:
        """SOA002: float32/float64 mixing where both sides are arrays."""
        if (
            left is not None
            and right is not None
            and left.is_known_array
            and right.is_known_array
            and is_float(left.dtype)
            and is_float(right.dtype)
            and left.dtype != right.dtype
        ):
            narrow = (
                left.dtype if left.dtype in NARROW_FLOATS else right.dtype
            )
            wide = left.dtype if narrow == right.dtype else right.dtype
            self._report(
                node,
                "SOA002",
                f"mixed-precision arithmetic: {narrow} array combined "
                f"with {wide} array (the scalar cores accumulate in "
                "python floats == float64)",
            )

    def _op_unit(
        self,
        op: ast.operator,
        left: AV,
        right: AV,
        node: ast.AST,
        numpy_semantics: bool,
    ) -> Optional[Dim]:
        lu = left.unit if left is not None else None
        ru = right.unit if right is not None else None
        if isinstance(op, (ast.Add, ast.Sub)):
            if numpy_semantics and _mixable(lu, ru):
                assert lu is not None and ru is not None
                verb = "adds" if isinstance(op, ast.Add) else "subtracts"
                self._report(
                    node,
                    "SOA003",
                    f"elementwise {verb.rstrip('s')} mixes "
                    f"{unit_name(lu)} and {unit_name(ru)} arrays",
                )
                return None
            if lu is not None and lu != SCALAR:
                return lu
            if ru is not None and ru != SCALAR:
                return ru
            return SCALAR if SCALAR in (lu, ru) else None
        if isinstance(op, ast.Mult):
            if lu is None or ru is None:
                return None
            return mul(lu, ru)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if lu is None or ru is None:
                return None
            return div(lu, ru)
        if isinstance(op, ast.Pow):
            exponent = getattr(node, "right", None)
            if (
                lu is not None
                and isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
            ):
                return power(lu, exponent.value)
            return None
        if isinstance(op, ast.Mod):
            return lu
        if isinstance(op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            return None
        return None

    def _infer_compare(
        self, node: ast.Compare, env: "Env[ArrayValue]"
    ) -> AV:
        operands = [self.infer(node.left, env)]
        operands.extend(self.infer(comp, env) for comp in node.comparators)
        arrays = [v for v in operands if v is not None and v.is_array]
        shape: Optional[Shape] = None
        if arrays:
            # pairwise broadcast + unit discipline across the chain
            current: AV = operands[0]
            for nxt in operands[1:]:
                lu = current.unit if current is not None else None
                ru = nxt.unit if nxt is not None else None
                if _mixable(lu, ru):
                    assert lu is not None and ru is not None
                    self._report(
                        node,
                        "SOA003",
                        f"elementwise comparison mixes {unit_name(lu)} "
                        f"and {unit_name(ru)} arrays",
                    )
                shape = self._broadcast_operands(current, nxt, node, True)
                current = (
                    ArrayValue(is_array=True, shape=shape)
                    if shape is not None
                    else None
                )
            return ArrayValue(
                is_array=True, shape=shape, dtype="bool", unit=SCALAR
            )
        return SCALAR_BOOL if all(v is not None for v in operands) else None

    # -- subscripts -----------------------------------------------------

    def _infer_subscript(
        self, node: ast.Subscript, env: "Env[ArrayValue]"
    ) -> AV:
        container = self.infer(node.value, env)
        if container is None or container.shape is None:
            self.infer(node.slice, env)
            return None
        shape = self._index_shape(
            container.shape, node.slice, env, node, container.is_array
        )
        if shape is None:
            return ArrayValue(
                is_array=container.is_array,
                dtype=container.dtype,
                unit=container.unit,
            )
        return ArrayValue(
            is_array=container.is_array and len(shape) > 0,
            shape=shape,
            dtype=container.dtype,
            unit=container.unit,
        )

    def _index_shape(
        self,
        shape: Shape,
        slice_node: ast.expr,
        env: "Env[ArrayValue]",
        report_node: ast.AST,
        is_array: bool,
    ) -> Optional[Shape]:
        """Result shape of ``container[slice]``; ``None`` = unknown."""
        items: Sequence[ast.expr]
        if isinstance(slice_node, ast.Tuple):
            items = slice_node.elts
        else:
            items = [slice_node]
        result: List[Axis] = []
        position = 0
        for item in items:
            if isinstance(item, ast.Constant) and item.value is None:
                result.append(Axis(None, 1))
                continue
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                return None
            if position >= len(shape):
                self._report(
                    report_node,
                    "SOA001",
                    f"too many indices: {len(items)} subscript(s) on a "
                    f"rank-{len(shape)} value of shape {shape_str(shape)}",
                )
                return None
            axis = shape[position]
            if isinstance(item, ast.Slice):
                result.append(self._sliced_axis(axis, item, env))
                position += 1
                continue
            literal = _const_int(item)
            if literal is not None:
                if (
                    is_array
                    and axis.size is not None
                    and literal >= 0
                    and literal >= axis.size
                ):
                    self._report(
                        report_node,
                        "SOA001",
                        f"index {literal} is out of bounds for axis "
                        f"{axis} of shape {shape_str(shape)}",
                    )
                position += 1  # integer index: drop the axis
                continue
            value = self.infer(item, env)
            if value is not None and value.shape == () and not value.is_array:
                position += 1  # known scalar index: drop the axis
                continue
            # unknown index or advanced/boolean indexing: give up
            return None
        result.extend(shape[position:])
        return tuple(result)

    def _sliced_axis(
        self, axis: Axis, item: ast.Slice, env: "Env[ArrayValue]"
    ) -> Axis:
        for bound in (item.lower, item.upper, item.step):
            if bound is not None:
                self.infer(bound, env)
        if item.lower is None and item.upper is None and item.step is None:
            return axis  # full slice preserves the axis identity
        if item.step is not None and _const_int(item.step) != 1:
            return UNKNOWN_AXIS
        lower = _const_int(item.lower) if item.lower is not None else 0
        upper = (
            _const_int(item.upper) if item.upper is not None else axis.size
        )
        if lower is None:
            return UNKNOWN_AXIS
        if item.upper is None and axis.size is None:
            return UNKNOWN_AXIS
        if upper is None:
            return UNKNOWN_AXIS
        if axis.size is not None:
            span = range(*slice(lower, upper).indices(axis.size))
            return Axis(None, len(span))
        if lower >= 0 and upper >= 0:
            return Axis(None, max(0, upper - lower))
        return UNKNOWN_AXIS

    # -- displays and comprehensions ------------------------------------

    def _infer_display(
        self, node: ast.expr, env: "Env[ArrayValue]"
    ) -> AV:
        elts = getattr(node, "elts", [])
        values = [self.infer(elt, env) for elt in elts]
        if any(isinstance(elt, ast.Starred) for elt in elts):
            return None
        axis0 = Axis(None, len(values))
        common: AV = values[0] if values else None
        for value in values[1:]:
            common = self._merge_optional(common, value)
        if not values:
            return ArrayValue(shape=(axis0,), axis=axis0)
        if common is None or common.shape is None:
            return ArrayValue(axis=axis0)
        return ArrayValue(
            shape=(axis0,) + common.shape,
            dtype=common.dtype,
            unit=common.unit,
            axis=axis0,
        )

    def _leading_axis(self, av: AV, node: ast.expr) -> Optional[Axis]:
        """The length-axis of an iterable expression, best effort."""
        if av is not None:
            if av.shape is not None and len(av.shape) >= 1:
                return av.shape[0]
            if av.axis is not None:
                return av.axis
            if av.shape == ():
                return None  # scalars are not iterable
        if isinstance(node, ast.Name):
            return Axis(name=node.id)
        if isinstance(node, ast.Attribute):
            return Axis(name=node.attr)
        return None

    def _element_of(self, av: AV) -> AV:
        if av is None or av.shape is None or len(av.shape) == 0:
            return None
        return ArrayValue(
            is_array=av.is_array and len(av.shape) > 1,
            shape=av.shape[1:],
            dtype=av.dtype,
            unit=av.unit,
        )

    def _infer_comprehension(
        self, node: ast.expr, env: "Env[ArrayValue]"
    ) -> AV:
        generators = getattr(node, "generators", [])
        elt = getattr(node, "elt", None)
        if len(generators) != 1 or elt is None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.infer(child, env)
            return None
        gen = generators[0]
        iter_av = self.infer(gen.iter, env)
        axis = self._leading_axis(iter_av, gen.iter)
        comp_env: Env[ArrayValue] = dict(env)
        self._bind(gen.target, self._element_of(iter_av), comp_env)
        if gen.ifs:
            for condition in gen.ifs:
                self.infer(condition, comp_env)
            axis = UNKNOWN_AXIS  # filtered comprehension: length unknown
        value = self.infer(elt, comp_env)
        lead = axis if axis is not None else UNKNOWN_AXIS
        if value is None:
            return ArrayValue(axis=lead)
        if value.shape is None:
            if not value.is_array:
                # a known non-array element of unknown shape is the
                # scalar-read idiom (`[lane.cfg.f_min_ghz for ...]`):
                # treat the comprehension as one axis of scalars
                return ArrayValue(
                    shape=(lead,),
                    dtype=value.dtype,
                    unit=value.unit,
                    axis=lead,
                )
            # element shape unknown, but its dtype/unit still describe
            # the list's elements (np.array() of it inherits both)
            return ArrayValue(
                dtype=value.dtype, unit=value.unit, axis=lead
            )
        return ArrayValue(
            shape=(lead,) + value.shape,
            dtype=value.dtype,
            unit=value.unit,
            axis=lead,
        )

    # -- calls ----------------------------------------------------------

    def _resolve(self, func: ast.expr) -> Optional[str]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.imports.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def _infer_call(self, node: ast.Call, env: "Env[ArrayValue]") -> AV:
        args = [self.infer(arg, env) for arg in node.args]
        keywords: Dict[str, AV] = {}
        for keyword in node.keywords:
            value = self.infer(keyword.value, env)
            if keyword.arg is not None:
                keywords[keyword.arg] = value
        target = self._resolve(node.func)
        if target is not None:
            tail = target.partition(".")[2]
            if target.startswith("numpy."):
                return self._numpy_call(tail, node, args, keywords, env)
            builtin = self._builtin_call(target, node, args, env)
            if builtin is not None or target in (
                "len", "float", "int", "bool", "abs", "range", "list",
                "tuple", "sorted", "enumerate", "zip", "reversed", "set",
                "min", "max", "sum", "round",
            ):
                return builtin
        # method call on an inferred receiver: arr.sum(...), arr.astype(...)
        if isinstance(node.func, ast.Attribute):
            receiver = self.infer(node.func.value, env)
            method = node.func.attr
            if (
                receiver is not None
                and receiver.is_array
                and method in _ARRAY_METHODS
            ):
                return self._array_method(
                    method, receiver, node, args, keywords, env
                )
            # an in-place list mutator invalidates the tracked shape
            # (`rows = []` then `rows.append(...)` is no longer empty)
            if method in _LIST_MUTATORS and (
                receiver is None or not receiver.is_array
            ):
                base = node.func.value
                if isinstance(base, ast.Name):
                    env.pop(base.id, None)
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                    and self.collect is not None
                ):
                    # pre-pass: pin the attribute to unknown for good
                    # (None is bottom in _merge_optional, so later
                    # stores cannot resurrect the stale empty shape)
                    self.collect[base.attr] = None
            return None
        if not isinstance(node.func, ast.Name):
            self.infer(node.func, env)
        return None

    def _builtin_call(
        self,
        target: str,
        node: ast.Call,
        args: List[AV],
        env: "Env[ArrayValue]",
    ) -> AV:
        first = args[0] if args else None
        if target == "len":
            axis = (
                self._leading_axis(first, node.args[0]) if node.args else None
            )
            return replace(SCALAR_INT, axis=axis)
        if target == "float":
            unit = first.unit if first is not None else None
            return ArrayValue(shape=(), dtype="float64", unit=unit)
        if target in ("int", "round"):
            return SCALAR_INT
        if target == "bool":
            return SCALAR_BOOL
        if target == "abs":
            return first
        if target == "range":
            if not node.args:
                return None
            count = args[-1] if len(args) <= 1 else None
            axis = count.axis if count is not None else None
            return ArrayValue(shape=(axis,) if axis else None, axis=axis)
        if target in ("list", "tuple", "sorted", "reversed"):
            if first is None and node.args:
                axis = self._leading_axis(None, node.args[0])
                return ArrayValue(axis=axis) if axis is not None else None
            if first is None:
                return None
            return replace(first, is_array=False)
        if target in ("enumerate", "zip"):
            if not node.args:
                return None
            axis = self._leading_axis(first, node.args[0])
            return ArrayValue(axis=axis) if axis is not None else None
        if target in ("min", "max"):
            known = [
                v.unit
                for v in args
                if v is not None and v.unit is not None and v.unit != SCALAR
            ]
            unit = known[0] if known and all(
                u == known[0] for u in known
            ) else None
            return ArrayValue(shape=(), unit=unit) if unit else None
        if target == "sum":
            if first is not None:
                return ArrayValue(
                    shape=(), dtype=first.dtype, unit=first.unit
                )
            return None
        return None

    def _dtype_from(self, value: AV, node: Optional[ast.expr]) -> Optional[str]:
        if value is not None and value.dtype_token is not None:
            return value.dtype_token
        if (
            node is not None
            and isinstance(node, ast.Constant)
            and isinstance(node.value, str)
        ):
            return _DTYPE_TOKENS.get(node.value)
        return None

    def _keyword_node(
        self, node: ast.Call, name: str
    ) -> Optional[ast.expr]:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _shape_from_arg(
        self, node: Optional[ast.expr], value: AV, env: "Env[ArrayValue]"
    ) -> Optional[Shape]:
        """Interpret an argument used as a shape (int or tuple of ints)."""
        if node is None:
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            axes: List[Axis] = []
            for elt in node.elts:
                av = self.infer(elt, env)
                if av is not None and av.axis is not None:
                    axes.append(av.axis)
                else:
                    axes.append(UNKNOWN_AXIS)
            return tuple(axes)
        if value is not None and value.axis is not None:
            return (value.axis,)
        if value is not None and value.shape == ():
            return (UNKNOWN_AXIS,)
        return None

    def _numpy_call(
        self,
        name: str,
        node: ast.Call,
        args: List[AV],
        keywords: Dict[str, AV],
        env: "Env[ArrayValue]",
    ) -> AV:
        token = _DTYPE_TOKENS.get(name)
        if token is not None:
            # np.float64(x): a scalar of that dtype (and a dtype token)
            first_arg = args[0] if args else None
            unit = first_arg.unit if first_arg is not None else SCALAR
            return ArrayValue(
                shape=(), dtype=token, unit=unit, dtype_token=token
            )
        dtype_kw = self._dtype_from(
            keywords.get("dtype"), self._keyword_node(node, "dtype")
        )
        first = args[0] if args else None
        if name in ("array", "asarray", "asanyarray"):
            return self._np_array(first, dtype_kw)
        if name in ("zeros", "ones", "empty", "full"):
            shape = self._shape_from_arg(
                node.args[0] if node.args else self._keyword_node(
                    node, "shape"
                ),
                first,
                env,
            )
            if name == "full":
                fill = args[1] if len(args) > 1 else keywords.get(
                    "fill_value"
                )
                dtype = dtype_kw or (
                    fill.dtype if fill is not None else None
                )
                unit = fill.unit if fill is not None else None
            else:
                dtype = dtype_kw or "float64"
                unit = SCALAR if name != "empty" else None
            return ArrayValue(
                is_array=True, shape=shape, dtype=dtype, unit=unit
            )
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            if first is None:
                return ArrayValue(is_array=True)
            return ArrayValue(
                is_array=True,
                shape=first.shape,
                dtype=dtype_kw or first.dtype,
                unit=SCALAR if name.startswith(("zeros", "ones")) else None,
            )
        if name == "arange":
            count = args[-1] if len(args) == 1 else None
            axis = count.axis if count is not None else UNKNOWN_AXIS
            return ArrayValue(
                is_array=True,
                shape=(axis if axis is not None else UNKNOWN_AXIS,),
                dtype=dtype_kw,
                unit=SCALAR,
            )
        if name == "where":
            return self._np_where(node, args)
        if name in _UFUNC_PASSTHROUGH:
            if first is None:
                return None
            return replace(first, is_array=True) if first.shape else first
        if name in _UFUNC_SHAPE_ONLY:
            if first is None:
                return None
            dtype = "bool" if name.startswith(("is", "logical")) else None
            return ArrayValue(
                is_array=True, shape=first.shape, dtype=dtype
            )
        if name in _UFUNC_ADDITIVE | _UFUNC_DIVIDE | _UFUNC_MULTIPLY \
                | _UFUNC_LOGICAL:
            return self._np_binary_ufunc(name, node, args)
        if name in _REDUCTIONS:
            return self._reduction(name, first, node, keywords, env)
        if name == "stack":
            return self._np_stack(first, node, keywords, env, stacked=True)
        if name in ("concatenate", "vstack", "hstack"):
            return self._np_stack(first, node, keywords, env, stacked=False)
        if name == "reshape":
            if len(args) >= 2:
                return self._reshape(
                    first, node.args[1:], args[1:], node, env
                )
            return None
        if name == "transpose":
            if first is None:
                return None
            if len(node.args) == 1 and first.shape is not None:
                return replace(
                    first, is_array=True, shape=first.shape[::-1]
                )
            return ArrayValue(is_array=True, dtype=first.dtype,
                              unit=first.unit)
        if name in ("argwhere", "nonzero"):
            return ArrayValue(
                is_array=True,
                shape=(UNKNOWN_AXIS, UNKNOWN_AXIS),
                dtype="int64",
                unit=SCALAR,
            )
        if name == "clip":
            if first is None:
                return None
            for other in args[1:]:
                lu = first.unit
                ru = other.unit if other is not None else None
                if (
                    first.is_known_array
                    and _mixable(lu, ru)
                ):
                    assert lu is not None and ru is not None
                    self._report(
                        node,
                        "SOA003",
                        f"np.clip mixes {unit_name(lu)} values with "
                        f"{unit_name(ru)} bounds",
                    )
            return replace(first, is_array=True)
        return None

    def _np_array(self, first: AV, dtype_kw: Optional[str]) -> AV:
        if first is None:
            return ArrayValue(is_array=True, dtype=dtype_kw)
        dtype = dtype_kw or (
            first.dtype if first.shape is not None else None
        )
        return ArrayValue(
            is_array=True,
            shape=first.shape,
            dtype=dtype,
            unit=first.unit,
            axis=first.axis,
        )

    def _np_where(self, node: ast.Call, args: List[AV]) -> AV:
        if len(args) != 3:
            return None
        cond, then, other = args
        shape: Optional[Shape] = None
        known = [v for v in (cond, then, other) if v is not None]
        current: AV = cond
        for nxt in (then, other):
            shape = self._broadcast_operands(current, nxt, node, True)
            current = (
                ArrayValue(is_array=True, shape=shape)
                if shape is not None
                else None
            )
        tu = then.unit if then is not None else None
        ou = other.unit if other is not None else None
        if _mixable(tu, ou) and any(
            v.is_known_array for v in known
        ):
            assert tu is not None and ou is not None
            self._report(
                node,
                "SOA003",
                f"np.where selects between {unit_name(tu)} and "
                f"{unit_name(ou)} branches",
            )
        dtype = promote(
            then.dtype if then is not None else None,
            ou_dtype := (other.dtype if other is not None else None),
        )
        # python-scalar branch does not widen a narrow-float branch
        for array_side, scalar_side in ((then, other), (other, then)):
            if (
                array_side is not None
                and array_side.is_known_array
                and array_side.dtype in NARROW_FLOATS
                and scalar_side is not None
                and scalar_side.shape == ()
                and not scalar_side.is_array
            ):
                dtype = array_side.dtype
        del ou_dtype
        unit = tu if tu == ou else None
        return ArrayValue(
            is_array=True, shape=shape, dtype=dtype, unit=unit
        )

    def _np_binary_ufunc(
        self, name: str, node: ast.Call, args: List[AV]
    ) -> AV:
        if len(args) < 2:
            return None
        left, right = args[0], args[1]
        shape = self._broadcast_operands(left, right, node, True)
        lu = left.unit if left is not None else None
        ru = right.unit if right is not None else None
        unit: Optional[Dim]
        if name in _UFUNC_MULTIPLY:
            unit = mul(lu, ru) if lu is not None and ru is not None else None
        elif name in _UFUNC_DIVIDE:
            unit = div(lu, ru) if lu is not None and ru is not None else None
        elif name in _UFUNC_LOGICAL:
            unit = None
        else:
            if _mixable(lu, ru):
                assert lu is not None and ru is not None
                self._report(
                    node,
                    "SOA003",
                    f"np.{name} mixes {unit_name(lu)} and "
                    f"{unit_name(ru)} operands elementwise",
                )
                unit = None
            else:
                known = [
                    u for u in (lu, ru) if u is not None and u != SCALAR
                ]
                unit = known[0] if known else (
                    SCALAR if SCALAR in (lu, ru) else None
                )
        self._check_mixed_precision(left, right, node)
        if name in _UFUNC_COMPARISONS:
            dtype: Optional[str] = "bool"
            unit = SCALAR
        else:
            dtype = promote(
                left.dtype if left is not None else None,
                right.dtype if right is not None else None,
            )
            for array_side, scalar_side in ((left, right), (right, left)):
                if (
                    array_side is not None
                    and array_side.is_known_array
                    and array_side.dtype in NARROW_FLOATS
                    and scalar_side is not None
                    and scalar_side.shape == ()
                    and not scalar_side.is_array
                ):
                    dtype = array_side.dtype
        return ArrayValue(
            is_array=True, shape=shape, dtype=dtype, unit=unit
        )

    def _reduction(
        self,
        name: str,
        receiver: AV,
        node: ast.Call,
        keywords: Dict[str, AV],
        env: "Env[ArrayValue]",
    ) -> AV:
        if receiver is None:
            return None
        axis_node = self._keyword_node(node, "axis")
        keepdims_node = self._keyword_node(node, "keepdims")
        keepdims = (
            isinstance(keepdims_node, ast.Constant)
            and keepdims_node.value is True
        )
        if name in _INT_REDUCTIONS:
            dtype: Optional[str] = "int64"
            unit: Optional[Dim] = SCALAR
        elif name in _BOOL_REDUCTIONS:
            dtype = "bool"
            unit = SCALAR
        elif name in ("mean", "std", "var"):
            dtype = "float64" if not is_float(receiver.dtype) else (
                receiver.dtype
            )
            unit = receiver.unit if name == "mean" else None
        else:
            dtype = (
                "int64" if receiver.dtype == "bool" and name == "sum"
                else receiver.dtype
            )
            unit = receiver.unit
        if axis_node is None:
            if receiver.shape is not None and keepdims:
                collapsed = tuple(
                    Axis(None, 1) for _ in receiver.shape
                )
                return ArrayValue(
                    is_array=True, shape=collapsed, dtype=dtype, unit=unit
                )
            return ArrayValue(shape=(), dtype=dtype, unit=unit)
        literal = _const_int(axis_node)
        if literal is None or receiver.shape is None:
            return ArrayValue(is_array=True, dtype=dtype, unit=unit)
        rank = len(receiver.shape)
        index = literal % rank if rank else 0
        if rank == 0 or not (-rank <= literal < rank):
            return ArrayValue(is_array=True, dtype=dtype, unit=unit)
        axes = list(receiver.shape)
        if keepdims:
            axes[index] = Axis(None, 1)
        else:
            del axes[index]
        return ArrayValue(
            is_array=True, shape=tuple(axes), dtype=dtype, unit=unit
        )

    def _np_stack(
        self,
        first: AV,
        node: ast.Call,
        keywords: Dict[str, AV],
        env: "Env[ArrayValue]",
        stacked: bool,
    ) -> AV:
        if first is None or first.shape is None or len(first.shape) == 0:
            return ArrayValue(is_array=True)
        count = first.shape[0]
        element = first.shape[1:]
        if stacked:
            axis_node = self._keyword_node(node, "axis")
            literal = (
                _const_int(axis_node) if axis_node is not None else 0
            ) or 0
            axes = list(element)
            position = literal % (len(element) + 1) if literal >= 0 else max(
                0, len(element) + 1 + literal
            )
            axes.insert(position, count)
            return ArrayValue(
                is_array=True,
                shape=tuple(axes),
                dtype=first.dtype,
                unit=first.unit,
            )
        if len(element) == 0:
            return ArrayValue(
                is_array=True,
                shape=(UNKNOWN_AXIS,),
                dtype=first.dtype,
                unit=first.unit,
            )
        return ArrayValue(
            is_array=True,
            shape=(UNKNOWN_AXIS,) + element[1:],
            dtype=first.dtype,
            unit=first.unit,
        )

    def _reshape(
        self,
        receiver: AV,
        dim_nodes: Sequence[ast.expr],
        dim_values: Sequence[AV],
        node: ast.AST,
        env: "Env[ArrayValue]",
    ) -> AV:
        if receiver is None:
            return None
        nodes: Sequence[ast.expr] = dim_nodes
        values: Sequence[AV] = dim_values
        if len(dim_nodes) == 1 and isinstance(
            dim_nodes[0], (ast.Tuple, ast.List)
        ):
            nodes = dim_nodes[0].elts
            values = [self.infer(elt, env) for elt in nodes]
        axes: List[Axis] = []
        has_wildcard = False
        for dim_node, value in zip(nodes, values):
            literal = _const_int(dim_node)
            if literal == -1:
                has_wildcard = True
                axes.append(UNKNOWN_AXIS)
            elif value is not None and value.axis is not None:
                axes.append(value.axis)
            else:
                axes.append(UNKNOWN_AXIS)
        new_shape = tuple(axes)
        if (
            not has_wildcard
            and receiver.shape is not None
            and all(a.size is not None for a in receiver.shape)
            and all(a.size is not None for a in new_shape)
        ):
            old = 1
            for axis in receiver.shape:
                assert axis.size is not None
                old *= axis.size
            new = 1
            for axis in new_shape:
                assert axis.size is not None
                new *= axis.size
            if old != new:
                self._report(
                    node,
                    "SOA001",
                    f"reshape from {shape_str(receiver.shape)} "
                    f"({old} elements) to {shape_str(new_shape)} "
                    f"({new} elements) changes the element count",
                )
                return ArrayValue(
                    is_array=True, dtype=receiver.dtype, unit=receiver.unit
                )
        return ArrayValue(
            is_array=True,
            shape=new_shape,
            dtype=receiver.dtype,
            unit=receiver.unit,
        )

    def _array_method(
        self,
        method: str,
        receiver: ArrayValue,
        node: ast.Call,
        args: List[AV],
        keywords: Dict[str, AV],
        env: "Env[ArrayValue]",
    ) -> AV:
        if method in _REDUCTIONS:
            return self._reduction(method, receiver, node, keywords, env)
        if method == "astype":
            dtype = self._dtype_from(
                args[0] if args else None,
                node.args[0] if node.args else None,
            )
            # explicit cast: allowed, never an SOA002 finding
            return replace(receiver, dtype=dtype)
        if method == "copy":
            return receiver
        if method == "reshape":
            return self._reshape(receiver, node.args, args, node, env)
        if method == "transpose":
            if not node.args and receiver.shape is not None:
                return replace(receiver, shape=receiver.shape[::-1])
            return ArrayValue(
                is_array=True, dtype=receiver.dtype, unit=receiver.unit
            )
        if method == "tolist":
            return replace(receiver, is_array=False)
        if method == "item":
            return ArrayValue(
                shape=(), dtype=receiver.dtype, unit=receiver.unit
            )
        return None  # fill() and friends mutate in place, return None


__all__ = [
    "Axis",
    "ArrayValue",
    "ArrayWalker",
    "DTYPE_ORDER",
    "NARROW_FLOATS",
    "Problem",
    "Shape",
    "UNKNOWN_AXIS",
    "broadcast_shapes",
    "combine_axes",
    "is_float",
    "promote",
    "shape_str",
]
