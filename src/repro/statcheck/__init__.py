"""`statcheck`: AST-based invariant analysis for this repository.

The paper's headline numbers are only reproducible if every simulation
run is bit-deterministic and every sweep-cache hit is genuinely
equivalent to a recompute.  Those invariants -- seeded randomness, no
wall-clock reads in simulated code, complete cache keys, picklable pool
payloads, schema'd probe events -- are exactly the kind of thing a
conventional linter cannot express, so this package ships a small
static-analysis framework with codebase-specific rules:

========  ========  ==========================================================
rule      severity  invariant
========  ========  ==========================================================
DET001    error     no unseeded ``random`` / ``np.random`` module-level calls
                    in simulation/controller code
DET002    error     no wall-clock reads (``time.time``, ``perf_counter``,
                    ``datetime.now``, ...) in simulation/controller code
DET003    error     no iteration over unordered sets in code that feeds
                    hashes or cache keys
CTL001    error     no float ``==`` / ``!=`` in controller/FSM decision code
CACHE001  error     every ``SweepJob`` field appears in the
                    ``canonical_dict()`` cache-key derivation
POOL001   error     no lambdas or local functions submitted to process pools
OBS001    error     every emitted probe event kind has a registered schema in
                    ``repro.obs.schema`` -- and no schema is orphaned
PERF001   error     no fresh container allocations inside simulator hot loops
PY001     error     no mutable default arguments
PY002     error     no bare/overbroad ``except`` that silently swallows errors
UNIT001   error     no mixed physical units in arithmetic (ns vs GHz vs V);
                    period/frequency conversions must go through ``1/f``
SIM001    error     every state attribute the reference ``MCDProcessor`` hot
                    path assigns must be carried by the ``Fast*`` core
RACE001   error     no module-level mutable state mutated in code reachable
                    from process-pool worker entry points
========  ========  ==========================================================

``UNIT001``/``SIM001``/``RACE001`` are built on the semantic layer
(:mod:`~repro.statcheck.semantic` symbol table,
:mod:`~repro.statcheck.dataflow` def-use walker,
:mod:`~repro.statcheck.callgraph` call graph); ``SUP001`` is reserved
for unjustified suppressions under ``--require-justification`` and
``E001`` for files that fail to parse.

Findings can be suppressed inline::

    risky_call()  # statcheck: disable=DET002 -- justification here

or for a whole file with ``# statcheck: disable-file=RULE`` on any line.
Run it as ``repro-dvfs check [paths]`` or ``python -m repro.statcheck``;
exit status is 0 (clean), 1 (findings), or 2 (usage error or analyzer
crash), so CI can tell a red build from a broken analyzer.

Beyond one-shot runs, the CLI supports a per-module result cache with
dependency-aware invalidation (on by default; ``--jobs N`` analyzes
cache misses in parallel, ``--no-incremental`` disables it), a ratchet
baseline (``--write-baseline`` / ``--baseline`` grandfather existing
findings so only *new* ones fail), ``--changed-only BASE`` to scope
per-file rules to the files changed since a git ref, and
``--require-justification`` to fail suppressions without a reason.
"""

from repro.statcheck.engine import (
    AnalysisReport,
    Analyzer,
    Project,
    Rule,
    SourceFile,
)
from repro.statcheck.findings import Finding, Severity
from repro.statcheck.registry import all_rules, get_rule, register

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "SourceFile",
    "all_rules",
    "get_rule",
    "register",
]
