"""The statcheck analysis engine.

Parses source files once, runs every selected rule over them, applies
inline suppressions, and returns a sorted :class:`AnalysisReport`.  Two
rule shapes exist:

* **per-file** rules override :meth:`Rule.check_file` and see one
  :class:`SourceFile` at a time, pre-filtered by the rule's ``scope``
  (a tuple of dotted package prefixes -- determinism rules only apply to
  simulation/controller packages, hygiene rules everywhere);
* **cross-module** rules override :meth:`Rule.check_project` and see the
  whole :class:`Project` at once (cache-key completeness, probe-schema
  bidirectionality).

Suppressions
------------
``# statcheck: disable=RULE[,RULE...]`` on the line a finding is
reported at suppresses it there; ``# statcheck: disable-file=RULE`` on
any line suppresses the rule for the whole file; ``all`` matches every
rule.  Suppressions are expected to carry a justification after ``--``;
the analyzer does not enforce prose, but review should.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.statcheck.findings import Finding, Severity
from repro.statcheck.registry import all_rules

_PRAGMA = re.compile(
    r"#\s*statcheck:\s*(?P<kind>disable|disable-file)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

#: Rule ID reserved for files the analyzer cannot parse at all.
PARSE_ERROR_RULE = "E001"
#: Rule ID reserved for suppressions without a ``-- reason`` (only
#: emitted under ``require_justification``; never itself suppressible).
SUPPRESSION_RULE = "SUP001"


@dataclass(frozen=True)
class Pragma:
    """One ``# statcheck: disable[-file]=...`` comment, as written."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: Optional[str] = None


def _parse_pragmas(
    source: str,
) -> "Tuple[Set[str], Dict[int, Set[str]], List[Pragma]]":
    """Extract (file-wide, per-line, raw-pragma) tables from comments.

    Tokenizing (rather than regexing raw lines) keeps pragma-looking text
    inside string literals from being honoured.  On tokenization failure
    -- the file will produce a parse-error finding anyway -- no
    suppressions are recognized.
    """
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if not match:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            pragmas.append(
                Pragma(
                    line=token.start[0],
                    kind=match.group("kind"),
                    rules=tuple(sorted(rules)),
                    reason=match.group("reason"),
                )
            )
            if match.group("kind") == "disable-file":
                file_wide |= rules
            else:
                per_line.setdefault(token.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return file_wide, per_line, pragmas


def _module_for_path(path: str) -> str:
    """Dotted module path inferred from the package layout on disk.

    Walks up while ``__init__.py`` exists, so ``src/repro/mcd/rob.py``
    maps to ``repro.mcd.rob`` regardless of where the tree is rooted.
    """
    abspath = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(abspath))[0]]
    directory = os.path.dirname(abspath)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    if parts[0] == "__init__":
        parts = parts[1:] or [os.path.basename(directory)]
    return ".".join(reversed(parts))


@dataclass
class SourceFile:
    """One parsed source file plus its suppression tables."""

    path: str
    module: str
    source: str
    tree: Optional[ast.Module]
    parse_error: Optional[str] = None
    file_suppressions: Set[str] = field(default_factory=set)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    pragmas: List[Pragma] = field(default_factory=list)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> "SourceFile":
        """Build from in-memory source; ``module`` overrides the inferred
        dotted path (tests use this to exercise scoped rules on fixtures)."""
        file_wide, per_line, pragmas = _parse_pragmas(source)
        tree: Optional[ast.Module] = None
        parse_error: Optional[str] = None
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            parse_error = str(exc)
        return cls(
            path=path,
            module=module if module is not None else _module_for_path(path),
            source=source,
            tree=tree,
            parse_error=parse_error,
            file_suppressions=file_wide,
            line_suppressions=per_line,
            pragmas=pragmas,
        )

    @classmethod
    def from_path(cls, path: str, module: Optional[str] = None) -> "SourceFile":
        with open(path, encoding="utf-8") as handle:
            return cls.from_source(handle.read(), path=path, module=module)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for pragma in (rule_id, "all"):
            if pragma in self.file_suppressions:
                return True
            if pragma in self.line_suppressions.get(line, ()):
                return True
        return False


@dataclass
class Project:
    """Every file of one analysis run, for cross-module rules."""

    files: List[SourceFile]

    def modules(self) -> Dict[str, SourceFile]:
        return {file.module: file for file in self.files}


class Rule:
    """Base class for all statcheck rules.

    Subclasses set ``id``, ``severity`` and ``description``, optionally
    narrow ``scope`` to dotted package prefixes, and override exactly one
    of :meth:`check_file` / :meth:`check_project`.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: dotted package prefixes this rule applies to; empty = everywhere.
    scope: Tuple[str, ...] = ()

    def applies_to(self, file: SourceFile) -> bool:
        if not self.scope:
            return True
        return any(
            file.module == prefix or file.module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_file(self, file: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run."""

    findings: List[Finding]
    files_scanned: int
    rules: List[str]
    suppressed: int = 0
    #: incremental-cache statistics (hits/misses/...), when enabled
    incremental: Optional[Dict[str, object]] = None
    #: baseline-screening statistics (new/grandfathered/stale), when used
    baseline: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def _collect_paths(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                collected.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif os.path.isfile(path):
            collected.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return collected


class Analyzer:
    """Runs a rule set over a set of files and reports the findings."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        require_justification: bool = False,
        per_file_paths: Optional[Iterable[str]] = None,
    ) -> None:
        """``require_justification`` turns suppressions without a
        ``-- reason`` into :data:`SUPPRESSION_RULE` findings (which are
        themselves never suppressible).  ``per_file_paths`` restricts
        *per-file* rules to those paths (the ``--changed-only`` mode);
        cross-module rules always see the whole project.
        """
        classes = list(rules) if rules is not None else all_rules()
        known = {cls.id for cls in classes}
        for rule_set in (select, ignore):
            unknown = set(rule_set or ()) - known
            if unknown:
                raise ValueError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))} "
                    f"(known: {', '.join(sorted(known))})"
                )
        if select is not None:
            wanted = set(select)
            classes = [cls for cls in classes if cls.id in wanted]
        if ignore is not None:
            dropped = set(ignore)
            classes = [cls for cls in classes if cls.id not in dropped]
        self.rules: List[Rule] = [cls() for cls in classes]
        self.require_justification = require_justification
        self.per_file_paths: Optional[Set[str]] = (
            {os.path.abspath(path) for path in per_file_paths}
            if per_file_paths is not None
            else None
        )

    def analyze_paths(self, paths: Sequence[str]) -> AnalysisReport:
        files = [SourceFile.from_path(path) for path in _collect_paths(paths)]
        return self.analyze(files)

    def analyze(self, files: Sequence[SourceFile]) -> AnalysisReport:
        project = Project(files=list(files))
        raw: List[Finding] = []
        for file in project.files:
            if file.parse_error is not None:
                raw.append(
                    Finding(
                        rule=PARSE_ERROR_RULE,
                        severity=Severity.ERROR,
                        path=file.path,
                        line=1,
                        col=0,
                        message=f"cannot parse file: {file.parse_error}",
                    )
                )
        for rule in self.rules:
            for file in project.files:
                if file.tree is None or not rule.applies_to(file):
                    continue
                if (
                    self.per_file_paths is not None
                    and os.path.abspath(file.path) not in self.per_file_paths
                ):
                    continue
                raw.extend(rule.check_file(file))
            raw.extend(rule.check_project(project))

        by_path = {file.path: file for file in project.files}
        kept: List[Finding] = []
        suppressed = 0
        for finding in raw:
            file = by_path.get(finding.path)
            if file is not None and file.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed += 1
            else:
                kept.append(finding)
        if self.require_justification:
            # emitted after suppression filtering, so a bare
            # ``disable=all`` cannot suppress its own finding
            for file in project.files:
                for pragma in file.pragmas:
                    if pragma.reason is not None:
                        continue
                    kept.append(
                        Finding(
                            rule=SUPPRESSION_RULE,
                            severity=Severity.ERROR,
                            path=file.path,
                            line=pragma.line,
                            col=0,
                            message=(
                                f"suppression of {', '.join(pragma.rules)} "
                                "carries no justification; append "
                                "'-- <reason>' to the pragma"
                            ),
                        )
                    )
        kept.sort(key=lambda finding: finding.sort_key)
        return AnalysisReport(
            findings=kept,
            files_scanned=len(project.files),
            rules=[rule.id for rule in self.rules],
            suppressed=suppressed,
        )
