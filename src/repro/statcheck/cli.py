"""Command-line front end of the analyzer.

Reached two ways -- ``repro-dvfs check ...`` and ``python -m
repro.statcheck ...`` -- both share :func:`add_arguments` /
:func:`run_checked`.  Exit codes are part of the contract (CI diagnoses
failures from them):

* ``0`` -- analysis ran, no findings;
* ``1`` -- analysis ran, findings reported;
* ``2`` -- the analyzer itself failed (bad usage, unknown rule,
  unreadable path, or an internal crash).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.statcheck.engine import Analyzer
from repro.statcheck.registry import all_rules
from repro.statcheck.reporters import RENDERERS

#: Exit statuses of the ``check`` command.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def default_paths() -> List[str]:
    """Scan ``src/`` when invoked from a checkout root, else the cwd."""
    return ["src"] if os.path.isdir("src") else ["."]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: src/ if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def run(args: argparse.Namespace) -> int:
    """Execute one analysis; may raise (callers map crashes to exit 2)."""
    if args.list_rules:
        for cls in all_rules():
            scope = ", ".join(cls.scope) if cls.scope else "all code"
            print(f"{cls.id}  [{cls.severity.value}]  ({scope})")
            print(f"    {cls.description}")
        return EXIT_CLEAN
    try:
        analyzer = Analyzer(
            select=_split_rules(args.select), ignore=_split_rules(args.ignore)
        )
        report = analyzer.analyze_paths(args.paths or default_paths())
    except (ValueError, OSError) as exc:
        # bad rule selection or unreadable input: usage error, not findings
        print(f"statcheck: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(RENDERERS[args.format](report))
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def run_checked(args: argparse.Namespace) -> int:
    """:func:`run` with internal crashes mapped to :data:`EXIT_ERROR`.

    A rule bug must fail CI *diagnosably* -- exit 2 with a traceback --
    rather than masquerading as a clean tree or a finding.
    """
    try:
        return run(args)
    except BrokenPipeError:
        # the consumer (e.g. `| head`) closed the pipe: not a crash.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR
    except Exception as exc:
        import traceback

        traceback.print_exc()
        print(f"statcheck: internal error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="AST-based invariant analysis for the repro codebase",
    )
    add_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run_checked(build_parser().parse_args(argv))
