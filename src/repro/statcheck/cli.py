"""Command-line front end of the analyzer.

Reached two ways -- ``repro-dvfs check ...`` and ``python -m
repro.statcheck ...`` -- both share :func:`add_arguments` /
:func:`run_checked`.  Exit codes are part of the contract (CI diagnoses
failures from them):

* ``0`` -- analysis ran, no findings;
* ``1`` -- analysis ran, findings reported;
* ``2`` -- the analyzer itself failed (bad usage, unknown rule,
  unreadable path, or an internal crash).
"""

from __future__ import annotations

import argparse
import collections
import os
import subprocess
import sys
import time
from typing import List, Optional

from repro.statcheck.baseline import Baseline
from repro.statcheck.engine import AnalysisReport, Analyzer
from repro.statcheck.incremental import IncrementalAnalyzer
from repro.statcheck.registry import all_rules
from repro.statcheck.reporters import RENDERERS

#: default location of the incremental-analysis cache
DEFAULT_CACHE_FILE = ".statcheck-cache.json"

#: Exit statuses of the ``check`` command.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def default_paths() -> List[str]:
    """Scan ``src/`` when invoked from a checkout root, else the cwd."""
    return ["src"] if os.path.isdir("src") else ["."]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: src/ if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(RENDERERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_const",
        const="json",
        dest="format",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="ratchet mode: findings recorded in FILE are grandfathered "
        "(reported in the summary, not as findings); only new findings "
        "fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the baseline in FILE and "
        "exit 0 (explicit regeneration; the baseline never grows "
        "implicitly)",
    )
    parser.add_argument(
        "--changed-only",
        default=None,
        metavar="BASE",
        help="run per-file rules only on files changed since git ref BASE "
        "(cross-module rules still see the whole project)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze cache-missed files on N worker processes "
        "(default: 1, serial)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the per-module result cache",
    )
    parser.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE_FILE,
        metavar="FILE",
        help=f"incremental-cache location (default: {DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--require-justification",
        action="store_true",
        help="fail suppressions that lack a '-- reason' justification "
        "(reported as SUP001, never itself suppressible)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print a run summary (files, cache hit ratio, per-rule "
        "finding counts, wall time) to stderr; stdout stays pure",
    )


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def _changed_paths(base: str) -> List[str]:
    """Python files changed since git ref ``base`` (absolute paths)."""
    proc = subprocess.run(
        ["git", "diff", "--name-only", base, "--"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise ValueError(
            f"git diff --name-only {base} failed: {proc.stderr.strip()}"
        )
    return [
        os.path.abspath(line.strip())
        for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    ]


def _widen_changed_paths(
    changed: List[str], roots: List[str]
) -> List[str]:
    """Changed files plus every project file that transitively imports a
    changed module.

    ``--changed-only`` restricts per-file rules to the changed set; a
    file whose *dependency* changed is affected too (its import-resolved
    facts -- call targets, class pairings, collected contracts -- were
    computed against the old module), so the restriction follows the
    same reverse dependency edges the incremental cache invalidates on.
    Unparsable or out-of-project files stay exactly as git listed them.
    """
    import ast

    from repro.statcheck.engine import _collect_paths, _module_for_path
    from repro.statcheck.semantic import _dep_modules

    try:
        all_paths = _collect_paths(roots)
    except (OSError, FileNotFoundError):
        return sorted(set(changed))
    path_by_module: dict = {}
    trees: dict = {}
    for path in all_paths:
        module = _module_for_path(path)
        path_by_module[module] = os.path.abspath(path)
        try:
            with open(path, encoding="utf-8") as handle:
                trees[module] = ast.parse(handle.read())
        except (OSError, SyntaxError):
            continue
    modules = set(path_by_module)
    dependents: dict = {}
    for module, tree in trees.items():
        for dep in _dep_modules(tree, module, modules):
            dependents.setdefault(dep, set()).add(module)
    module_by_path = {p: m for m, p in path_by_module.items()}
    widened = set(changed)
    queue = [
        module_by_path[path] for path in widened if path in module_by_path
    ]
    seen = set(queue)
    while queue:
        current = queue.pop()
        for dependent in dependents.get(current, ()):
            if dependent not in seen:
                seen.add(dependent)
                queue.append(dependent)
    widened.update(path_by_module[module] for module in seen)
    return sorted(widened)


def _print_stats(report: "AnalysisReport", wall_s: float) -> None:
    """One human summary of the run on stderr (``--stats``)."""
    parts = [f"files={report.files_scanned}"]
    incremental = report.incremental
    if incremental and incremental.get("enabled"):
        ratio = float(incremental.get("hit_ratio", 0.0))  # type: ignore[arg-type]
        parts.append(f"cache_hit_ratio={ratio:.0%}")
    else:
        parts.append("cache_hit_ratio=n/a")
    by_rule = collections.Counter(f.rule for f in report.findings)
    if by_rule:
        counts = ",".join(
            f"{rule}:{count}" for rule, count in sorted(by_rule.items())
        )
        parts.append(f"findings={counts}")
    else:
        parts.append("findings=0")
    parts.append(f"rules={len(report.rules)}")
    parts.append(f"wall_s={wall_s:.2f}")
    print("statcheck stats: " + " ".join(parts), file=sys.stderr)


def run(args: argparse.Namespace) -> int:
    """Execute one analysis; may raise (callers map crashes to exit 2)."""
    if args.list_rules:
        for cls in all_rules():
            scope = ", ".join(cls.scope) if cls.scope else "all code"
            print(f"{cls.id}  [{cls.severity.value}]  ({scope})")
            print(f"    {cls.description}")
        return EXIT_CLEAN
    started = time.monotonic()
    try:
        paths = args.paths or default_paths()
        per_file_paths = (
            _widen_changed_paths(_changed_paths(args.changed_only), paths)
            if args.changed_only is not None
            else None
        )
        analyzer = Analyzer(
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            require_justification=args.require_justification,
            per_file_paths=per_file_paths,
        )
        if args.no_incremental or per_file_paths is not None:
            report = analyzer.analyze_paths(paths)
        else:
            report = IncrementalAnalyzer(
                analyzer, cache_path=args.cache_file, jobs=args.jobs
            ).analyze_paths(paths)
    except (ValueError, OSError) as exc:
        # bad rule selection or unreadable input: usage error, not findings
        print(f"statcheck: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline is not None:
        Baseline.from_findings(report.findings).dump(args.write_baseline)
        print(
            f"statcheck: wrote baseline with {len(report.findings)} "
            f"finding(s) to {args.write_baseline}"
        )
        return EXIT_CLEAN

    if args.baseline is not None:
        screened = Baseline.load(args.baseline).screen(report.findings)
        report.findings = screened.new
        report.baseline = dict(screened.to_dict())

    if args.stats:
        _print_stats(report, time.monotonic() - started)
    print(RENDERERS[args.format](report))
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def run_checked(args: argparse.Namespace) -> int:
    """:func:`run` with internal crashes mapped to :data:`EXIT_ERROR`.

    A rule bug must fail CI *diagnosably* -- exit 2 with a traceback --
    rather than masquerading as a clean tree or a finding.
    """
    try:
        return run(args)
    except BrokenPipeError:
        # the consumer (e.g. `| head`) closed the pipe: not a crash.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_ERROR
    except Exception as exc:
        import traceback

        traceback.print_exc()
        print(f"statcheck: internal error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statcheck",
        description="AST-based invariant analysis for the repro codebase",
    )
    add_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    return run_checked(build_parser().parse_args(argv))
