"""The unit of analyzer output: one :class:`Finding` at one location."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the build (CI gates on any
    finding), the distinction exists for reporting and SARIF mapping."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.col, self.rule)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (incremental-cache round trip)."""
        return cls(
            rule=str(data["rule"]),
            severity=Severity(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
        )
