"""Static call graph over the project symbol table.

Nodes are function qualnames from :class:`~repro.statcheck.semantic.
SymbolTable`; edges are added for the call shapes this codebase uses:

* **direct calls** -- ``helper(x)`` to a module-level function, in the
  same module or through an import alias;
* **method calls** -- ``self.method(x)`` / ``cls.method(x)`` resolved
  against the enclosing class and its project-resolvable bases;
* **pool submissions** -- ``executor.submit(fn, ...)`` and friends (see
  :data:`~repro.statcheck.astutil.SUBMIT_METHODS`), plus calls to the
  engine's :func:`repro.engine.scheduler.pooled_map`.  Any argument that
  statically resolves to a project function gets a call edge *and* is
  recorded as a **worker entry point**: it runs inside a pool worker
  process, which is what the RACE001 shared-state rule keys on;
* **concurrency hops** (PR 8) -- the asyncio/threading shapes the serve
  layer is built from, each with its own edge kind so context-sensitive
  reachability (:mod:`repro.statcheck.concurrency`) can follow or prune
  them:

  - ``await fn(...)`` -- kind ``"await"`` (stays in the caller's context);
  - ``create_task(...)`` / ``ensure_future(...)`` -- kind ``"task"``
    (the coroutine runs on the event loop);
  - ``loop.run_in_executor(pool, fn, ...)`` -- kind ``"executor"``; the
    callable is recorded as a **thread entry point**;
  - ``threading.Thread(target=fn)`` / ``threading.Timer(s, fn)`` --
    kind ``"thread"``; also a thread entry point;
  - ``loop.call_soon_threadsafe(fn, ...)``, ``loop.run_until_complete``,
    ``asyncio.run(...)``, ``asyncio.run_coroutine_threadsafe`` -- kind
    ``"loop"`` (a context hop: the callee runs on the loop no matter
    which thread schedules it).

An optional *resolver* callback extends name resolution -- the
concurrency layer passes a type-inference-backed resolver so
``self.store.publish(...)`` (attribute receivers with inferable types)
and ``SweepEngine(...)`` (constructor calls) also get edges.

Unresolvable targets (dynamic dispatch, callables stored in data
structures, ``self.runner(...)``) simply contribute no edge: the graph
under-approximates calls, so reachability-based rules fail open.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.statcheck.astutil import dotted_name, is_pool_submit, resolve_call
from repro.statcheck.semantic import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
)

#: Plain functions that forward their callable argument into pool
#: workers (the sweep engine's generic parallel map).
POOLED_MAP_NAMES = frozenset({"pooled_map"})

#: ``X.create_task(coro)`` / ``X.ensure_future(coro)`` -- the coroutine
#: is scheduled onto the event loop.  The attribute names are specific
#: enough that no receiver check is needed (``asyncio.get_event_loop()
#: .create_task(...)`` has an unresolvable receiver but a clear verb).
TASK_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})

#: Loop methods whose callable/coroutine argument executes *on the
#: loop*, regardless of the calling thread -- a context hop.
LOOP_SCHEDULE_ATTRS = frozenset(
    {
        "call_at",
        "call_later",
        "call_soon",
        "call_soon_threadsafe",
        "run_until_complete",
    }
)

#: Module-level asyncio entry points with the same context-hop shape.
LOOP_SCHEDULE_FUNCTIONS = frozenset(
    {"asyncio.run", "asyncio.run_coroutine_threadsafe"}
)

#: Constructors whose ``target``/``function`` callable runs on a new
#: plain thread.
THREAD_FACTORIES = frozenset({"threading.Thread", "threading.Timer"})

#: Receiver-name fragments identifying an event loop (mirrors
#: :data:`~repro.statcheck.astutil.POOL_HINTS` for pools).
LOOP_HINTS = ("loop",)

#: A pluggable fallback resolver: ``(enclosing function, callable
#: expression) -> FunctionInfo`` tried when the syntactic resolution
#: fails.  The concurrency layer supplies a type-inference-backed one.
RefResolver = Callable[[FunctionInfo, ast.expr], Optional[FunctionInfo]]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    line: int
    # "direct" | "method" | "pool" | "await" | "task" | "executor"
    # | "thread" | "loop"
    kind: str


def _loop_receiver(func: ast.Attribute) -> bool:
    """Whether an attribute call's receiver looks like an event loop."""
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    last = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in last for hint in LOOP_HINTS)


class CallGraph:
    """Directed call graph with pool/thread entry points."""

    def __init__(
        self, table: SymbolTable, resolver: Optional[RefResolver] = None
    ) -> None:
        self.table = table
        self.resolver = resolver
        self.edges: List[CallEdge] = []
        self.successors: Dict[str, Set[str]] = {}
        #: caller -> [(callee, kind)] for kind-filtered traversal
        self.kinded_successors: Dict[str, List[Tuple[str, str]]] = {}
        #: qualnames of functions that execute inside pool workers
        self.worker_entries: Set[str] = set()
        #: qualnames that execute on a plain/executor thread
        self.thread_entries: Set[str] = set()

    @classmethod
    def build(
        cls, table: SymbolTable, resolver: Optional[RefResolver] = None
    ) -> "CallGraph":
        graph = cls(table, resolver=resolver)
        for qualname in sorted(table.functions):
            graph._scan_function(table.functions[qualname])
        return graph

    # -- construction ---------------------------------------------------

    def _add_edge(self, caller: str, callee: str, line: int, kind: str) -> None:
        self.edges.append(
            CallEdge(caller=caller, callee=callee, line=line, kind=kind)
        )
        self.successors.setdefault(caller, set()).add(callee)
        self.kinded_successors.setdefault(caller, []).append((callee, kind))
        if kind == "pool":
            self.worker_entries.add(callee)
        elif kind in ("thread", "executor"):
            self.thread_entries.add(callee)

    def _enclosing_class(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        module = self.table.modules.get(fn.module)
        if module is None:
            return None
        return module.classes.get(fn.class_name)

    def _resolve_callable_ref(
        self, fn: FunctionInfo, node: ast.expr
    ) -> Optional[FunctionInfo]:
        """Resolve an expression used *as a callable value* (not called)."""
        dotted = dotted_name(node)
        target: Optional[FunctionInfo] = None
        if dotted is not None:
            if dotted.startswith("self.") or dotted.startswith("cls."):
                target = self._resolve_method(fn, dotted.split(".", 1)[1])
            else:
                target = self.table.resolve_function(fn.module, dotted)
        if target is None and self.resolver is not None:
            target = self.resolver(fn, node)
        return target

    def _resolve_method(
        self, fn: FunctionInfo, method: str
    ) -> Optional[FunctionInfo]:
        cls = self._enclosing_class(fn)
        if cls is None or "." in method:
            return None
        found = self.table.mro_methods(cls, method)
        return found[0] if found else None

    def _imports(self, fn: FunctionInfo) -> Dict[str, str]:
        module = self.table.modules.get(fn.module)
        return module.imports if module is not None else {}

    def _callable_arg_edge(
        self,
        fn: FunctionInfo,
        arg: Optional[ast.expr],
        line: int,
        kind: str,
        claimed: Set[int],
    ) -> None:
        """Edge for a callable/coroutine passed *as an argument* (the
        executor/thread/loop/task shapes).  ``functools.partial(f, ...)``
        unwraps to ``f``; a coroutine-producing call ``f(...)`` resolves
        through its own callee and is claimed so the generic pass does
        not add a second (wrong-kind) edge for it."""
        if arg is None:
            return
        if isinstance(arg, ast.Call):
            resolved = resolve_call(arg.func, self._imports(fn))
            if resolved in ("functools.partial", "partial"):
                claimed.add(id(arg))
                if arg.args:
                    self._callable_arg_edge(fn, arg.args[0], line, kind, claimed)
                return
            target = self._resolve_callable_ref(fn, arg.func)
            if target is not None:
                claimed.add(id(arg))
                self._add_edge(fn.qualname, target.qualname, line, kind)
            return
        target = self._resolve_callable_ref(fn, arg)
        if target is not None:
            self._add_edge(fn.qualname, target.qualname, line, kind)

    def _scan_function(self, fn: FunctionInfo) -> None:
        imports = self._imports(fn)
        claimed: Set[int] = set()
        awaited: Set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        # ast.walk is breadth-first, so an outer special-shape call is
        # always visited before the inner calls it claims
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            line = getattr(node, "lineno", fn.node.lineno)
            if id(node) in claimed:
                continue
            # pool submissions: every statically-resolvable argument
            # crosses into a worker process
            is_submit = is_pool_submit(node)
            func_name = dotted_name(node.func)
            is_pooled_map = func_name is not None and (
                func_name in POOLED_MAP_NAMES
                or func_name.rsplit(".", 1)[-1] in POOLED_MAP_NAMES
            )
            if is_submit or is_pooled_map:
                for arg in node.args:
                    self._callable_arg_edge(fn, arg, line, "pool", claimed)
                continue
            resolved = resolve_call(node.func, imports)
            # executor dispatch: loop.run_in_executor(pool, fn, *args)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "run_in_executor"
            ):
                if len(node.args) >= 2:
                    self._callable_arg_edge(
                        fn, node.args[1], line, "executor", claimed
                    )
                continue
            # plain threads: threading.Thread(target=fn) / Timer(s, fn)
            if resolved in THREAD_FACTORIES:
                target_arg: Optional[ast.expr] = None
                for keyword in node.keywords:
                    if keyword.arg in ("target", "function"):
                        target_arg = keyword.value
                if (
                    target_arg is None
                    and resolved.endswith("Timer")
                    and len(node.args) >= 2
                ):
                    target_arg = node.args[1]
                self._callable_arg_edge(fn, target_arg, line, "thread", claimed)
                continue
            # task spawns: the coroutine runs on the event loop
            if resolved in ("asyncio.create_task", "asyncio.ensure_future") or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in TASK_SPAWN_ATTRS
            ):
                if node.args:
                    self._callable_arg_edge(fn, node.args[0], line, "task", claimed)
                continue
            # loop scheduling: a context hop onto the loop's thread
            is_loop_method = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in LOOP_SCHEDULE_ATTRS
                and _loop_receiver(node.func)
            )
            if is_loop_method or resolved in LOOP_SCHEDULE_FUNCTIONS:
                arg_index = (
                    1
                    if isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("call_at", "call_later")
                    else 0
                )
                if len(node.args) > arg_index:
                    self._callable_arg_edge(
                        fn, node.args[arg_index], line, "loop", claimed
                    )
                continue
            # direct / method calls (``await``ed ones keep their own kind)
            kind = "await" if id(node) in awaited else None
            if func_name is not None and (
                func_name.startswith("self.") or func_name.startswith("cls.")
            ):
                method = self._resolve_method(fn, func_name.split(".", 1)[1])
                if method is None and self.resolver is not None:
                    method = self.resolver(fn, node.func)
                if method is not None:
                    self._add_edge(
                        fn.qualname, method.qualname, line, kind or "method"
                    )
                continue
            target: Optional[FunctionInfo] = None
            if func_name is not None:
                target = self.table.resolve_function(fn.module, func_name)
            if target is None and self.resolver is not None:
                target = self.resolver(fn, node.func)
                if target is not None:
                    self._add_edge(
                        fn.qualname, target.qualname, line, kind or "method"
                    )
                continue
            if target is not None:
                self._add_edge(
                    fn.qualname, target.qualname, line, kind or "direct"
                )

    # -- queries --------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Dict[str, str]:
        """Every qualname reachable from ``roots`` (inclusive), mapped to
        the root it was first reached from (BFS order, deterministic)."""
        origin: Dict[str, str] = {}
        queue: List[Tuple[str, str]] = [(root, root) for root in sorted(roots)]
        while queue:
            current, root = queue.pop(0)
            if current in origin:
                continue
            origin[current] = root
            for succ in sorted(self.successors.get(current, ())):
                if succ not in origin:
                    queue.append((succ, root))
        return origin

    def reachable_via(
        self,
        roots: Iterable[str],
        kinds: FrozenSet[str],
        enter: Optional[Callable[[str], bool]] = None,
    ) -> Dict[str, str]:
        """Kind-filtered reachability: like :meth:`reachable`, but only
        follows edges whose kind is in ``kinds``, and (when ``enter`` is
        given) only enters callees for which ``enter(qualname)`` holds --
        how the context model keeps a thread traversal from walking into
        coroutine bodies it cannot execute."""
        origin: Dict[str, str] = {}
        queue: List[Tuple[str, str]] = [
            (root, root)
            for root in sorted(roots)
            if enter is None or enter(root)
        ]
        while queue:
            current, root = queue.pop(0)
            if current in origin:
                continue
            origin[current] = root
            for callee, kind in sorted(self.kinded_successors.get(current, [])):
                if kind not in kinds or callee in origin:
                    continue
                if enter is not None and not enter(callee):
                    continue
                queue.append((callee, root))
        return origin

    def worker_reachable(self) -> Dict[str, str]:
        """Functions that may execute inside a pool worker process."""
        return self.reachable(self.worker_entries)
