"""Static call graph over the project symbol table.

Nodes are function qualnames from :class:`~repro.statcheck.semantic.
SymbolTable`; edges are added for the call shapes this codebase uses:

* **direct calls** -- ``helper(x)`` to a module-level function, in the
  same module or through an import alias;
* **method calls** -- ``self.method(x)`` / ``cls.method(x)`` resolved
  against the enclosing class and its project-resolvable bases;
* **pool submissions** -- ``executor.submit(fn, ...)`` and friends (see
  :data:`~repro.statcheck.astutil.SUBMIT_METHODS`), plus calls to the
  engine's :func:`repro.engine.scheduler.pooled_map`.  Any argument that
  statically resolves to a project function gets a call edge *and* is
  recorded as a **worker entry point**: it runs inside a pool worker
  process, which is what the RACE001 shared-state rule keys on.

Unresolvable targets (dynamic dispatch, callables stored in data
structures, ``self.runner(...)``) simply contribute no edge: the graph
under-approximates calls, so reachability-based rules fail open.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.statcheck.astutil import dotted_name, is_pool_submit
from repro.statcheck.semantic import (
    ClassInfo,
    FunctionInfo,
    SymbolTable,
)

#: Plain functions that forward their callable argument into pool
#: workers (the sweep engine's generic parallel map).
POOLED_MAP_NAMES = frozenset({"pooled_map"})


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    line: int
    kind: str  # "direct" | "method" | "pool"


class CallGraph:
    """Directed call graph with pool-worker entry points."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: List[CallEdge] = []
        self.successors: Dict[str, Set[str]] = {}
        #: qualnames of functions that execute inside pool workers
        self.worker_entries: Set[str] = set()

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for qualname in sorted(table.functions):
            graph._scan_function(table.functions[qualname])
        return graph

    # -- construction ---------------------------------------------------

    def _add_edge(self, caller: str, callee: str, line: int, kind: str) -> None:
        self.edges.append(
            CallEdge(caller=caller, callee=callee, line=line, kind=kind)
        )
        self.successors.setdefault(caller, set()).add(callee)

    def _enclosing_class(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        module = self.table.modules.get(fn.module)
        if module is None:
            return None
        return module.classes.get(fn.class_name)

    def _resolve_callable_ref(
        self, fn: FunctionInfo, node: ast.expr
    ) -> Optional[FunctionInfo]:
        """Resolve an expression used *as a callable value* (not called)."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        if dotted.startswith("self.") or dotted.startswith("cls."):
            return self._resolve_method(fn, dotted.split(".", 1)[1])
        return self.table.resolve_function(fn.module, dotted)

    def _resolve_method(
        self, fn: FunctionInfo, method: str
    ) -> Optional[FunctionInfo]:
        cls = self._enclosing_class(fn)
        if cls is None or "." in method:
            return None
        found = self.table.mro_methods(cls, method)
        return found[0] if found else None

    def _scan_function(self, fn: FunctionInfo) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            line = getattr(node, "lineno", fn.node.lineno)
            # pool submissions: every statically-resolvable argument
            # crosses into a worker process
            is_submit = is_pool_submit(node)
            func_name = dotted_name(node.func)
            is_pooled_map = func_name is not None and (
                func_name in POOLED_MAP_NAMES
                or func_name.rsplit(".", 1)[-1] in POOLED_MAP_NAMES
            )
            if is_submit or is_pooled_map:
                for arg in node.args:
                    target = self._resolve_callable_ref(fn, arg)
                    if target is not None:
                        self._add_edge(fn.qualname, target.qualname, line, "pool")
                        self.worker_entries.add(target.qualname)
                continue
            # direct / method calls
            if func_name is None:
                continue
            if func_name.startswith("self.") or func_name.startswith("cls."):
                method = self._resolve_method(fn, func_name.split(".", 1)[1])
                if method is not None:
                    self._add_edge(fn.qualname, method.qualname, line, "method")
                continue
            target = self.table.resolve_function(fn.module, func_name)
            if target is not None:
                self._add_edge(fn.qualname, target.qualname, line, "direct")

    # -- queries --------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Dict[str, str]:
        """Every qualname reachable from ``roots`` (inclusive), mapped to
        the root it was first reached from (BFS order, deterministic)."""
        origin: Dict[str, str] = {}
        queue: List[Tuple[str, str]] = [(root, root) for root in sorted(roots)]
        while queue:
            current, root = queue.pop(0)
            if current in origin:
                continue
            origin[current] = root
            for succ in sorted(self.successors.get(current, ())):
                if succ not in origin:
                    queue.append((succ, root))
        return origin

    def worker_reachable(self) -> Dict[str, str]:
        """Functions that may execute inside a pool worker process."""
        return self.reachable(self.worker_entries)
