"""Incremental analysis: per-module result cache with dependency invalidation.

A full statcheck run re-parses and re-analyzes ~100 files on every
invocation even though typically one or two changed.  This module makes
the common case cheap:

* each module's **per-file** rule results are cached in a JSON file
  keyed on the sha256 of the module's source *and* of every project
  module it imports -- editing ``repro.mcd.processor`` invalidates
  cached results for everything that imports it, nothing else;
* a **project entry** keyed on the shas of *all* modules (plus the rule
  signature) caches the complete report, so a fully-warm run parses
  nothing at all and just replays findings;
* cache misses are independent per file, so with ``jobs > 1`` they are
  analyzed in parallel via the sweep engine's
  :func:`repro.engine.scheduler.pooled_map` -- statcheck rides the same
  pool (and the same serial-fallback contract) as the sweeps it lints;
* cross-module rules (SIM001, RACE001, ...) always run over the full
  project when anything at all changed -- only the fully-warm fast path
  skips them, and it replays their cached findings.

The cache file is advisory: unreadable, stale-format, or
differently-configured (rule selection, flags) caches are ignored and
rewritten, never trusted.  Hit/miss statistics are surfaced in
``AnalysisReport.incremental`` for the CLI's ``--json`` output and the
CI warm-run gate.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.statcheck.engine import (
    PARSE_ERROR_RULE,
    SUPPRESSION_RULE,
    AnalysisReport,
    Analyzer,
    Project,
    Rule,
    SourceFile,
    _collect_paths,
)
from repro.statcheck.findings import Finding, Severity
from repro.statcheck.semantic import _dep_modules

_FORMAT_VERSION = 1

#: (module, kept finding dicts, suppressed count) -- one per-file result
_FileResult = Tuple[str, List[Dict[str, Any]], int]


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_tool_sig_cache: Optional[str] = None


def _tool_sig() -> str:
    """sha256 over the statcheck package sources themselves.

    Rule IDs alone under-key the cache: editing a rule's implementation
    (or the shared walkers it builds on) without renaming it must not
    replay findings computed by the old code.  Unreadable files hash as
    empty -- the signature only needs to *change* when sources change.
    """
    global _tool_sig_cache
    if _tool_sig_cache is None:
        digest = hashlib.sha256()
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for root, dirs, names in sorted(os.walk(package_dir)):
            dirs.sort()
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode())
                try:
                    with open(path, "rb") as handle:
                        digest.update(handle.read())
                except OSError:
                    pass
        _tool_sig_cache = digest.hexdigest()
    return _tool_sig_cache


def _is_per_file(rule: Rule) -> bool:
    return type(rule).check_file is not Rule.check_file


def _is_cross_module(rule: Rule) -> bool:
    return type(rule).check_project is not Rule.check_project


def _justification_findings(file: SourceFile) -> List[Finding]:
    findings = []
    for pragma in file.pragmas:
        if pragma.reason is not None:
            continue
        findings.append(
            Finding(
                rule=SUPPRESSION_RULE,
                severity=Severity.ERROR,
                path=file.path,
                line=pragma.line,
                col=0,
                message=(
                    f"suppression of {', '.join(pragma.rules)} carries no "
                    "justification; append '-- <reason>' to the pragma"
                ),
            )
        )
    return findings


def _check_one_file(
    file: SourceFile,
    rules: Sequence[Rule],
    require_justification: bool,
) -> _FileResult:
    """Per-file rule pass over one module: kept findings + suppressed count."""
    raw: List[Finding] = []
    if file.parse_error is not None:
        raw.append(
            Finding(
                rule=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=file.path,
                line=1,
                col=0,
                message=f"cannot parse file: {file.parse_error}",
            )
        )
    if file.tree is not None:
        for rule in rules:
            if _is_per_file(rule) and rule.applies_to(file):
                raw.extend(rule.check_file(file))
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if file.is_suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    if require_justification:
        kept.extend(_justification_findings(file))
    return file.module, [finding.to_dict() for finding in kept], suppressed


def _pool_worker(args: Tuple[str, Optional[str], Tuple[str, ...], bool]) -> _FileResult:
    """Picklable pool entry: re-load the file and run per-file rules.

    Receives primitives only (path, module override, rule ids, flag);
    rules are re-instantiated from the registry inside the worker.
    """
    path, module, rule_ids, require_justification = args
    from repro.statcheck.registry import all_rules

    wanted = set(rule_ids)
    rules = [cls() for cls in all_rules() if cls.id in wanted]
    file = SourceFile.from_path(path, module=module)
    return _check_one_file(file, rules, require_justification)


class IncrementalAnalyzer:
    """Wraps an :class:`Analyzer` with the module cache described above."""

    def __init__(
        self,
        analyzer: Analyzer,
        cache_path: str,
        jobs: int = 1,
    ) -> None:
        self.analyzer = analyzer
        self.cache_path = cache_path
        self.jobs = max(1, jobs)

    # -- cache plumbing -------------------------------------------------

    def _rules_sig(self) -> str:
        parts = sorted(rule.id for rule in self.analyzer.rules)
        parts.append(f"require_justification={self.analyzer.require_justification}")
        parts.append(f"format={_FORMAT_VERSION}")
        parts.append(f"tool={_tool_sig()}")
        return _sha256("\n".join(parts))

    def _load_cache(self) -> Dict[str, Any]:
        try:
            with open(self.cache_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(data, dict)
            or data.get("version") != _FORMAT_VERSION
            or data.get("rules_sig") != self._rules_sig()
        ):
            return {}
        return data

    def _store_cache(
        self,
        shas: Dict[str, str],
        path_for: Dict[str, str],
        deps: Dict[str, Set[str]],
        per_file: Dict[str, Tuple[List[Dict[str, Any]], int]],
        report: AnalysisReport,
    ) -> None:
        modules: Dict[str, Any] = {}
        for module, sha in shas.items():
            findings, suppressed = per_file.get(module, ([], 0))
            modules[module] = {
                "sha": sha,
                "path": path_for[module],
                "deps": {
                    dep: shas[dep]
                    for dep in sorted(deps.get(module, set()))
                    if dep in shas
                },
                "findings": findings,
                "suppressed": suppressed,
            }
        payload = {
            "version": _FORMAT_VERSION,
            "rules_sig": self._rules_sig(),
            "modules": modules,
            "project": {
                # keyed by *path*, so a different tree that happens to
                # reuse module names and content cannot replay findings
                # carrying stale paths
                "shas": {path_for[m]: shas[m] for m in shas},
                "findings": [f.to_dict() for f in report.findings],
                "suppressed": report.suppressed,
                "files_scanned": report.files_scanned,
            },
        }
        tmp = f"{self.cache_path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.cache_path)
        except OSError:
            # cache is advisory; never fail an analysis over it
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- analysis -------------------------------------------------------

    def analyze_paths(self, paths: Sequence[str]) -> AnalysisReport:
        if self.analyzer.per_file_paths is not None:
            # --changed-only narrows per-file coverage; caching those
            # partial results would poison later full runs
            return self.analyzer.analyze_paths(paths)

        file_paths = _collect_paths(paths)
        sources: Dict[str, str] = {}
        path_for: Dict[str, str] = {}
        shas: Dict[str, str] = {}
        from repro.statcheck.engine import _module_for_path

        for path in file_paths:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            module = _module_for_path(path)
            sources[module] = source
            path_for[module] = path
            shas[module] = _sha256(source)

        cache = self._load_cache()

        # fully-warm fast path: nothing changed since the cached run
        path_shas = {path_for[m]: shas[m] for m in shas}
        project_entry = cache.get("project")
        if (
            isinstance(project_entry, dict)
            and project_entry.get("shas") == path_shas
        ):
            stats = {
                "enabled": True,
                "project_hit": True,
                "hits": len(shas),
                "misses": 0,
                "hit_ratio": 1.0 if shas else 0.0,
                "workers": self.jobs,
            }
            return AnalysisReport(
                findings=[
                    Finding.from_dict(d) for d in project_entry["findings"]
                ],
                files_scanned=int(project_entry["files_scanned"]),
                rules=[rule.id for rule in self.analyzer.rules],
                suppressed=int(project_entry["suppressed"]),
                incremental=stats,
            )

        # parse everything (cross-module rules need the full project)
        files: List[SourceFile] = []
        deps: Dict[str, Set[str]] = {}
        for module in sorted(sources):
            file = SourceFile.from_source(
                sources[module], path=path_for[module], module=module
            )
            files.append(file)
            if file.tree is not None:
                deps[module] = _dep_modules(file.tree, module, set(shas))
        project = Project(files=files)
        by_module = {file.module: file for file in files}

        cached_modules = cache.get("modules", {})

        def _entry_valid(module: str) -> bool:
            entry = cached_modules.get(module)
            if not isinstance(entry, dict) or entry.get("sha") != shas[module]:
                return False
            if entry.get("path") != path_for[module]:
                return False
            recorded_deps = entry.get("deps", {})
            if not isinstance(recorded_deps, dict):
                return False
            for dep, dep_sha in recorded_deps.items():
                if shas.get(dep) != dep_sha:
                    return False
            # a dep edge added since the cache was written implies the
            # source changed, which the sha check already catches
            return True

        per_file: Dict[str, Tuple[List[Dict[str, Any]], int]] = {}
        misses: List[str] = []
        hits = 0
        for module in sorted(shas):
            if _entry_valid(module):
                entry = cached_modules[module]
                per_file[module] = (
                    list(entry.get("findings", [])),
                    int(entry.get("suppressed", 0)),
                )
                hits += 1
            else:
                misses.append(module)

        # analyze the misses, in parallel when asked to
        if len(misses) > 1 and self.jobs > 1:
            from repro.engine.scheduler import pooled_map

            rule_ids = tuple(sorted(rule.id for rule in self.analyzer.rules))
            work = [
                (
                    path_for[module],
                    module,
                    rule_ids,
                    self.analyzer.require_justification,
                )
                for module in misses
            ]
            for module, findings, suppressed in pooled_map(
                _pool_worker, work, workers=self.jobs
            ):
                per_file[module] = (findings, suppressed)
        else:
            for module in misses:
                _, findings, suppressed = _check_one_file(
                    by_module[module],
                    self.analyzer.rules,
                    self.analyzer.require_justification,
                )
                per_file[module] = (findings, suppressed)

        # cross-module rules always see the whole (re-parsed) project
        cross_raw: List[Finding] = []
        for rule in self.analyzer.rules:
            if _is_cross_module(rule):
                cross_raw.extend(rule.check_project(project))
        cross_kept: List[Finding] = []
        suppressed_total = 0
        by_path = {file.path: file for file in files}
        for finding in cross_raw:
            file = by_path.get(finding.path)
            if file is not None and file.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed_total += 1
            else:
                cross_kept.append(finding)

        findings: List[Finding] = list(cross_kept)
        for module in sorted(per_file):
            dicts, suppressed = per_file[module]
            findings.extend(Finding.from_dict(d) for d in dicts)
            suppressed_total += suppressed
        findings.sort(key=lambda finding: finding.sort_key)

        total = hits + len(misses)
        stats = {
            "enabled": True,
            "project_hit": False,
            "hits": hits,
            "misses": len(misses),
            "hit_ratio": (hits / total) if total else 0.0,
            "workers": self.jobs,
        }
        report = AnalysisReport(
            findings=findings,
            files_scanned=len(files),
            rules=[rule.id for rule in self.analyzer.rules],
            suppressed=suppressed_total,
            incremental=stats,
        )
        self._store_cache(shas, path_for, deps, per_file, report)
        return report
