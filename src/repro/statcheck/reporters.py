"""Render an :class:`~repro.statcheck.engine.AnalysisReport` for humans,
scripts (JSON), and code-scanning UIs (SARIF 2.1.0)."""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List

from repro.statcheck.engine import AnalysisReport
from repro.statcheck.findings import Severity
from repro.statcheck.registry import all_rules

TOOL_NAME = "statcheck"

_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_text(report: AnalysisReport) -> str:
    lines = [finding.format_text() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"{TOOL_NAME}: {len(report.findings)} {noun} in "
        f"{report.files_scanned} file(s) "
        f"({len(report.rules)} rules, {report.suppressed} suppressed)"
    )
    if report.incremental is not None:
        summary += (
            f" [cache: {report.incremental.get('hits', 0)} hit(s), "
            f"{report.incremental.get('misses', 0)} miss(es)]"
        )
    if report.baseline is not None:
        summary += (
            f" [baseline: {report.baseline.get('new', 0)} new, "
            f"{report.baseline.get('grandfathered', 0)} grandfathered, "
            f"{report.baseline.get('stale_entries', 0)} stale]"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "files_scanned": report.files_scanned,
        "rules": report.rules,
        "suppressed": report.suppressed,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if report.incremental is not None:
        payload["incremental"] = report.incremental
    if report.baseline is not None:
        payload["baseline"] = report.baseline
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: AnalysisReport) -> str:
    descriptors: List[Dict[str, Any]] = [
        {
            "id": cls.id,
            "shortDescription": {"text": cls.description},
            "defaultConfiguration": {"level": _SARIF_LEVEL[cls.severity]},
        }
        for cls in all_rules()
        if cls.id in set(report.rules)
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _SARIF_LEVEL[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {"name": TOOL_NAME, "rules": descriptors}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


RENDERERS: Dict[str, Callable[[AnalysisReport], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
