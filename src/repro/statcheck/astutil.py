"""Shared AST helpers used by the statcheck rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

#: AST nodes that open a new function scope.
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
SCOPE_NODES = FUNCTION_NODES + (ast.Lambda,)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``; None otherwise."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the fully-qualified thing they are bound to.

    ``import numpy as np`` yields ``np -> numpy``; ``from time import
    perf_counter as pc`` yields ``pc -> time.perf_counter``.  Relative and
    star imports are ignored (nothing in this codebase uses them, and the
    rules fail open: an unresolvable name is simply not matched).
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def resolve_call(func: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of a call target, through the imports.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; a bare builtin like ``set`` resolves to
    ``"set"``.  Returns ``None`` for dynamic targets (subscripts, calls).
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = imports.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function (or module) body without descending into nested
    function scopes -- for rules whose invariants are per-scope."""
    todo = list(ast.iter_child_nodes(scope))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, SCOPE_NODES):
            todo.extend(ast.iter_child_nodes(node))


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module and every (async) function definition in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def location(node: ast.AST) -> Tuple[int, int]:
    """(line, col) of a node, tolerating synthetic nodes without one."""
    return (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))


#: Executor/pool methods whose first argument is the remote callable.
#: Shared by the POOL001 rule and the call graph's worker-entry detection.
SUBMIT_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "map",
        "map_async",
        "starmap",
        "starmap_async",
        "submit",
    }
)

#: Receiver-name fragments that identify a worker pool.  Matching on the
#: receiver (``executor.submit``, ``self._pool.map``) rather than the
#: type keeps the detection purely syntactic; ``list.map``-style false
#: positives are impossible because ``map`` is never a method of a
#: non-pool object in this codebase.
POOL_HINTS = ("pool", "executor")


def is_pool_receiver(func: ast.Attribute) -> bool:
    """Whether an attribute call's receiver looks like a process pool."""
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    last = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in last for hint in POOL_HINTS)


def is_pool_submit(node: ast.Call) -> bool:
    """Whether a call hands its first argument to a pool worker process."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in SUBMIT_METHODS
        and is_pool_receiver(func)
    )
