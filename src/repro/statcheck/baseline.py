"""Ratchet baseline: grandfather existing findings, fail only on new ones.

Turning a new rule on over a living codebase usually means a pile of
pre-existing findings nobody can fix in the same change.  The baseline
mode makes the gate a *ratchet* instead of a wall: findings recorded in
``statcheck-baseline.json`` are reported but do not fail the run, any
finding **not** in the baseline does, and entries that no longer occur
are counted as *stale* so the file can be shrunk over time (it is never
grown implicitly -- regenerating it is an explicit ``--write-baseline``).

Matching is by ``(rule, path, message)`` **multiset**: line numbers are
deliberately excluded so that unrelated edits shifting a grandfathered
finding up or down do not break the gate, while a *second* occurrence of
the same finding is new and fails.  Messages include enough context
(symbol names, units) to keep this fingerprint tight.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.statcheck.findings import Finding

_FORMAT_VERSION = 1

#: the grandfathering fingerprint -- line numbers intentionally excluded
Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.rule, finding.path.replace("\\", "/"), finding.message)


@dataclass
class BaselineResult:
    """Outcome of screening one report against a baseline."""

    #: findings not covered by the baseline -- these fail the run
    new: List[Finding] = field(default_factory=list)
    #: findings matched (and consumed) by baseline entries
    grandfathered: List[Finding] = field(default_factory=list)
    #: baseline entries no occurrence matched -- candidates for removal
    stale: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "new": len(self.new),
            "grandfathered": len(self.grandfathered),
            "stale_entries": self.stale,
        }


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Dict[Fingerprint, int]) -> None:
        self.counts = counts

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Dict[Fingerprint, int] = {}
        for finding in findings:
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path}: not a statcheck baseline file")
        counts: Dict[Fingerprint, int] = {}
        for entry in data["entries"]:
            key = (
                str(entry["rule"]),
                str(entry["path"]),
                str(entry["message"]),
            )
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: str) -> None:
        entries = [
            {"rule": rule, "path": file_path, "message": message, "count": count}
            for (rule, file_path, message), count in sorted(self.counts.items())
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def screen(self, findings: List[Finding]) -> BaselineResult:
        """Split ``findings`` into new vs grandfathered, consuming entries."""
        remaining = dict(self.counts)
        result = BaselineResult()
        for finding in findings:
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.grandfathered.append(finding)
            else:
                result.new.append(finding)
        result.stale = sum(count for count in remaining.values() if count > 0)
        return result
