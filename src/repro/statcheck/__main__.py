"""``python -m repro.statcheck`` entry point."""

import sys

from repro.statcheck.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
