"""Integer and floating-point execution domains.

Each execution domain owns its issue/interface queue, a set of functional
units, and a clock.  At every domain clock edge it issues up to
``issue_width`` visible, operand-ready entries (scanned in program order, so
issue is out of order with respect to stalled elders) onto free functional
units.  ALUs and FP adders/multipliers are pipelined (occupied for one cycle);
dividers and sqrt are not.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.mcd.clocks import DomainClock
from repro.mcd.domains import FU_LATENCY_CYCLES, DomainId, MachineConfig
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.workloads.instructions import InstructionKind as K

#: kinds whose functional unit accepts a new operation every cycle
_PIPELINED = frozenset({K.INT_ALU, K.BRANCH, K.FP_ADD, K.FP_MUL, K.INT_MUL})


class FunctionalUnitPool:
    """A pool of identical functional units, tracked by busy-until times."""

    def __init__(self, name: str, count: int) -> None:
        if count <= 0:
            raise ValueError("need at least one functional unit")
        self.name = name
        self._busy_until: List[float] = [0.0] * count

    def acquire(self, now_ns: float, busy_ns: float) -> bool:
        """Claim a free unit until ``now + busy_ns``; False if none free."""
        for i, until in enumerate(self._busy_until):
            if until <= now_ns:
                self._busy_until[i] = now_ns + busy_ns
                return True
        return False

    def any_busy(self, now_ns: float) -> bool:
        return any(until > now_ns for until in self._busy_until)

    @property
    def size(self) -> int:
        return len(self._busy_until)


def next_ready_hint(queue: IssueQueue, rob: ReorderBuffer, now_ns: float) -> Optional[float]:
    """Earliest future time any queued entry could become issuable.

    Used by the simulator to fast-forward a stalled (but non-empty) domain
    instead of ticking it through a long wait.  Returns ``None`` when the
    answer is unknowable -- an entry is ready right now (a structural stall),
    or a producer has not issued yet so its completion time is unknown --
    in which case the domain must keep ticking cycle by cycle.
    """
    best = math.inf
    for entry in queue:
        if entry.visible_ns > now_ns:
            best = min(best, entry.visible_ns)
            continue
        ready = entry.visible_ns
        unknown = False
        for src in (entry.instruction.src1, entry.instruction.src2):
            if src is None:
                continue
            done = rob.completion_time(src)
            if done is None:
                unknown = True
                break
            ready = max(ready, done)
        if unknown:
            return None
        if ready <= now_ns:
            return None  # issuable now but was not issued: FU/port conflict
        best = min(best, ready)
    return best if math.isfinite(best) else None


class ExecutionDomain:
    """An INT or FP execution domain."""

    def __init__(
        self,
        domain: DomainId,
        clock: DomainClock,
        queue: IssueQueue,
        rob: ReorderBuffer,
        config: MachineConfig,
    ) -> None:
        if domain not in (DomainId.INT, DomainId.FP):
            raise ValueError("ExecutionDomain handles INT and FP only")
        self.domain = domain
        self.clock = clock
        self.queue = queue
        self.rob = rob
        self.issue_width = config.issue_width(domain)
        if domain is DomainId.INT:
            self._alu = FunctionalUnitPool("int-alu", config.int_alus)
            self._muldiv = FunctionalUnitPool("int-muldiv", config.int_mult_div)
        else:
            self._alu = FunctionalUnitPool("fp-alu", config.fp_alus)
            self._muldiv = FunctionalUnitPool("fp-muldiv", config.fp_mult_div)
        self.issued = 0

    # ------------------------------------------------------------------

    def _pool_for(self, kind: K) -> FunctionalUnitPool:
        if kind in (K.INT_MUL, K.INT_DIV, K.FP_MUL, K.FP_DIV, K.FP_SQRT):
            return self._muldiv
        return self._alu

    def cycle(self, now_ns: float) -> int:
        """Run one domain cycle; return the number of operations issued."""
        period = self.clock.period_ns
        issued = 0
        issued_entries = None
        # Hot path: inline visibility and operand-readiness checks over the
        # live entry list; removals are deferred past the scan.
        completion_get = self.rob._completion_ns.get
        for entry in self.queue._entries:
            if issued >= self.issue_width:
                break
            if entry.visible_ns > now_ns:
                continue
            inst = entry.instruction
            src1 = inst.src1
            if src1 is not None:
                done = completion_get(src1)
                if done is None or done > now_ns:
                    continue
            src2 = inst.src2
            if src2 is not None:
                done = completion_get(src2)
                if done is None or done > now_ns:
                    continue
            pool = self._pool_for(inst.kind)
            latency_cycles = FU_LATENCY_CYCLES[inst.kind]
            busy_cycles = 1 if inst.kind in _PIPELINED else latency_cycles
            if not pool.acquire(now_ns, busy_cycles * period):
                continue
            self.rob.mark_done(inst.index, now_ns + latency_cycles * period)
            if issued_entries is None:
                issued_entries = [entry]
            else:
                issued_entries.append(entry)
            issued += 1
        if issued_entries is not None:
            for entry in issued_entries:
                self.queue.remove(entry)
        self.issued += issued
        return issued

    def is_idle(self, now_ns: float) -> bool:
        """True when the domain could be fully clock-gated at ``now_ns``."""
        return (
            self.queue.is_empty
            and not self._alu.any_busy(now_ns)
            and not self._muldiv.any_busy(now_ns)
        )

    def stall_hint(self, now_ns: float) -> Optional[float]:
        """Earliest time a stalled (non-empty) domain could issue; see
        :func:`next_ready_hint`.  (Entries blocked only by a busy functional
        unit report "unknown", keeping the domain ticking.)"""
        return next_ready_hint(self.queue, self.rob, now_ns)
