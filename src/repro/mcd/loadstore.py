"""Load/store execution domain.

The LS domain owns the load/store queue, the L1 data cache and the unified
L2 (paper Figure 1).  Cache access times scale with the LS clock; main-memory
time is frequency-independent -- the two-part execution-time split that
underlies the paper's mu-f model.  Stores complete after address generation
plus the L1 write (a write buffer absorbs miss latency); loads pay the full
miss path.
"""

from __future__ import annotations

from typing import Optional

from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import DomainId, MachineConfig
from repro.mcd.execcore import FunctionalUnitPool, next_ready_hint
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.mcd.storebuffer import StoreBuffer
from repro.workloads.instructions import InstructionKind as K


class LoadStoreDomain:
    """The LS clock domain: LSQ issue + data-side memory hierarchy."""

    def __init__(
        self,
        clock: DomainClock,
        queue: IssueQueue,
        rob: ReorderBuffer,
        hierarchy: MemoryHierarchy,
        config: MachineConfig,
    ) -> None:
        self.domain = DomainId.LS
        self.clock = clock
        self.queue = queue
        self.rob = rob
        self.hierarchy = hierarchy
        self.issue_width = config.issue_width(DomainId.LS)
        self._ports = FunctionalUnitPool("dcache-ports", config.ls_issue_width)
        self._l1_write_cycles = config.l1_hit_cycles
        self.store_buffer = StoreBuffer(config.store_buffer_size)
        self.issued = 0
        self.loads = 0
        self.stores = 0

    # ------------------------------------------------------------------

    def cycle(self, now_ns: float) -> int:
        """Run one LS domain cycle; return the number of memory ops issued."""
        period = self.clock.period_ns
        issued = 0
        issued_entries = None
        completion_get = self.rob._completion_ns.get
        for entry in self.queue._entries:
            if issued >= self.issue_width:
                break
            if entry.visible_ns > now_ns:
                continue
            inst = entry.instruction
            src1 = inst.src1
            if src1 is not None:
                done = completion_get(src1)
                if done is None or done > now_ns:
                    continue
            src2 = inst.src2
            if src2 is not None:
                done = completion_get(src2)
                if done is None or done > now_ns:
                    continue
            if inst.kind is K.STORE and not self.store_buffer.can_accept(now_ns):
                self.store_buffer.record_full_stall()
                continue  # store buffer full: this store waits, loads may pass
            if not self._ports.acquire(now_ns, period):
                break  # both cache ports taken this cycle
            latency_ns, drain_ns = self._access_latency(inst, period)
            if drain_ns is not None:
                self.store_buffer.push(now_ns, now_ns + drain_ns)
            self.rob.mark_done(inst.index, now_ns + latency_ns)
            if issued_entries is None:
                issued_entries = [entry]
            else:
                issued_entries.append(entry)
            issued += 1
        if issued_entries is not None:
            for entry in issued_entries:
                self.queue.remove(entry)
        self.issued += issued
        return issued

    def _access_latency(self, inst, period_ns: float) -> "tuple[float, Optional[float]]":
        """(architectural completion latency, background drain latency).

        The drain latency is ``None`` for loads; for stores it is the full
        miss-path time the store buffer carries in the background.
        """
        agu_ns = period_ns  # one cycle of address generation
        result = self.hierarchy.access_data(inst.addr)
        cycles, fixed_ns = self.hierarchy.latency_split(result)
        full_path_ns = agu_ns + cycles * period_ns + fixed_ns
        if inst.kind is K.STORE:
            self.stores += 1
            # the store completes architecturally after the L1 write; the
            # buffer drains the (possibly missing) memory write behind it
            complete_ns = agu_ns + self._l1_write_cycles * period_ns
            return complete_ns, full_path_ns
        self.loads += 1
        return full_path_ns, None

    def is_idle(self, now_ns: float) -> bool:
        """True when the domain could be fully clock-gated at ``now_ns``."""
        return self.queue.is_empty and not self._ports.any_busy(now_ns)

    def stall_hint(self, now_ns: float) -> Optional[float]:
        """Earliest time a stalled (non-empty) LS domain could issue."""
        return next_ready_hint(self.queue, self.rob, now_ns)
