"""Set-associative caches and the memory hierarchy.

Matches the paper's Table 1: 64 KB 2-way L1 instruction and data caches, a
1 MB direct-mapped unified L2 in the load/store domain, and an 80 ns main
memory.  L1/L2 access times are counted in *domain cycles* by the pipeline
(their latency scales with the LS-domain frequency); main-memory time is
frequency-independent -- exactly the split that motivates the paper's mu-f
service-rate model (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class Cache:
    """A set-associative cache with LRU replacement.

    Only tags are modelled (no data), which is all that hit/miss behaviour
    needs.  ``assoc=1`` gives a direct-mapped cache.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int, line_size: int) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("size, associativity and line size must be positive")
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError("size must be a multiple of assoc * line_size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size_bytes // (assoc * line_size)
        # each set is an LRU-ordered list of tags (most recent last)
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _index_tag(self, addr: int) -> "tuple[int, int]":
        line = addr // self.line_size
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int) -> bool:
        """Access ``addr``; return True on hit.  Misses allocate the line."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or counters."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access: which levels hit."""

    l1_hit: bool
    l2_hit: bool  # meaningful only when not l1_hit

    @property
    def went_to_memory(self) -> bool:
        return not self.l1_hit and not self.l2_hit


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory."""

    def __init__(
        self,
        l1i: Cache,
        l1d: Cache,
        l2: Cache,
        l1_hit_cycles: int,
        l2_hit_cycles: int,
        memory_latency_ns: float,
    ) -> None:
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self.memory_latency_ns = memory_latency_ns
        self.memory_accesses = 0

    @classmethod
    def from_config(cls, config: "MachineConfig") -> "MemoryHierarchy":  # noqa: F821
        from repro.mcd.domains import MachineConfig  # local to avoid cycle

        assert isinstance(config, MachineConfig)
        return cls(
            l1i=Cache("L1I", config.l1i_size, config.l1i_assoc, config.line_size),
            l1d=Cache("L1D", config.l1d_size, config.l1d_assoc, config.line_size),
            l2=Cache("L2", config.l2_size, config.l2_assoc, config.line_size),
            l1_hit_cycles=config.l1_hit_cycles,
            l2_hit_cycles=config.l2_hit_cycles,
            memory_latency_ns=config.memory_latency_ns,
        )

    # ------------------------------------------------------------------

    def access_data(self, addr: int) -> AccessResult:
        """Access the data side (loads and stores; write-allocate)."""
        return self._access(self.l1d, addr)

    def access_inst(self, pc: int) -> AccessResult:
        """Access the instruction side."""
        return self._access(self.l1i, pc)

    def _access(self, l1: Cache, addr: int) -> AccessResult:
        if l1.access(addr):
            return AccessResult(l1_hit=True, l2_hit=True)
        l2_hit = self.l2.access(addr)
        if not l2_hit:
            self.memory_accesses += 1
        return AccessResult(l1_hit=False, l2_hit=l2_hit)

    # ------------------------------------------------------------------

    def latency_split(self, result: AccessResult) -> "tuple[int, float]":
        """Split an access latency into (domain cycles, fixed nanoseconds).

        The cycle part scales with the accessing domain's frequency; the ns
        part (main memory) does not.
        """
        cycles = self.l1_hit_cycles
        fixed_ns = 0.0
        if not result.l1_hit:
            cycles += self.l2_hit_cycles
            if not result.l2_hit:
                fixed_ns += self.memory_latency_ns
        return cycles, fixed_ns
