"""Bounded issue/interface queues.

In the MCD implementation the paper builds on, the synchronization interface
queue between two domains is merged with the existing issue queue (paper
Section 2).  :class:`IssueQueue` models that combined structure: the sender
(front end) writes entries; each entry becomes *visible* to the receiver only
after the synchronization interface delay; the receiver issues visible, ready
entries out of order.  Occupancy -- what the DVFS controller samples -- counts
every written entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.workloads.instructions import Instruction


@dataclass
class QueueEntry:
    """One queue slot: the instruction plus interface timing."""

    instruction: Instruction
    #: time at which the receiver domain may first observe the entry
    visible_ns: float
    #: time the sender wrote the entry (for occupancy/latency stats)
    enqueued_ns: float


class QueueFullError(RuntimeError):
    """Raised when pushing to a full queue (callers normally check first)."""


class IssueQueue:
    """A finite combined issue/interface queue."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._entries: List[QueueEntry] = []
        #: optional callback fired when a removal frees a slot in a
        #: previously full queue (the simulator uses it to wake a dispatch
        #: stage sleeping on queue-full backpressure)
        self.on_slot_freed = None

    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(self._entries)

    # ------------------------------------------------------------------

    def push(self, instruction: Instruction, visible_ns: float, now_ns: float) -> QueueEntry:
        """Write an entry from the sender side.

        Raises :class:`QueueFullError` when at capacity -- the dispatch stage
        is expected to test :attr:`is_full` and stall instead.
        """
        if self.is_full:
            raise QueueFullError(f"queue {self.name} is full ({self.capacity})")
        entry = QueueEntry(instruction=instruction, visible_ns=visible_ns, enqueued_ns=now_ns)
        self._entries.append(entry)
        return entry

    def visible_entries(self, now_ns: float) -> List[QueueEntry]:
        """Entries the receiver may consider at time ``now_ns``, program order."""
        return [e for e in self._entries if e.visible_ns <= now_ns]

    def earliest_visibility(self) -> Optional[float]:
        """Earliest time any queued entry becomes visible, or ``None`` if empty."""
        if not self._entries:
            return None
        return min(e.visible_ns for e in self._entries)

    def remove(self, entry: QueueEntry) -> None:
        """Issue (remove) a specific entry."""
        was_full = self.is_full
        self._entries.remove(entry)
        if was_full and self.on_slot_freed is not None:
            self.on_slot_freed(self)

    def clear(self) -> None:
        self._entries.clear()
