"""Clock-domain identifiers and the machine configuration (paper Table 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.instructions import InstructionKind as K


class DomainId(enum.Enum):
    """The four clock domains of the MCD partition (paper Figure 1)."""

    FRONT_END = "front_end"
    INT = "int"
    FP = "fp"
    LS = "ls"


#: Domains whose frequency the DVFS controllers may change.  The front end is
#: pinned at maximum speed, as in the paper and its predecessors.
CONTROLLED_DOMAINS: Tuple[DomainId, ...] = (DomainId.INT, DomainId.FP, DomainId.LS)


def execution_domain(kind: K) -> DomainId:
    """Map an opcode class to the domain whose queue/FUs execute it."""
    if kind.is_fp:
        return DomainId.FP
    if kind.is_mem:
        return DomainId.LS
    return DomainId.INT


#: Functional-unit latencies in domain cycles.
FU_LATENCY_CYCLES: Dict[K, int] = {
    K.INT_ALU: 1,
    K.INT_MUL: 3,
    K.INT_DIV: 12,
    K.BRANCH: 1,
    K.FP_ADD: 2,
    K.FP_MUL: 4,
    K.FP_DIV: 12,
    K.FP_SQRT: 24,
    # LOAD/STORE latency = 1 (AGU) + cache hierarchy; see loadstore.py.
    K.LOAD: 1,
    K.STORE: 1,
}


@dataclass(frozen=True)
class MachineConfig:
    """All simulation parameters; defaults reproduce the paper's Table 1.

    Times are nanoseconds, frequencies GHz, voltages volts.  See DESIGN.md
    section 5 for the handful of values the OCR'd table leaves ambiguous and
    how they were resolved.
    """

    # --- DVFS envelope ------------------------------------------------
    f_min_ghz: float = 0.25
    f_max_ghz: float = 1.0
    v_min: float = 0.65
    v_max: float = 1.20
    #: frequency slew: 73.3 ns per MHz of change.
    slew_ns_per_mhz: float = 73.3
    #: one controller step: 750 MHz range / 320 steps.
    step_ghz: float = (1.0 - 0.25) / 320.0
    #: DVFS implementation style (paper Section 3): "xscale" executes
    #: through transitions with fine-grained steps; "transmeta" pauses the
    #: domain during each (coarse) transition plus a PLL-relock idle time.
    dvfs_style: str = "xscale"
    #: extra per-transition idle time (Transmeta-style PLL relock); the
    #: domain does no work while a transition + relock is in progress.
    relock_idle_ns: float = 0.0

    # --- sampling / clocking -------------------------------------------
    sample_period_ns: float = 4.0  # 250 MHz signal sampling
    jitter_sigma_ns: float = 0.005  # +-10 ps window ~ 2 sigma
    sync_window_ns: float = 0.3

    # --- pipeline widths ------------------------------------------------
    fetch_width: int = 4
    dispatch_width: int = 4
    retire_width: int = 8
    int_issue_width: int = 4
    fp_issue_width: int = 2
    ls_issue_width: int = 2

    # --- structures -----------------------------------------------------
    int_queue_size: int = 20
    fp_queue_size: int = 16
    ls_queue_size: int = 16
    rob_size: int = 80
    store_buffer_size: int = 64

    # --- functional units -------------------------------------------------
    int_alus: int = 4
    int_mult_div: int = 1
    fp_alus: int = 2
    fp_mult_div: int = 1

    # --- memory hierarchy ---------------------------------------------------
    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l2_size: int = 1024 * 1024
    l2_assoc: int = 1  # direct-mapped
    line_size: int = 64
    l1_hit_cycles: int = 2
    l2_hit_cycles: int = 12
    memory_latency_ns: float = 80.0

    # --- branch handling ------------------------------------------------
    bimodal_size: int = 1024
    twolevel_l1_size: int = 1024
    twolevel_hist_bits: int = 10
    twolevel_l2_size: int = 1024
    meta_size: int = 4096
    btb_sets: int = 4096
    btb_ways: int = 2
    mispredict_penalty_cycles: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.f_min_ghz < self.f_max_ghz:
            raise ValueError("need 0 < f_min < f_max")
        if not 0 < self.v_min < self.v_max:
            raise ValueError("need 0 < v_min < v_max")
        if self.step_ghz <= 0:
            raise ValueError("step_ghz must be positive")
        if self.sample_period_ns <= 0:
            raise ValueError("sample_period_ns must be positive")
        if self.dvfs_style not in ("xscale", "transmeta"):
            raise ValueError("dvfs_style must be 'xscale' or 'transmeta'")
        if self.relock_idle_ns < 0:
            raise ValueError("relock_idle_ns must be non-negative")

    @property
    def stalls_during_transition(self) -> bool:
        """Transmeta-style implementations idle the domain while switching."""
        return self.dvfs_style == "transmeta"

    @property
    def step_switching_time_ns(self) -> float:
        """Physical time for one controller step, including any relock idle."""
        return self.step_ghz * 1e3 * self.slew_ns_per_mhz + self.relock_idle_ns

    # ------------------------------------------------------------------

    def voltage_for(self, freq_ghz: float) -> float:
        """Linear V(f) map across the DVFS envelope, clamped to the rails."""
        span = self.f_max_ghz - self.f_min_ghz
        alpha = (freq_ghz - self.f_min_ghz) / span
        alpha = min(1.0, max(0.0, alpha))
        return self.v_min + alpha * (self.v_max - self.v_min)

    def clamp_frequency(self, freq_ghz: float) -> float:
        return min(self.f_max_ghz, max(self.f_min_ghz, freq_ghz))

    def queue_capacity(self, domain: DomainId) -> int:
        capacities = {
            DomainId.INT: self.int_queue_size,
            DomainId.FP: self.fp_queue_size,
            DomainId.LS: self.ls_queue_size,
        }
        if domain not in capacities:
            raise ValueError(f"{domain} has no issue queue")
        return capacities[domain]

    def issue_width(self, domain: DomainId) -> int:
        widths = {
            DomainId.INT: self.int_issue_width,
            DomainId.FP: self.fp_issue_width,
            DomainId.LS: self.ls_issue_width,
        }
        if domain not in widths:
            raise ValueError(f"{domain} has no issue stage")
        return widths[domain]


def transmeta_machine_config(**overrides: object) -> MachineConfig:
    """A Transmeta-style DVFS machine (paper Section 3).

    Coarse 50 MHz steps (15 across the range instead of 320), and a 2 us
    PLL-relock halt per transition during which the domain does no work
    (the V/f ramp itself executes through at the old setting).  The paper's
    guidance: with this cost structure the triggering condition and
    adjustment step "should be chosen as relatively high or big" -- pair
    this machine with :func:`repro.core.config.transmeta_adaptive_config`.
    """
    params = {
        "dvfs_style": "transmeta",
        "step_ghz": 0.05,
        "relock_idle_ns": 2_000.0,
    }
    params.update(overrides)  # type: ignore[arg-type]
    return MachineConfig(**params)  # type: ignore[arg-type]
