"""Event-driven GALS simulation of the 4-domain MCD processor.

The simulator advances by popping the earliest pending event from a heap:

* a **domain edge** -- one rising clock edge of the front-end, INT, FP or LS
  domain; the domain executes one cycle of its pipeline logic;
* a **sample tick** -- the 250 MHz signal-sampling event: queue occupancies
  are latched, DVFS controllers observe them, regulators slew, and history is
  recorded.

Execution domains with nothing to do (empty queue, idle functional units)
are fully clock-gated: their edges are skipped until the front end dispatches
into their queue, at which point they wake at the entry's synchronization
arrival time.  Gated time is charged the gated-clock + leakage power rate by
the energy model.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from repro.dvfs.base import DvfsController
from repro.dvfs.regulator import VoltageRegulator
from repro.mcd.branch import CombinedPredictor
from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.execcore import ExecutionDomain
from repro.mcd.frontend import FrontEnd
from repro.mcd.loadstore import LoadStoreDomain
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.mcd.synchronization import SynchronizationInterface
from repro.obs.facade import Observability
from repro.power.metrics import RunMetrics
from repro.power.model import EnergyAccount, PowerModel
from repro.workloads.instructions import Instruction

# heap event tags (total order within a timestamp: samples after edges)
_EV_FRONT_END = 0
_EV_INT = 1
_EV_FP = 2
_EV_LS = 3
_EV_SAMPLE = 4
_EV_TIMER_INT = 5
_EV_TIMER_FP = 6
_EV_TIMER_LS = 7

_EDGE_TAG = {
    DomainId.FRONT_END: _EV_FRONT_END,
    DomainId.INT: _EV_INT,
    DomainId.FP: _EV_FP,
    DomainId.LS: _EV_LS,
}

_TIMER_TAG = {
    DomainId.INT: _EV_TIMER_INT,
    DomainId.FP: _EV_TIMER_FP,
    DomainId.LS: _EV_TIMER_LS,
}

_TIMER_DOMAIN = {tag: domain for domain, tag in _TIMER_TAG.items()}
_EDGE_DOMAIN = {_EV_INT: DomainId.INT, _EV_FP: DomainId.FP, _EV_LS: DomainId.LS}


@dataclass
class SimulationHistory:
    """Time series sampled at the controller's 4 ns sampling period."""

    time_ns: List[float] = field(default_factory=list)
    retired: List[int] = field(default_factory=list)
    occupancy: Dict[DomainId, List[int]] = field(
        default_factory=lambda: {d: [] for d in CONTROLLED_DOMAINS}
    )
    frequency_ghz: Dict[DomainId, List[float]] = field(
        default_factory=lambda: {d: [] for d in CONTROLLED_DOMAINS}
    )
    #: cumulative instructions issued per domain (for mu-f estimation)
    issued: Dict[DomainId, List[int]] = field(
        default_factory=lambda: {d: [] for d in CONTROLLED_DOMAINS}
    )


@dataclass(frozen=True)
class FrequencyStepEvent:
    """One controller command as applied to a regulator.

    Recorded unconditionally (independent of ``record_history`` and of the
    observability layer) so a harness can always reconstruct the step
    decisions of a run.  ``steps`` is 0 for absolute-target commands;
    ``applied`` is False when the command did not move the target (e.g. a
    step request already clamped at the frequency bound).
    """

    time_ns: float
    domain: DomainId
    steps: int
    target_ghz: float
    freq_ghz: float
    applied: bool


@dataclass
class SimulationResult:
    """Everything a harness needs from one run."""

    benchmark: str
    scheme: str
    time_ns: float
    instructions: int
    energy: EnergyAccount
    history: SimulationHistory
    transitions: Dict[DomainId, int]
    mean_frequency_ghz: Dict[DomainId, float]
    issued_by_domain: Dict[DomainId, int]
    branch_mispredict_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    sync_deferral_rate: float
    #: every controller command (always recorded; see FrequencyStepEvent)
    step_events: List[FrequencyStepEvent] = field(default_factory=list)
    #: repro.obs summary dict when the run was observed, else None
    probe_summary: Optional[Dict] = None

    @property
    def metrics(self) -> RunMetrics:
        """Paper-comparable metrics: chip energy (main memory is external)."""
        return RunMetrics(
            time_ns=self.time_ns,
            energy=self.energy.chip_total,
            instructions=self.instructions,
        )

    @property
    def ipns(self) -> float:
        """Retired instructions per nanosecond."""
        return self.instructions / self.time_ns if self.time_ns else 0.0


class MCDProcessor:
    """One simulation instance: a trace, a machine config, and controllers."""

    def __init__(
        self,
        trace: Sequence[Instruction],
        config: Optional[MachineConfig] = None,
        controllers: Optional[Dict[DomainId, DvfsController]] = None,
        power: Optional[PowerModel] = None,
        seed: int = 1234,
        record_history: bool = True,
        history_stride: int = 4,
        benchmark: str = "trace",
        scheme: str = "full-speed",
        initial_frequencies: Optional[Dict[DomainId, float]] = None,
        obs=None,
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one instruction")
        self.trace = trace
        self.config = config or MachineConfig()
        self.controllers = dict(controllers or {})
        for domain in self.controllers:
            if domain not in CONTROLLED_DOMAINS:
                raise ValueError(f"{domain} is not DVFS-controllable")
        self.power = power or PowerModel()
        self.benchmark = benchmark
        self.scheme = scheme
        self.record_history = record_history
        self.history_stride = max(1, history_stride)

        # Observability: None keeps every hot path on the no-op branch
        # (plain ``is not None`` checks, no calls into repro.obs).
        self.obs: Optional[Observability] = Observability.coerce(obs)
        self._probe = self.obs.bus if self.obs is not None else None
        self._profiler = self.obs.profiler if self.obs is not None else None
        self._obs_stride = self.obs.config.sample_stride if self.obs is not None else 1
        if self._probe is not None:
            for controller in self.controllers.values():
                controller.attach_probe(self._probe)
        #: every command applied to a regulator, kept regardless of obs
        self.step_events: List[FrequencyStepEvent] = []

        cfg = self.config
        rng = random.Random(seed)
        # Phase-offset domain clocks so they do not start in lockstep.
        self.clocks: Dict[DomainId, DomainClock] = {
            domain: DomainClock(
                freq_ghz=cfg.f_max_ghz,
                jitter_sigma_ns=cfg.jitter_sigma_ns,
                start_ns=offset,
                rng=random.Random(rng.randrange(2**31)),
            )
            for domain, offset in (
                (DomainId.FRONT_END, 0.0),
                (DomainId.INT, 0.13),
                (DomainId.FP, 0.29),
                (DomainId.LS, 0.41),
            )
        }
        self.queues: Dict[DomainId, IssueQueue] = {
            d: IssueQueue(d.value, cfg.queue_capacity(d)) for d in CONTROLLED_DOMAINS
        }
        self.rob = ReorderBuffer(cfg.rob_size)
        self.hierarchy = MemoryHierarchy.from_config(cfg)
        self.predictor = CombinedPredictor.from_config(cfg)
        self.sync = SynchronizationInterface(cfg.sync_window_ns)

        self.domains = {
            DomainId.INT: ExecutionDomain(
                DomainId.INT, self.clocks[DomainId.INT], self.queues[DomainId.INT],
                self.rob, cfg,
            ),
            DomainId.FP: ExecutionDomain(
                DomainId.FP, self.clocks[DomainId.FP], self.queues[DomainId.FP],
                self.rob, cfg,
            ),
            DomainId.LS: LoadStoreDomain(
                self.clocks[DomainId.LS], self.queues[DomainId.LS], self.rob,
                self.hierarchy, cfg,
            ),
        }
        self.frontend = FrontEnd(
            trace=trace,
            clock=self.clocks[DomainId.FRONT_END],
            rob=self.rob,
            queues=self.queues,
            domain_clocks=self.clocks,
            hierarchy=self.hierarchy,
            predictor=self.predictor,
            sync=self.sync,
            config=cfg,
        )
        self.frontend.on_dispatch = self._on_dispatch

        initial_frequencies = initial_frequencies or {}
        self.regulators: Dict[DomainId, VoltageRegulator] = {
            d: VoltageRegulator(
                d, cfg, initial_freq_ghz=initial_frequencies.get(d)
            )
            for d in CONTROLLED_DOMAINS
        }
        for domain, regulator in self.regulators.items():
            self.clocks[domain].set_frequency(regulator.current_freq_ghz)
        self._sleeping: Dict[DomainId, bool] = {d: False for d in CONTROLLED_DOMAINS}
        #: pending wake timer target per sleeping domain (None = pure sleep)
        self._timer_target: Dict[DomainId, Optional[float]] = {
            d: None for d in CONTROLLED_DOMAINS
        }
        #: wake generation counters; stale timer events are discarded
        self._wake_gen: Dict[DomainId, int] = {d: 0 for d in CONTROLLED_DOMAINS}
        self._freq_sum: Dict[DomainId, float] = {d: 0.0 for d in CONTROLLED_DOMAINS}
        self._freq_samples = 0

        self.energy = EnergyAccount()
        self.history = SimulationHistory()
        self._heap: List = []
        self._seq = 0
        self._now = 0.0
        #: front end sleeping on backpressure (full queue / full ROB with an
        #: un-issued head); woken by the callbacks below
        self._fe_sleeping = False
        for queue in self.queues.values():
            queue.on_slot_freed = self._on_slot_freed
        self.rob.on_head_done = self._on_head_done

        # --- hot-path acceleration structures (indexed by edge tag) -------
        # Per-cycle energy coefficients are cached here and refreshed at
        # every sampling event (voltage only changes there), so domain
        # cycles avoid enum-keyed dict lookups and power-model calls.
        exec_tags = (_EV_INT, _EV_FP, _EV_LS)
        self._tag_domain_obj = {
            _EV_INT: self.domains[DomainId.INT],
            _EV_FP: self.domains[DomainId.FP],
            _EV_LS: self.domains[DomainId.LS],
        }
        self._tag_clock = {tag: self.clocks[_EDGE_DOMAIN[tag]] for tag in exec_tags}
        self._energy_by_tag = [0.0, 0.0, 0.0, 0.0]
        self._active_base_e = [0.0, 0.0, 0.0, 0.0]
        self._active_slope_e = [0.0, 0.0, 0.0, 0.0]
        self._gated_e = [0.0, 0.0, 0.0, 0.0]
        self._inv_width = [0.0, 0.0, 0.0, 0.0]
        for domain, tag in _EDGE_TAG.items():
            params = self.power.params[domain]
            self._inv_width[tag] = 1.0 / params.width
        #: Transmeta-style: domains do no work until their transition (and
        #: PLL relock) completes
        self._pause_until = [0.0, 0.0, 0.0, 0.0]
        self._refresh_energy_coefficients()

    def _refresh_energy_coefficients(self) -> None:
        """Recompute cached per-cycle energies from current voltages."""
        for domain, tag in _EDGE_TAG.items():
            params = self.power.params[domain]
            voltage = (
                self.config.v_max
                if domain is DomainId.FRONT_END
                else self.regulators[domain].voltage
            )
            v2c = params.c_eff * voltage * voltage
            self._active_base_e[tag] = v2c * params.active_base
            self._active_slope_e[tag] = v2c * params.active_slope
            self._gated_e[tag] = v2c * params.gated_fraction

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def _push(self, time_ns: float, tag: int, payload: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_ns, tag, self._seq, payload))

    def _on_dispatch(self, domain: DomainId, entry) -> None:
        """Wake a sleeping execution domain when work arrives."""
        if not self._sleeping[domain]:
            return
        wake_ns = entry.visible_ns
        timer = self._timer_target[domain]
        if timer is not None:
            wake_ns = min(wake_ns, timer)
        self._wake(domain, wake_ns)

    def _wake(self, domain: DomainId, wake_ns: float) -> None:
        self._sleeping[domain] = False
        self._timer_target[domain] = None
        self._wake_gen[domain] += 1  # invalidate any pending timer event
        clock = self.clocks[domain]
        clock.skip_to(wake_ns)
        self._push(clock.next_edge_ns, _EDGE_TAG[domain])

    def _sleep(self, domain: DomainId, now_ns: float, timer_ns: Optional[float]) -> None:
        self._sleeping[domain] = True
        self._timer_target[domain] = timer_ns
        self._wake_gen[domain] += 1
        if timer_ns is not None:
            self._push(timer_ns, _TIMER_TAG[domain], self._wake_gen[domain])

    def _on_slot_freed(self, queue) -> None:
        """A full issue queue freed a slot: resume a backpressured front end."""
        self._wake_front_end(self._now)

    def _on_head_done(self, done_ns: float) -> None:
        """The ROB head got a completion time: resume a ROB-full front end."""
        self._wake_front_end(max(self._now, done_ns))

    def _wake_front_end(self, wake_ns: float) -> None:
        if not self._fe_sleeping:
            return
        self._fe_sleeping = False
        clock = self.clocks[DomainId.FRONT_END]
        clock.skip_to(wake_ns)
        self._push(clock.next_edge_ns, _EV_FRONT_END)

    def voltage(self, domain: DomainId) -> float:
        """Current supply voltage of a domain (front end is pinned at v_max)."""
        if domain is DomainId.FRONT_END:
            return self.config.v_max
        return self.regulators[domain].voltage

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, max_time_ns: Optional[float] = None) -> SimulationResult:
        """Simulate until the trace fully retires; return the result."""
        cfg = self.config
        if max_time_ns is None:
            # Generous cutoff: even at f_min and IPC 0.05 the run should end.
            max_time_ns = len(self.trace) * 25.0 / cfg.f_min_ghz + 1e5

        for domain, clock in self.clocks.items():
            self._push(clock.next_edge_ns, _EDGE_TAG[domain])
        self._push(cfg.sample_period_ns, _EV_SAMPLE)

        prof = self._profiler
        if prof is not None:
            prof.run_started()
        finish_ns = 0.0
        sample_index = 0
        while not self.frontend.finished:
            time_ns, tag, _, payload = heapq.heappop(self._heap)
            self._now = time_ns
            if time_ns > max_time_ns:
                raise RuntimeError(
                    f"simulation exceeded max_time_ns={max_time_ns:.0f} "
                    f"({self.rob.retired}/{len(self.trace)} retired)"
                )
            if tag == _EV_SAMPLE:
                sample_index += 1
                self._sample(time_ns, sample_index)
                self._push(time_ns + cfg.sample_period_ns, _EV_SAMPLE)
            elif tag == _EV_FRONT_END:
                finish_ns = self._front_end_cycle(time_ns)
            elif tag in _TIMER_DOMAIN:
                domain = _TIMER_DOMAIN[tag]
                if self._sleeping[domain] and payload == self._wake_gen[domain]:
                    self._wake(domain, time_ns)
            else:
                self._domain_cycle(time_ns, tag)
        if prof is not None:
            prof.run_finished(samples=self._freq_samples)
        return self._result(finish_ns)

    def _front_end_cycle(self, time_ns: float) -> float:
        clock = self.clocks[DomainId.FRONT_END]
        clock.advance()
        dispatched = self.frontend.cycle(time_ns)
        tag = _EV_FRONT_END
        if dispatched:
            utilization = dispatched * self._inv_width[tag]
            if utilization > 1.0:
                utilization = 1.0
            self._energy_by_tag[tag] += (
                self._active_base_e[tag] + self._active_slope_e[tag] * utilization
            )
        else:
            self._energy_by_tag[tag] += self._gated_e[tag]
        if not self.frontend.finished:
            if dispatched == 0:
                # Fast-forward through a stall whose end is known (mispredict
                # redirect, I-cache miss, ROB head in flight) ...
                hint = self.frontend.stall_hint(time_ns)
                if hint is not None:
                    if hint > clock.next_edge_ns:
                        clock.skip_to(hint)
                elif self.frontend.last_stall in ("queue_full", "rob_full"):
                    # ... or sleep on backpressure whose end is event-driven:
                    # a queue slot freeing or the ROB head completing.
                    self._fe_sleeping = True
                    return time_ns
            self._push(clock.next_edge_ns, _EV_FRONT_END)
        return time_ns

    def _domain_cycle(self, time_ns: float, tag: int) -> None:
        dom = self._tag_domain_obj[tag]
        clock = self._tag_clock[tag]
        clock.advance()
        if time_ns < self._pause_until[tag]:
            # Transmeta-style transition in progress: the domain idles
            # (gated) until the switch + PLL relock completes.
            self._energy_by_tag[tag] += self._gated_e[tag]
            self._sleep(_EDGE_DOMAIN[tag], time_ns, timer_ns=self._pause_until[tag])
            return
        ops = dom.cycle(time_ns)
        if ops:
            utilization = ops * self._inv_width[tag]
            if utilization > 1.0:
                utilization = 1.0
            self._energy_by_tag[tag] += (
                self._active_base_e[tag] + self._active_slope_e[tag] * utilization
            )
        else:
            self._energy_by_tag[tag] += self._gated_e[tag]
            if dom.is_idle(time_ns):
                # Fully gate the clock; the next dispatch wakes us.
                self._sleep(_EDGE_DOMAIN[tag], time_ns, timer_ns=None)
                return
            # Queue is non-empty but nothing could issue.  If the earliest
            # possible issue time is known and far off, gate until then.
            hint = dom.stall_hint(time_ns)
            if hint is not None and hint > time_ns + 2.0 * clock.period_ns:
                self._sleep(_EDGE_DOMAIN[tag], time_ns, timer_ns=hint)
                return
        self._push(clock.next_edge_ns, tag)

    def _sample(self, time_ns: float, sample_index: int) -> None:
        """One 4 ns sampling period, in four phases: latch, observe, slew,
        record.  The phases iterate the domains independently -- per-domain
        state never crosses domains within a period -- so the split is
        numerically identical to a single fused loop, and lets the profiler
        attribute wall time per phase.
        """
        cfg = self.config
        dt = cfg.sample_period_ns
        record = self.record_history and sample_index % self.history_stride == 0
        # The perf_counter reads below feed only the PhaseProfiler's wall-time
        # accounting; no simulated state ever depends on them, so the DET002
        # wall-clock rule is suppressed at each site rather than file-wide.
        prof = self._profiler
        if prof is not None:
            t0 = perf_counter()  # statcheck: disable=DET002 -- profiling only

        # -- latch: snapshot the queue occupancies for this period ---------
        occupancies = {d: self.queues[d].occupancy for d in CONTROLLED_DOMAINS}
        if record:
            self.history.time_ns.append(time_ns)
            self.history.retired.append(self.rob.retired)
        self._freq_samples += 1
        if prof is not None:
            t1 = perf_counter()  # statcheck: disable=DET002 -- profiling only
            prof.add("latch", t1 - t0)

        # -- observe: controllers see the latched occupancy and the
        #    pre-slew physical frequency, and may command a change ---------
        for domain in CONTROLLED_DOMAINS:
            controller = self.controllers.get(domain)
            if controller is None:
                continue
            regulator = self.regulators[domain]
            command = controller.observe(
                time_ns, occupancies[domain], regulator.current_freq_ghz
            )
            if command is not None:
                self._apply_command(time_ns, domain, regulator, command)
        if prof is not None:
            t2 = perf_counter()  # statcheck: disable=DET002 -- profiling only
            prof.add("observe", t2 - t1)

        # -- slew: regulators ramp, clocks retune, background energy -------
        for domain in CONTROLLED_DOMAINS:
            regulator = self.regulators[domain]
            regulator.advance(dt)
            self.clocks[domain].set_frequency(regulator.current_freq_ghz)
            self._freq_sum[domain] += regulator.current_freq_ghz

            # Background energy: leakage always; gated-clock rate while asleep.
            self.energy.add(
                domain,
                self.power.background(
                    domain,
                    regulator.voltage,
                    regulator.current_freq_ghz,
                    dt,
                    sleeping=self._sleeping[domain],
                ),
            )
        # Front-end leakage.
        self.energy.add(
            DomainId.FRONT_END,
            self.power.background(
                DomainId.FRONT_END, cfg.v_max, cfg.f_max_ghz, dt, sleeping=False
            ),
        )
        # Voltages may have moved: refresh the cached per-cycle energies.
        self._refresh_energy_coefficients()
        if prof is not None:
            t3 = perf_counter()  # statcheck: disable=DET002 -- profiling only
            prof.add("slew", t3 - t2)

        # -- record: history series and per-sample metric events -----------
        if record:
            for domain in CONTROLLED_DOMAINS:
                self.history.occupancy[domain].append(occupancies[domain])
                self.history.frequency_ghz[domain].append(
                    self.regulators[domain].current_freq_ghz
                )
                self.history.issued[domain].append(self.domains[domain].issued)
        if self._probe is not None and sample_index % self._obs_stride == 0:
            self._emit_samples(time_ns, occupancies)
        if prof is not None:
            prof.add("record", perf_counter() - t3)  # statcheck: disable=DET002 -- profiling only

    def _apply_command(
        self,
        time_ns: float,
        domain: DomainId,
        regulator: VoltageRegulator,
        command,
    ) -> None:
        """Forward one controller command to its regulator and record it."""
        cfg = self.config
        before = regulator.target_freq_ghz
        freq_now = regulator.current_freq_ghz
        regulator.apply(command)
        target = regulator.target_freq_ghz
        applied = abs(target - before) > 1e-12
        if cfg.stalls_during_transition and applied:
            # Transmeta-style: the domain halts for the PLL
            # relock (the V/f ramp itself executes through).
            pause = time_ns + cfg.relock_idle_ns
            tag = _EDGE_TAG[domain]
            self._pause_until[tag] = max(self._pause_until[tag], pause)
        self.step_events.append(
            FrequencyStepEvent(
                time_ns=time_ns,
                domain=domain,
                steps=command.steps,
                target_ghz=target,
                freq_ghz=freq_now,
                applied=applied,
            )
        )
        probe = self._probe
        if probe is not None:
            probe.event(
                "freq_step",
                time_ns,
                domain=domain.value,
                steps=command.steps,
                target_ghz=target,
                freq_ghz=freq_now,
                applied=applied,
                slew_ns=abs(target - freq_now) / regulator.slew_ghz_per_ns,
            )
            probe.count(f"freq_steps.{domain.value}")

    def _emit_samples(self, time_ns: float, occupancies: Dict[DomainId, int]) -> None:
        """Publish one period's per-domain metrics into the probe bus."""
        probe = self._probe
        by_domain = self.energy.by_domain
        for domain in CONTROLLED_DOMAINS:
            occ = occupancies[domain]
            regulator = self.regulators[domain]
            name = domain.value
            probe.gauge(f"occupancy.{name}", occ)
            probe.histogram(f"occupancy.{name}", occ)
            probe.gauge(f"frequency_ghz.{name}", regulator.current_freq_ghz)
            probe.event(
                "sample",
                time_ns,
                domain=name,
                occupancy=occ,
                freq_ghz=regulator.current_freq_ghz,
                voltage=regulator.voltage,
                energy=by_domain[domain] + self._energy_by_tag[_EDGE_TAG[domain]],
            )
        probe.count("samples")

    # ------------------------------------------------------------------

    def _result(self, finish_ns: float) -> SimulationResult:
        for domain, tag in _EDGE_TAG.items():
            self.energy.add(domain, self._energy_by_tag[tag])
            self._energy_by_tag[tag] = 0.0
        self.energy.add_memory(
            self.hierarchy.memory_accesses * self.power.memory_access()
        )
        n = max(1, self._freq_samples)
        probe_summary = None
        if self.obs is not None:
            prof = self._profiler
            if prof is not None and self._probe is not None:
                for phase, wall_s in prof.phase_s.items():
                    self._probe.event(
                        "profile",
                        finish_ns,
                        phase=phase,
                        wall_s=wall_s,
                        calls=prof.phase_calls[phase],
                    )
            probe_summary = self.obs.summary()
        return SimulationResult(
            benchmark=self.benchmark,
            scheme=self.scheme,
            time_ns=finish_ns,
            instructions=self.rob.retired,
            energy=self.energy,
            history=self.history,
            transitions={
                d: self.regulators[d].transitions for d in CONTROLLED_DOMAINS
            },
            mean_frequency_ghz={
                d: self._freq_sum[d] / n for d in CONTROLLED_DOMAINS
            },
            issued_by_domain={
                d: self.domains[d].issued for d in CONTROLLED_DOMAINS
            },
            branch_mispredict_rate=self.predictor.mispredict_rate,
            l1d_miss_rate=self.hierarchy.l1d.miss_rate,
            l2_miss_rate=self.hierarchy.l2.miss_rate,
            sync_deferral_rate=self.sync.deferral_rate,
            step_events=self.step_events,
            probe_summary=probe_summary,
        )
