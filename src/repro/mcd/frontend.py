"""Front-end domain: fetch, branch prediction, dispatch, retirement.

The front end runs at the fixed maximum frequency (as in the paper and its
predecessors: only INT, FP and LS are DVFS-controlled).  Each front-end cycle
retires completed ROB head entries, then fetches and dispatches up to
``dispatch_width`` instructions into the per-domain issue/interface queues,
stalling on I-cache misses, ROB/queue fullness, and mispredicted branches
(no wrong-path execution: a mispredict blocks fetch until the branch resolves
plus a fixed redirect penalty).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.mcd.branch import CombinedPredictor
from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import DomainId, MachineConfig, execution_domain
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer, RobEntry
from repro.mcd.synchronization import SynchronizationInterface
from repro.workloads.instructions import Instruction, InstructionKind as K


class FrontEnd:
    """Fetch/rename/dispatch/retire, pinned at f_max."""

    def __init__(
        self,
        trace: Sequence[Instruction],
        clock: DomainClock,
        rob: ReorderBuffer,
        queues: Dict[DomainId, IssueQueue],
        domain_clocks: Dict[DomainId, DomainClock],
        hierarchy: MemoryHierarchy,
        predictor: CombinedPredictor,
        sync: SynchronizationInterface,
        config: MachineConfig,
    ) -> None:
        self.domain = DomainId.FRONT_END
        self.trace = trace
        self.clock = clock
        self.rob = rob
        self.queues = queues
        self.domain_clocks = domain_clocks
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.sync = sync
        self.config = config

        self.next_index = 0
        self.dispatched = 0
        self._icache_stall_until = 0.0
        self._blocked_on: Optional[RobEntry] = None
        self._last_fetch_line = -1
        #: why the most recent cycle dispatched nothing: one of None,
        #: "branch", "icache", "rob_full", "queue_full", "trace_done"
        self.last_stall: Optional[str] = None
        #: callbacks fired when an entry is pushed (processor uses this to
        #: wake sleeping execution domains)
        self.on_dispatch = None

    # ------------------------------------------------------------------

    @property
    def trace_exhausted(self) -> bool:
        return self.next_index >= len(self.trace)

    @property
    def finished(self) -> bool:
        return self.trace_exhausted and self.rob.is_empty

    # ------------------------------------------------------------------

    def cycle(self, now_ns: float) -> int:
        """One front-end cycle: retire then fetch/dispatch.

        Returns the number of instructions dispatched this cycle.
        """
        self.rob.retire(now_ns, self.config.retire_width)
        self.last_stall = None
        if self.trace_exhausted:
            self.last_stall = "trace_done"
            return 0
        if not self._redirect_clear(now_ns):
            self.last_stall = "branch"
            return 0
        if self._icache_stall_until > now_ns:
            self.last_stall = "icache"
            return 0
        return self._fetch_and_dispatch(now_ns)

    def stall_hint(self, now_ns: float) -> Optional[float]:
        """Earliest future time the stalled front end could make progress.

        Called by the simulator after a cycle that dispatched nothing, to
        fast-forward through long stalls instead of ticking at 1 GHz.
        Returns ``None`` when the resume time is unknowable (e.g. waiting on
        a queue drained by another domain), in which case the front end must
        keep ticking.  The hint is additionally capped at the ROB head's
        completion time so retirement stays timely.
        """
        candidate: Optional[float] = None
        entry = self._blocked_on
        if entry is not None:
            if not math.isfinite(entry.done_ns):
                return None  # branch not yet executed; resolve time unknown
            penalty_ns = self.config.mispredict_penalty_cycles * self.clock.period_ns
            candidate = entry.done_ns + penalty_ns
        elif self._icache_stall_until > now_ns:
            candidate = self._icache_stall_until
        elif self.rob.is_full:
            head_done = self.rob.head_done_ns
            if head_done is None or not math.isfinite(head_done):
                return None
            candidate = head_done
        if candidate is None or candidate <= now_ns:
            return None
        head_done = self.rob.head_done_ns
        if head_done is not None and math.isfinite(head_done):
            if head_done <= now_ns:
                return None  # retirement work pending right now: keep ticking
            candidate = min(candidate, head_done)
        return candidate

    # ------------------------------------------------------------------

    def _redirect_clear(self, now_ns: float) -> bool:
        """Check (and clear) a pending mispredict redirect."""
        entry = self._blocked_on
        if entry is None:
            return True
        penalty_ns = self.config.mispredict_penalty_cycles * self.clock.period_ns
        if entry.done_ns + penalty_ns <= now_ns:
            self._blocked_on = None
            return True
        return False

    def _fetch_and_dispatch(self, now_ns: float) -> int:
        dispatched = 0
        period = self.clock.period_ns
        for _ in range(self.config.dispatch_width):
            if self.trace_exhausted:
                break
            inst = self.trace[self.next_index]

            if self._icache_miss(inst.pc, now_ns):
                if dispatched == 0:
                    self.last_stall = "icache"
                break
            if self.rob.is_full:
                if dispatched == 0:
                    self.last_stall = "rob_full"
                break
            queue = self.queues[execution_domain(inst.kind)]
            if queue.is_full:
                if dispatched == 0:
                    self.last_stall = "queue_full"
                break

            self.rob.allocate(inst, now_ns)
            dst_clock = self.domain_clocks[execution_domain(inst.kind)]
            visible = self.sync.arrival_time(now_ns + period, dst_clock)
            entry = queue.push(inst, visible_ns=visible, now_ns=now_ns)
            if self.on_dispatch is not None:
                self.on_dispatch(execution_domain(inst.kind), entry)
            self.next_index += 1
            dispatched += 1

            if inst.kind is K.BRANCH:
                correct = self.predictor.resolve(inst.pc, inst.taken, inst.target)
                if not correct:
                    # fetch blocks until the branch executes + redirect penalty
                    self._blocked_on = self.rob.entry(inst.index)
                    break
        self.dispatched += dispatched
        return dispatched

    def _icache_miss(self, pc: int, now_ns: float) -> bool:
        """Access the I-cache at line granularity; set a stall on a miss."""
        line = pc // self.config.line_size
        if line == self._last_fetch_line:
            return False
        self._last_fetch_line = line
        result = self.hierarchy.access_inst(pc)
        if result.l1_hit:
            return False
        cycles, fixed_ns = self.hierarchy.latency_split(result)
        # L1 hit time is pipelined into fetch; only the miss path stalls.
        extra_cycles = cycles - self.hierarchy.l1_hit_cycles
        self._icache_stall_until = now_ns + extra_cycles * self.clock.period_ns + fixed_ns
        return True
