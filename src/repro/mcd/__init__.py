"""GALS multiple-clock-domain processor simulator (substrate).

Implements the 4-domain MCD microarchitecture of Semeraro et al. that the
paper evaluates on (paper Figure 1): a front end (fetch/rename/dispatch/ROB)
pinned at maximum frequency, and independently clocked integer, floating-point
and load/store domains fed through finite issue/interface queues.  Clocks
carry jitter; inter-domain transfers pay a synchronization-window penalty;
caches, branch prediction and functional-unit contention are modelled so that
queue-occupancy trajectories -- the only thing the DVFS controllers observe --
emerge from genuine microarchitectural behaviour.
"""

from repro.mcd.domains import DomainId, MachineConfig
from repro.mcd.clocks import DomainClock
from repro.mcd.queues import IssueQueue, QueueEntry
from repro.mcd.synchronization import SynchronizationInterface
from repro.mcd.cache import Cache, MemoryHierarchy, AccessResult
from repro.mcd.branch import CombinedPredictor
from repro.mcd.rob import ReorderBuffer, RobEntry
from repro.mcd.processor import MCDProcessor, SimulationResult

__all__ = [
    "DomainId",
    "MachineConfig",
    "DomainClock",
    "IssueQueue",
    "QueueEntry",
    "SynchronizationInterface",
    "Cache",
    "MemoryHierarchy",
    "AccessResult",
    "CombinedPredictor",
    "ReorderBuffer",
    "RobEntry",
    "MCDProcessor",
    "SimulationResult",
]
