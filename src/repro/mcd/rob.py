"""Reorder buffer and in-flight instruction tracking.

The ROB lives in the front-end domain (paper Figure 1).  Entries are
allocated at dispatch, marked with a completion time when their instruction
issues in an execution domain, and retired in order by the front end.
Producer completion times are kept in a side table so dependences resolve
even after the producer retires.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.workloads.instructions import Instruction

_NOT_DONE = math.inf


@dataclass
class RobEntry:
    """One reorder-buffer slot."""

    instruction: Instruction
    dispatch_ns: float
    #: time execution finishes; +inf until the instruction issues
    done_ns: float = _NOT_DONE

    @property
    def index(self) -> int:
        return self.instruction.index

    def is_done(self, now_ns: float) -> bool:
        return self.done_ns <= now_ns


class ReorderBuffer:
    """In-order allocate / in-order retire window of in-flight instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[RobEntry] = deque()
        self._by_index: Dict[int, RobEntry] = {}
        #: completion times of all issued instructions, by trace index;
        #: survives retirement so later consumers can check readiness.
        self._completion_ns: Dict[int, float] = {}
        self.retired = 0
        #: optional callback fired when the *oldest* entry completes (used by
        #: the simulator to wake a front end sleeping on ROB-full)
        self.on_head_done = None

    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # ------------------------------------------------------------------

    def allocate(self, instruction: Instruction, now_ns: float) -> RobEntry:
        """Allocate an entry at dispatch (raises if full)."""
        if self.is_full:
            raise RuntimeError("ROB full; dispatch should have stalled")
        entry = RobEntry(instruction=instruction, dispatch_ns=now_ns)
        self._entries.append(entry)
        self._by_index[instruction.index] = entry
        return entry

    def mark_done(self, trace_index: int, done_ns: float) -> None:
        """Record the completion time of an issued instruction."""
        self._completion_ns[trace_index] = done_ns
        entry = self._by_index.get(trace_index)
        if entry is not None:
            entry.done_ns = done_ns
            if (
                self.on_head_done is not None
                and self._entries
                and self._entries[0] is entry
            ):
                self.on_head_done(done_ns)

    def completion_time(self, trace_index: int) -> Optional[float]:
        """Completion time of a producer, or None if it has not issued yet."""
        return self._completion_ns.get(trace_index)

    def operand_ready(self, producer_index: Optional[int], now_ns: float) -> bool:
        """Is a source operand available at ``now_ns``?

        ``None`` means no register producer (immediate), hence ready.
        """
        if producer_index is None:
            return True
        done = self._completion_ns.get(producer_index)
        return done is not None and done <= now_ns

    def entry(self, trace_index: int) -> Optional[RobEntry]:
        return self._by_index.get(trace_index)

    @property
    def head_done_ns(self) -> Optional[float]:
        """Completion time of the oldest entry (may be +inf), None if empty."""
        if not self._entries:
            return None
        return self._entries[0].done_ns

    # ------------------------------------------------------------------

    def retire(self, now_ns: float, width: int) -> int:
        """Retire up to ``width`` completed head entries; return the count."""
        retired = 0
        while retired < width and self._entries:
            head = self._entries[0]
            if not head.is_done(now_ns):
                break
            self._entries.popleft()
            del self._by_index[head.index]
            retired += 1
        self.retired += retired
        return retired
