"""Combined branch predictor + BTB (paper Table 1).

Components: a 1024-entry bimodal table, a two-level predictor (1024
10-bit-history level-1 entries, 1024-entry level-2 pattern table), a
4096-entry meta chooser, and a 4096-set 2-way BTB.  All tables use 2-bit
saturating counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple


def _saturate(counter: int, taken: bool) -> int:
    """Update a 2-bit saturating counter."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class _Bimodal:
    def __init__(self, size: int) -> None:
        self.size = size
        self.table: List[int] = [2] * size  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.size

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        self.table[i] = _saturate(self.table[i], taken)


class _TwoLevel:
    """A per-address-history two-level adaptive predictor (GAp-style)."""

    def __init__(self, l1_size: int, hist_bits: int, l2_size: int) -> None:
        self.l1_size = l1_size
        self.hist_bits = hist_bits
        self.hist_mask = (1 << hist_bits) - 1
        self.l2_size = l2_size
        self.histories: List[int] = [0] * l1_size
        self.pattern: List[int] = [2] * l2_size

    def _l1_index(self, pc: int) -> int:
        return (pc >> 2) % self.l1_size

    def _l2_index(self, pc: int) -> int:
        history = self.histories[self._l1_index(pc)]
        return (history ^ (pc >> 2)) % self.l2_size

    def predict(self, pc: int) -> bool:
        return self.pattern[self._l2_index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        l2 = self._l2_index(pc)
        self.pattern[l2] = _saturate(self.pattern[l2], taken)
        l1 = self._l1_index(pc)
        self.histories[l1] = ((self.histories[l1] << 1) | int(taken)) & self.hist_mask


class _BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = sets
        self.ways = ways
        self._tables: List[OrderedDict] = [OrderedDict() for _ in range(sets)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.sets

    def lookup(self, pc: int) -> Optional[int]:
        table = self._tables[self._index(pc)]
        target = table.get(pc)
        if target is not None:
            table.move_to_end(pc)
        return target

    def insert(self, pc: int, target: int) -> None:
        table = self._tables[self._index(pc)]
        table[pc] = target
        table.move_to_end(pc)
        if len(table) > self.ways:
            table.popitem(last=False)


class CombinedPredictor:
    """Meta-chooser combination of bimodal and two-level predictors."""

    def __init__(
        self,
        bimodal_size: int = 1024,
        twolevel_l1_size: int = 1024,
        twolevel_hist_bits: int = 10,
        twolevel_l2_size: int = 1024,
        meta_size: int = 4096,
        btb_sets: int = 4096,
        btb_ways: int = 2,
    ) -> None:
        self.bimodal = _Bimodal(bimodal_size)
        self.twolevel = _TwoLevel(twolevel_l1_size, twolevel_hist_bits, twolevel_l2_size)
        self.meta: List[int] = [2] * meta_size
        self.btb = _BTB(btb_sets, btb_ways)
        self.predictions = 0
        self.mispredictions = 0

    @classmethod
    def from_config(cls, config: "MachineConfig") -> "CombinedPredictor":  # noqa: F821
        return cls(
            bimodal_size=config.bimodal_size,
            twolevel_l1_size=config.twolevel_l1_size,
            twolevel_hist_bits=config.twolevel_hist_bits,
            twolevel_l2_size=config.twolevel_l2_size,
            meta_size=config.meta_size,
            btb_sets=config.btb_sets,
            btb_ways=config.btb_ways,
        )

    # ------------------------------------------------------------------

    def _meta_index(self, pc: int) -> int:
        return (pc >> 2) % len(self.meta)

    def predict(self, pc: int) -> Tuple[bool, Optional[int]]:
        """Predict (direction, target).  Target is None on a BTB miss."""
        use_twolevel = self.meta[self._meta_index(pc)] >= 2
        taken = self.twolevel.predict(pc) if use_twolevel else self.bimodal.predict(pc)
        target = self.btb.lookup(pc) if taken else None
        return taken, target

    def resolve(self, pc: int, taken: bool, target: int) -> bool:
        """Compare against the actual outcome, train, and report correctness.

        A prediction is correct when the direction matches and, for taken
        branches, the BTB supplied the right target.
        """
        pred_taken, pred_target = self.predict_quiet(pc)
        correct = pred_taken == taken and (not taken or pred_target == target)

        # train all components
        bim = self.bimodal.predict(pc)
        two = self.twolevel.predict(pc)
        if bim != two:
            i = self._meta_index(pc)
            self.meta[i] = _saturate(self.meta[i], two == taken)
        self.bimodal.update(pc, taken)
        self.twolevel.update(pc, taken)
        if taken:
            self.btb.insert(pc, target)

        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return correct

    def predict_quiet(self, pc: int) -> Tuple[bool, Optional[int]]:
        """Predict without perturbing BTB LRU state (internal to resolve)."""
        use_twolevel = self.meta[self._meta_index(pc)] >= 2
        taken = self.twolevel.predict(pc) if use_twolevel else self.bimodal.predict(pc)
        if not taken:
            return taken, None
        table = self.btb._tables[self.btb._index(pc)]
        return taken, table.get(pc)

    @property
    def mispredict_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
