"""Store (retire) buffer of the LS domain (paper Table 1: 64 entries).

A store completes architecturally as soon as it is written into the store
buffer (after address generation plus the L1 tag access); the buffer then
drains the actual memory write in the background, paying the full miss path
without stalling the pipeline.  The buffer is finite: when it is full, new
stores cannot issue until the oldest drain completes -- long store bursts
against a missing cache therefore do backpressure the LS domain, which is
what the paper's LS-queue dynamics rely on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class StoreBuffer:
    """A finite buffer of in-flight store drains, ordered by completion."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: completion (drain) times of buffered stores, oldest first.
        #: Drains are initiated in order, so the deque stays sorted.
        self._drains: Deque[float] = deque()
        self.total_stores = 0
        self.full_stalls = 0

    # ------------------------------------------------------------------

    def _evict_drained(self, now_ns: float) -> None:
        drains = self._drains
        while drains and drains[0] <= now_ns:
            drains.popleft()

    def occupancy(self, now_ns: float) -> int:
        """Stores still draining at ``now_ns``."""
        self._evict_drained(now_ns)
        return len(self._drains)

    def can_accept(self, now_ns: float) -> bool:
        self._evict_drained(now_ns)
        return len(self._drains) < self.capacity

    def push(self, now_ns: float, drain_done_ns: float) -> None:
        """Buffer a store whose memory write finishes at ``drain_done_ns``.

        Raises when full -- the LS issue logic is expected to check
        :meth:`can_accept` and stall instead.
        """
        self._evict_drained(now_ns)
        if len(self._drains) >= self.capacity:
            raise RuntimeError("store buffer full; issue should have stalled")
        # drains are initiated in program order; keep monotone completion so
        # occupancy checks stay O(1)
        if self._drains and drain_done_ns < self._drains[-1]:
            drain_done_ns = self._drains[-1]
        self._drains.append(drain_done_ns)
        self.total_stores += 1

    def record_full_stall(self) -> None:
        self.full_stalls += 1

    @property
    def is_empty(self) -> bool:
        return not self._drains

    def next_drain_ns(self) -> float:
        """Completion time of the oldest drain (inf when empty)."""
        return self._drains[0] if self._drains else float("inf")
