"""Inter-domain synchronization interface.

Models the arbitration-based interface of Sjogren & Myers used by the MCD
implementation the paper builds on (paper Section 2): a signal generated in
the source domain at time *t* can be latched at the first destination clock
edge that is at least a *synchronization window* (300 ps, Table 1) after the
data is stable.  An edge that falls inside the window cannot safely latch the
data and the transfer waits for the following destination edge -- that
occasional extra destination cycle is the MCD synchronization overhead.
"""

from __future__ import annotations

from repro.mcd.clocks import DomainClock


class SynchronizationInterface:
    """Computes when cross-domain data becomes visible to its receiver."""

    def __init__(self, sync_window_ns: float) -> None:
        if sync_window_ns < 0:
            raise ValueError("sync window must be non-negative")
        self.sync_window_ns = sync_window_ns
        self._transfers = 0
        self._deferred = 0

    # ------------------------------------------------------------------

    def arrival_time(self, data_ready_ns: float, dst_clock: DomainClock) -> float:
        """First destination edge that can safely latch data ready at ``t``.

        The destination edge must trail ``data_ready_ns`` by at least the
        synchronization window; otherwise the transfer defers one destination
        cycle.
        """
        edge = dst_clock.edge_at_or_after(data_ready_ns)
        self._transfers += 1
        if edge - data_ready_ns < self.sync_window_ns:
            self._deferred += 1
            edge += dst_clock.period_ns
        return edge

    # ------------------------------------------------------------------

    @property
    def transfers(self) -> int:
        """Total cross-domain transfers mediated."""
        return self._transfers

    @property
    def deferred(self) -> int:
        """Transfers that paid an extra destination cycle."""
        return self._deferred

    @property
    def deferral_rate(self) -> float:
        """Fraction of transfers that hit the synchronization window."""
        return self._deferred / self._transfers if self._transfers else 0.0
