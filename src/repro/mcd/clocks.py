"""Per-domain clocks for the GALS simulation.

Each domain owns a :class:`DomainClock`.  A clock produces rising edges one
period apart, perturbed by normally distributed jitter (paper Table 1:
+-10 ps).  Frequency changes (driven by the voltage regulator) take effect on
the next edge -- the domain keeps executing through a DVFS transition, per the
XScale-style model the paper assumes.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class DomainClock:
    """An independently generated domain clock with jitter.

    Parameters
    ----------
    freq_ghz:
        Initial frequency.  1 GHz means a 1 ns period.
    jitter_sigma_ns:
        Standard deviation of per-edge jitter.  Zero disables jitter (useful
        in unit tests).
    start_ns:
        Time of the first edge.  Domains start phase-offset in the processor
        to avoid artificial lockstep.
    rng:
        Source of jitter randomness; pass a seeded ``random.Random`` for
        reproducibility.
    """

    def __init__(
        self,
        freq_ghz: float,
        jitter_sigma_ns: float = 0.0,
        start_ns: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        if jitter_sigma_ns < 0:
            raise ValueError("jitter sigma must be non-negative")
        self._freq_ghz = freq_ghz
        self.jitter_sigma_ns = jitter_sigma_ns
        self._rng = rng or random.Random(0)
        self._next_edge_ns = start_ns

    # ------------------------------------------------------------------

    @property
    def freq_ghz(self) -> float:
        return self._freq_ghz

    @property
    def period_ns(self) -> float:
        return 1.0 / self._freq_ghz

    @property
    def next_edge_ns(self) -> float:
        """Time of the next (not yet consumed) rising edge."""
        return self._next_edge_ns

    def set_frequency(self, freq_ghz: float) -> None:
        """Change the clock frequency, effective from the next edge."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        self._freq_ghz = freq_ghz

    # ------------------------------------------------------------------

    def advance(self) -> float:
        """Consume the next edge and schedule its successor.

        Returns the time of the consumed edge.  The successor lands one
        (current) period later plus jitter; jitter never moves an edge
        backwards past its predecessor.
        """
        edge = self._next_edge_ns
        period = self.period_ns
        jitter = self._rng.gauss(0.0, self.jitter_sigma_ns) if self.jitter_sigma_ns else 0.0
        jitter = max(-0.4 * period, min(0.4 * period, jitter))
        self._next_edge_ns = edge + period + jitter
        return edge

    def skip_to(self, t_ns: float) -> None:
        """Fast-forward an idle clock so its next edge is at or after ``t_ns``.

        Used when a sleeping (fully gated) domain is woken by new queue
        entries: intermediate edges were gated away and need not be simulated.
        """
        if t_ns <= self._next_edge_ns:
            return
        period = self.period_ns
        missed = math.ceil((t_ns - self._next_edge_ns) / period)
        self._next_edge_ns += missed * period

    def edge_at_or_after(self, t_ns: float) -> float:
        """Predict the first edge at or after ``t_ns`` (jitter-free estimate).

        Used by the synchronization interface, which must reason about the
        destination domain's upcoming edges.
        """
        if t_ns <= self._next_edge_ns:
            return self._next_edge_ns
        period = self.period_ns
        missed = math.ceil((t_ns - self._next_edge_ns) / period)
        return self._next_edge_ns + missed * period
