"""Structured trace retention and writers (JSONL + Chrome trace format).

A :class:`TraceRecorder` is a bounded ring buffer of event dicts (as
published by :meth:`repro.obs.probe.ProbeBus.event`): full-length runs
stay bounded in memory, keeping the most recent ``ring_size`` events and
counting what was dropped.  Two writers serialize the retained window:

* :meth:`TraceRecorder.write_jsonl` -- one JSON object per line, the
  machine-readable metric stream (schema in :mod:`repro.obs.schema`);
* :meth:`TraceRecorder.write_chrome` -- the Chrome trace event format,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev: per-domain
  tracks carry occupancy/frequency counter series, FSM transitions and
  reconcile decisions as instant events, and frequency steps as duration
  slices spanning the regulator's slew.

Simulated nanoseconds map to trace microseconds (the Chrome ``ts`` unit),
so one displayed "microsecond" is one simulated nanosecond scaled 1/1000.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List

# Event kinds of the observability stream, in rough publisher order.
KIND_SAMPLE = "sample"
KIND_FSM_TRANSITION = "fsm_transition"
KIND_RECONCILE = "reconcile"
KIND_FREQ_STEP = "freq_step"
KIND_INTERVAL_DECISION = "interval_decision"
KIND_PROFILE = "profile"
KIND_SPAN_START = "span_start"
KIND_SPAN_END = "span_end"

#: Stable Chrome-trace thread ids per clock domain (+ one for non-domain
#: events such as profile summaries).
_DOMAIN_TID = {"front_end": 0, "int": 1, "fp": 2, "ls": 3}
_MISC_TID = 9
_PID = 1


class TraceRecorder:
    """Ring-buffered retention of structured trace events."""

    def __init__(self, ring_size: int = 65536) -> None:
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        self._ring: "deque[Dict]" = deque(maxlen=ring_size)
        self.recorded = 0

    def record(self, event: Dict) -> None:
        """Retain one event (oldest events fall out once the ring fills)."""
        self._ring.append(event)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring."""
        return self.recorded - len(self._ring)

    def events(self) -> List[Dict]:
        """The retained window, oldest first."""
        return list(self._ring)

    def summary(self) -> Dict:
        return {
            "recorded": self.recorded,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "ring_size": self.ring_size,
        }

    # -- writers ------------------------------------------------------

    def write_jsonl(self, path: str) -> str:
        """Write the retained events as JSON lines; returns ``path``."""
        with open(path, "w") as handle:
            for event in self._ring:
                handle.write(json.dumps(event) + "\n")
        return path

    def write_chrome(self, path: str, trace_name: str = "repro-dvfs") -> str:
        """Write the retained events in Chrome trace format; returns ``path``."""
        payload = {
            "traceEvents": chrome_trace_events(self._ring, trace_name),
            "displayTimeUnit": "ns",
            "otherData": {
                "producer": trace_name,
                "recorded": self.recorded,
                "dropped": self.dropped,
            },
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path


def _tid_for(domain: str) -> int:
    return _DOMAIN_TID.get(domain, _MISC_TID)


def chrome_trace_events(events: Iterable[Dict], trace_name: str = "repro-dvfs") -> List[Dict]:
    """Convert observability events into Chrome trace event dicts.

    Mapping: ``sample`` -> two counter series per domain (occupancy and
    frequency); ``fsm_transition``/``reconcile``/``interval_decision`` ->
    thread-scoped instant events; ``freq_step`` -> a complete ("X") slice
    whose duration is the regulator slew; ``profile`` -> process-scoped
    instants at end-of-run.  Unknown kinds are skipped (forward
    compatibility beats strictness for a visualization artifact).
    """
    out: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": _PID,
            "tid": 0,
            "args": {"name": trace_name},
        }
    ]
    used_tids = set()

    for event in events:
        kind = event.get("kind")
        ts = float(event.get("t_ns", 0.0)) / 1000.0
        domain = event.get("domain", "")
        tid = _tid_for(domain)

        if kind == KIND_SAMPLE:
            used_tids.add(tid)
            out.append({
                "name": f"occupancy/{domain}", "ph": "C", "ts": ts,
                "pid": _PID, "tid": tid,
                "args": {"entries": event.get("occupancy", 0)},
            })
            out.append({
                "name": f"frequency/{domain}", "ph": "C", "ts": ts,
                "pid": _PID, "tid": tid,
                "args": {"ghz": event.get("freq_ghz", 0.0)},
            })
        elif kind == KIND_FSM_TRANSITION:
            used_tids.add(tid)
            out.append({
                "name": (
                    f"{event.get('signal', '?')}:"
                    f"{event.get('from_state', '?')}->{event.get('to_state', '?')}"
                ),
                "ph": "i", "s": "t", "ts": ts, "pid": _PID, "tid": tid,
                "args": {
                    "dwell_samples": event.get("dwell_samples", 0),
                    "trigger": event.get("trigger", 0),
                },
            })
        elif kind == KIND_RECONCILE:
            used_tids.add(tid)
            out.append({
                "name": f"reconcile:{event.get('outcome', '?')}",
                "ph": "i", "s": "t", "ts": ts, "pid": _PID, "tid": tid,
                "args": {
                    "level_trigger": event.get("level_trigger", 0),
                    "slope_trigger": event.get("slope_trigger", 0),
                    "steps": event.get("steps", 0),
                },
            })
        elif kind == KIND_FREQ_STEP:
            used_tids.add(tid)
            steps = event.get("steps", 0)
            label = f"step {steps:+d}" if steps else "set target"
            out.append({
                "name": label, "ph": "X", "ts": ts,
                "dur": max(0.0, float(event.get("slew_ns", 0.0)) / 1000.0),
                "pid": _PID, "tid": tid,
                "args": {
                    "target_ghz": event.get("target_ghz", 0.0),
                    "freq_ghz": event.get("freq_ghz", 0.0),
                    "applied": event.get("applied", True),
                },
            })
        elif kind == KIND_INTERVAL_DECISION:
            used_tids.add(tid)
            out.append({
                "name": f"interval:{event.get('controller', '?')}",
                "ph": "i", "s": "t", "ts": ts, "pid": _PID, "tid": tid,
                "args": {
                    k: v for k, v in event.items()
                    if k not in ("kind", "t_ns", "domain", "controller")
                },
            })
        elif kind == KIND_SPAN_END:
            # a finished span (repro.obs.spans) renders as a proper
            # duration slice; span_start events carry no duration and
            # are skipped (the X slice covers the interval)
            dur_ns = float(event.get("dur_ns", 0.0))
            out.append({
                "name": f"span:{event.get('name', '?')}",
                "ph": "X", "ts": max(0.0, ts - dur_ns / 1000.0),
                "dur": max(0.0, dur_ns / 1000.0),
                "pid": _PID, "tid": _MISC_TID,
                "args": {
                    "trace_id": event.get("trace_id", ""),
                    "span_id": event.get("span_id", ""),
                    "parent_id": event.get("parent_id", ""),
                },
            })
            used_tids.add(_MISC_TID)
        elif kind == KIND_PROFILE:
            out.append({
                "name": f"profile:{event.get('phase', '?')}",
                "ph": "i", "s": "p", "ts": ts, "pid": _PID, "tid": _MISC_TID,
                "args": {
                    "wall_s": event.get("wall_s", 0.0),
                    "calls": event.get("calls", 0),
                },
            })
            used_tids.add(_MISC_TID)

    names = {0: "front-end", 1: "INT domain", 2: "FP domain", 3: "LS domain",
             _MISC_TID: "profiler"}
    for tid in sorted(used_tids):
        out.append({
            "name": "thread_name", "ph": "M", "ts": 0, "pid": _PID, "tid": tid,
            "args": {"name": names.get(tid, f"tid-{tid}")},
        })
    return out
