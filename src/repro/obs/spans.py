"""Cross-process span tracing: trace/span IDs, parent linkage, stitching.

One *trace* covers one logical request as it moves through the stack --
an HTTP submission, the coalescer flush that batched it, the engine
sweep it rode, and the pool worker that finally simulated it.  Each tier
contributes *spans* (named, wall-clock-timed intervals) that link to
their parent by ID, so the pieces stitch back into one tree even though
they were produced in different threads and processes.

Crossing the process boundary is by value, in both directions:

* a :class:`SpanContext` (just the ``trace_id``/``span_id`` pair) is a
  frozen picklable dataclass that travels *into* the worker inside the
  :class:`~repro.engine.jobs.SweepJob` (or as a plain dict argument of
  the pool entry point);
* the worker builds a standalone span with :func:`start_worker_span`,
  and the finished span *dict* travels back as part of the pool entry's
  return value, where the engine records it into the submitting
  process's :class:`SpanRecorder`.

Timestamps are ``time.time_ns()`` epoch wall clocks so spans from
different processes share an origin (modulo OS clock skew, which is
orders of magnitude below the millisecond spans we time).  The recorder
publishes ``span_start``/``span_end`` probe events (schema'd in
:mod:`repro.obs.schema`) and exports finished spans as Chrome-trace
``"X"`` (complete) events, viewable alongside the simulator's own
traces.  Disabled tracing holds :data:`NULL_TRACER` and gates on
``tracer.enabled``, same contract as ``NULL_PROBE``/``NULL_METRICS``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Union

from repro.obs.probe import NULL_PROBE


def new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex identifier (16 chars at the default width)."""
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: enough to parent children."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SpanContext":
        return SpanContext(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
        )


class Span:
    """One in-progress (or finished) named interval."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_ns", "end_ns", "attrs", "_recorder",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str = "",
        start_ns: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        recorder: "Optional[SpanRecorder]" = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = int(time.time_ns() if start_ns is None else start_ns)
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._recorder = recorder

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, key: str, value: Any) -> None:
        # each Span instance is owned by exactly one context (the loop
        # span in a handler, the worker span in its process); only the
        # finished dict crosses boundaries, so writes need no lock.
        self.attrs[key] = value  # statcheck: disable=LOCK001 -- single-owner span instance

    def to_dict(self) -> Dict[str, Any]:
        end_ns = self.start_ns if self.end_ns is None else self.end_ns
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": end_ns,
            "dur_ns": end_ns - self.start_ns,
            "attrs": dict(self.attrs),
        }

    def end(self, end_ns: Optional[int] = None) -> Dict[str, Any]:
        """Finish the span (idempotent); returns the finished-span dict.

        Attached spans record themselves into their recorder on the
        first ``end()``; standalone (worker) spans just return the dict
        for the caller to ship across the process boundary.
        """
        if self.end_ns is not None:
            return self.to_dict()
        self.end_ns = int(time.time_ns() if end_ns is None else end_ns)  # statcheck: disable=LOCK001 -- single-owner span instance; end() is idempotent
        payload = self.to_dict()
        if self._recorder is not None:
            self._recorder.record(payload)
        return payload

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.end()


def start_worker_span(
    name: str,
    parent: Union[SpanContext, Mapping[str, Any]],
    attrs: Optional[Dict[str, Any]] = None,
) -> Span:
    """A standalone child span for code on the far side of a process
    boundary: no recorder is attached, ``end()`` returns the dict and the
    caller is responsible for shipping it back to the submitting side."""
    ctx = (
        parent
        if isinstance(parent, SpanContext)
        else SpanContext.from_dict(parent)
    )
    span = Span(
        name=name,
        trace_id=ctx.trace_id,
        span_id=new_id(),
        parent_id=ctx.span_id,
        attrs=attrs,
    )
    span.attrs.setdefault("pid", os.getpid())
    return span


class SpanRecorder:
    """Thread-safe bounded store of finished spans, with tree queries."""

    enabled = True

    def __init__(
        self,
        probe: Any = NULL_PROBE,
        max_spans: int = 8192,
        clock_ns: Optional[Callable[[], int]] = None,
    ) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self._probe = probe
        self._clock_ns = clock_ns or time.time_ns
        self._lock = threading.Lock()
        self._finished: Deque[Dict[str, Any]] = deque(maxlen=max_spans)
        self.started = 0
        self.recorded = 0

    # -- producing spans -----------------------------------------------

    def start(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        trace_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; no ``parent`` starts a new trace (fresh trace ID)."""
        parent_ctx = parent.context if isinstance(parent, Span) else parent
        if parent_ctx is not None:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        else:
            trace_id = trace_id or new_id(16)
            parent_id = ""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start_ns=self._clock_ns(),
            attrs=attrs,
            recorder=self,
        )
        with self._lock:
            self.started += 1
        if self._probe.enabled:
            self._probe.event(
                "span_start",
                span.start_ns,
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
            )
        return span

    def record(self, payload: Mapping[str, Any]) -> None:
        """Store one finished-span dict (local ``Span.end()`` or a worker
        span shipped back across the process boundary)."""
        span = dict(payload)
        with self._lock:
            self._finished.append(span)
            self.recorded += 1
        if self._probe.enabled:
            self._probe.event(
                "span_end",
                span.get("end_ns", 0),
                trace_id=str(span.get("trace_id", "")),
                span_id=str(span.get("span_id", "")),
                parent_id=str(span.get("parent_id", "")),
                name=str(span.get("name", "")),
                dur_ns=span.get("dur_ns", 0),
            )

    # -- queries -------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished spans (optionally one trace's), oldest start first."""
        with self._lock:
            snapshot = list(self._finished)
        if trace_id is not None:
            snapshot = [s for s in snapshot if s.get("trace_id") == trace_id]
        return sorted(snapshot, key=lambda s: (s.get("start_ns", 0),
                                               s.get("end_ns", 0)))

    def tree(self, trace_id: str) -> List[Dict[str, Any]]:
        """One trace's spans nested as ``{"span": ..., "children": [...]}``.

        Roots are spans whose parent is empty or not in the recorded set
        (e.g. evicted from the ring); children sort by start time.
        """
        flat = self.spans(trace_id)
        nodes = {
            s["span_id"]: {"span": s, "children": []}
            for s in flat
            if "span_id" in s
        }
        roots: List[Dict[str, Any]] = []
        for span in flat:
            node = nodes[span["span_id"]]
            parent = nodes.get(span.get("parent_id", ""))
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def chrome_events(
        self, trace_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Finished spans as Chrome-trace ``"X"`` (complete) events.

        Timestamps are microseconds relative to the earliest span start;
        each producing process gets its own ``tid`` track so the serve
        loop, engine thread, and every pool worker render as lanes.
        """
        flat = self.spans(trace_id)
        if not flat:
            return []
        t0_ns = min(s.get("start_ns", 0) for s in flat)
        tids: Dict[Any, int] = {}
        events: List[Dict[str, Any]] = []
        for span in flat:
            pid = span.get("attrs", {}).get("pid", 0)
            tid = tids.setdefault(pid, len(tids))
            events.append(
                {
                    "name": span.get("name", "span"),
                    "ph": "X",
                    "ts": (span.get("start_ns", t0_ns) - t0_ns) / 1e3,
                    "dur": span.get("dur_ns", 0) / 1e3,
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "trace_id": span.get("trace_id", ""),
                        "span_id": span.get("span_id", ""),
                        "parent_id": span.get("parent_id", ""),
                        **span.get("attrs", {}),
                    },
                }
            )
        return events

    def summary(self) -> Dict[str, int]:
        with self._lock:
            return {
                "started": self.started,
                "recorded": self.recorded,
                "retained": len(self._finished),
            }


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`; safe to call, never
    recorded.  Gated call sites should not reach it at all."""

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = ""
    attrs: Dict[str, Any] = {}

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id="", span_id="")

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def end(self, end_ns: Optional[int] = None) -> Dict[str, Any]:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer (``NULL_PROBE`` contract)."""

    enabled = False

    def start(
        self,
        name: str,
        parent: Union[Span, SpanContext, None] = None,
        trace_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> _NullSpan:
        return NULL_SPAN

    def record(self, payload: Mapping[str, Any]) -> None:
        pass

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        return []

    def tree(self, trace_id: str) -> List[Dict[str, Any]]:
        return []

    def chrome_events(
        self, trace_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return []

    def summary(self) -> Dict[str, int]:
        return {"started": 0, "recorded": 0, "retained": 0}


#: Shared disabled-tracer singleton; identity-comparable.
NULL_TRACER = NullTracer()

#: What instrumented code should accept: a real or disabled tracer.
TracerLike = Union[SpanRecorder, NullTracer]
