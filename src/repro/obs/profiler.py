"""Wall-time profiling of the simulator's sampling-loop phases.

The processor's 4 ns sampling event does four things -- latch queue
occupancies, let the controllers observe (and command steps), slew the
regulators/clocks, and record history + metrics.  When profiling is
enabled those four phases are timed with ``perf_counter`` every sample,
and the whole ``run()`` is timed end to end, yielding per-phase wall
time, phase shares, and samples/second -- the measurement substrate every
subsequent performance PR reports against (``BENCH_obs.json``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

#: The sampling-loop phases, in execution order.
SAMPLE_PHASES = ("latch", "observe", "slew", "record")


class PhaseProfiler:
    """Accumulates per-phase wall time and overall run throughput."""

    def __init__(self) -> None:
        self.phase_s: Dict[str, float] = {}
        self.phase_calls: Dict[str, int] = {}
        self.wall_s = 0.0
        self.samples = 0
        self._run_started: Optional[float] = None

    # -- hot-loop API --------------------------------------------------

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``phase``."""
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + seconds
        self.phase_calls[phase] = self.phase_calls.get(phase, 0) + 1

    # -- run lifecycle -------------------------------------------------

    def run_started(self) -> None:
        self._run_started = perf_counter()

    def run_finished(self, samples: int = 0) -> None:
        if self._run_started is not None:
            self.wall_s += perf_counter() - self._run_started
            self._run_started = None
        self.samples += samples

    @property
    def samples_per_s(self) -> float:
        return self.samples / self.wall_s if self.wall_s > 0 else 0.0

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict:
        """Plain JSON-compatible profile: totals, per-phase breakdown."""
        wall = self.wall_s
        phases = {}
        for phase in sorted(set(self.phase_s) | set(SAMPLE_PHASES)):
            seconds = self.phase_s.get(phase, 0.0)
            phases[phase] = {
                "wall_s": seconds,
                "calls": self.phase_calls.get(phase, 0),
                "share": seconds / wall if wall > 0 else 0.0,
            }
        return {
            "wall_s": wall,
            "samples": self.samples,
            "samples_per_s": self.samples_per_s,
            "phases": phases,
        }
