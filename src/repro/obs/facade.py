"""One-object wiring of the observability subsystem.

:class:`Observability` bundles the three obs components -- probe bus,
trace ring, phase profiler -- behind a single handle that
``run_experiment``/``MCDProcessor`` accept as ``obs=``:

* ``obs=None`` (the default) -- everything off, the no-op fast path;
* ``obs=True`` -- everything on with defaults;
* ``obs=ObsConfig(...)`` -- tuned components (the picklable form, also
  what :class:`repro.engine.jobs.SweepJob` carries across workers);
* ``obs=Observability(...)`` -- a live instance the caller keeps, to
  write trace artifacts after the run (what ``repro-dvfs trace`` does).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.obs.probe import ProbeBus
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import TraceRecorder


@dataclass(frozen=True)
class ObsConfig:
    """Tuning of one observability instance (plain, picklable data).

    ``sample_stride`` throttles the per-sample metric events (every Nth
    sampling period publishes ``sample`` events); counters/gauges/
    histograms and the decision events (FSM transitions, frequency
    steps) are never strided -- they are rare and individually precious.
    """

    trace: bool = True
    profile: bool = True
    ring_size: int = 65536
    sample_stride: int = 1

    def __post_init__(self) -> None:
        if self.ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if self.sample_stride <= 0:
            raise ValueError("sample_stride must be positive")


class Observability:
    """Probe bus + trace ring + profiler for one simulation."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.bus = ProbeBus()
        self.recorder: Optional[TraceRecorder] = None
        if self.config.trace:
            self.recorder = TraceRecorder(ring_size=self.config.ring_size)
            self.bus.add_sink(self.recorder.record)
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if self.config.profile else None
        )

    @staticmethod
    def coerce(
        obs: Union[None, bool, ObsConfig, "Observability"]
    ) -> Optional["Observability"]:
        """Normalize the ``obs=`` argument forms; ``None``/``False`` -> off."""
        if obs is None or obs is False:
            return None
        if isinstance(obs, Observability):
            return obs
        if obs is True:
            return Observability()
        if isinstance(obs, ObsConfig):
            return Observability(obs)
        raise TypeError(
            "obs must be None, True, an ObsConfig, or an Observability, "
            f"got {type(obs).__name__}"
        )

    # -- reporting ----------------------------------------------------

    def summary(self) -> Dict:
        """Plain JSON-compatible summary of everything observed."""
        summary = self.bus.summary()
        summary["profile"] = (
            self.profiler.summary() if self.profiler is not None else None
        )
        summary["trace"] = (
            self.recorder.summary() if self.recorder is not None else None
        )
        return summary

    def write_trace_files(
        self, jsonl_path: str, chrome_path: str
    ) -> Tuple[str, str]:
        """Write the JSONL metric stream and the Chrome trace; returns paths."""
        if self.recorder is None:
            raise ValueError(
                "tracing is disabled in this ObsConfig; nothing to write"
            )
        for path in (jsonl_path, chrome_path):
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self.recorder.write_jsonl(jsonl_path)
        self.recorder.write_chrome(chrome_path)
        return jsonl_path, chrome_path
