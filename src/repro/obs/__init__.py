"""Unified observability layer: probes, structured tracing, profiling.

Everything the repo needs to *watch itself*: a pluggable probe/metrics
bus the simulator and controllers publish into (:mod:`repro.obs.probe`),
ring-buffered structured traces written as JSONL and Chrome trace format
(:mod:`repro.obs.trace`), wall-time profiling of the sampling-loop
phases (:mod:`repro.obs.profiler`), and schema validation of the emitted
artifacts (:mod:`repro.obs.schema`).  :class:`Observability` wires the
pieces together; ``run_experiment(..., obs=...)`` and ``repro-dvfs
trace`` are the entry points.  Disabled (the default), the simulator
takes a no-op fast path -- see DESIGN.md section 6b.
"""

from repro.obs.facade import Observability, ObsConfig
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.probe import NULL_PROBE, Histogram, NullProbe, ProbeBus
from repro.obs.profiler import SAMPLE_PHASES, PhaseProfiler
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    SpanRecorder,
    start_worker_span,
)
from repro.obs.schema import (
    validate_chrome_file,
    validate_event,
    validate_jsonl_file,
    validate_trace_files,
)
from repro.obs.trace import (
    KIND_FREQ_STEP,
    KIND_FSM_TRANSITION,
    KIND_INTERVAL_DECISION,
    KIND_PROFILE,
    KIND_RECONCILE,
    KIND_SAMPLE,
    TraceRecorder,
    chrome_trace_events,
)

__all__ = [
    "Observability",
    "ObsConfig",
    "ProbeBus",
    "NullProbe",
    "NULL_PROBE",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "SpanRecorder",
    "SpanContext",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "start_worker_span",
    "TraceRecorder",
    "chrome_trace_events",
    "PhaseProfiler",
    "SAMPLE_PHASES",
    "validate_event",
    "validate_jsonl_file",
    "validate_chrome_file",
    "validate_trace_files",
    "KIND_SAMPLE",
    "KIND_FSM_TRANSITION",
    "KIND_RECONCILE",
    "KIND_FREQ_STEP",
    "KIND_INTERVAL_DECISION",
    "KIND_PROFILE",
]
