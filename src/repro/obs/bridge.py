"""Thread-safe bridges from observability streams into an asyncio loop.

The serve layer executes simulations on worker threads (and, through the
sweep engine, worker processes) while its SSE subscribers live on the
event loop.  :class:`EventBridge` is the seam between the two worlds: it
wraps a loop + callback pair and exposes

* :meth:`telemetry_listener` -- a :class:`repro.engine.telemetry.RunTelemetry`
  listener forwarding every engine event (job started / finished /
  cache hit / retried / failed / cancelled ...) as a plain dict;
* :meth:`probe_sink` -- a :class:`repro.obs.probe.ProbeBus` event sink
  forwarding every structured probe event dict.

Both hop threads with ``loop.call_soon_threadsafe`` and silently drop
events once the loop is closed (a simulation outliving the server must
not crash its worker thread over lost telemetry).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Callable, Dict

if TYPE_CHECKING:
    from repro.engine.telemetry import TelemetryEvent


class EventBridge:
    """Forward engine telemetry / probe events onto an event loop."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        publish: Callable[[str, Dict[str, Any]], None],
    ) -> None:
        self.loop = loop
        self.publish = publish
        #: events that could not be delivered because the loop was closed
        self.lost = 0

    def _post(self, stream: str, payload: Dict[str, Any]) -> None:
        try:
            self.loop.call_soon_threadsafe(self.publish, stream, payload)
        except RuntimeError:
            # loop closed mid-run: the producer outlived the server
            self.lost += 1

    def telemetry_listener(self) -> "Callable[[TelemetryEvent], None]":
        """A listener for ``RunTelemetry.add_listener``."""

        def _listener(event: "TelemetryEvent") -> None:
            self._post("telemetry", event.to_dict())

        return _listener

    def probe_sink(self) -> Callable[[Dict[str, Any]], None]:
        """A sink for ``ProbeBus.add_sink``."""

        def _sink(event: Dict[str, Any]) -> None:
            self._post("probe", dict(event))

        return _sink
