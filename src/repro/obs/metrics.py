"""Aggregated service metrics: counters, gauges, latency histograms.

Where :class:`~repro.obs.probe.ProbeBus` is *per-run* (one bus per
simulation, summarized onto the result), :class:`MetricsRegistry` is
*per-process*: one registry outlives every request/sweep/engine that
reports into it, which is exactly what an operator scraping ``GET
/metrics`` wants to see.  Three instrument kinds are supported:

* :class:`Counter` -- monotone accumulators (requests served, jobs
  finished by outcome, SSE frames dropped);
* :class:`Gauge` -- last-value-wins observations (queue depth, cache
  hit ratio, instructions/second of the latest run);
* :class:`LatencyHistogram` -- fixed-bucket cumulative histograms with
  a total sum and count, rendering the Prometheus ``_bucket``/``_sum``/
  ``_count`` triple.

Instruments come in *families* keyed by a fixed tuple of label names
(``repro_http_requests_total{method,route,status}``); bare instruments
are single-child families with no labels.  The registry renders the
Prometheus text exposition format (:meth:`MetricsRegistry.render_prometheus`)
and a compact JSON snapshot (:meth:`MetricsRegistry.snapshot`), and keeps
a windowed time-series ring per family (:meth:`MetricsRegistry.record_window`
/ :meth:`MetricsRegistry.rate`) so dashboards can show rates without
storing history client-side.

Disabled metrics follow the ``NULL_PROBE`` contract: hold
:data:`NULL_METRICS` (``enabled`` False) and gate every instrumentation
site on ``metrics.enabled`` (or resolve instruments to ``None`` up
front), so the disabled path makes **zero** calls into this module --
the ``sys.setprofile`` guard in ``tests/obs/test_overhead.py`` enforces
it the same way it does for the probe bus.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union, cast

#: default latency buckets, in seconds (Prometheus client conventions).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# -- instruments -------------------------------------------------------


class Counter:
    """A monotone accumulator.

    Instruments are shared across the serve loop, executor threads and
    the engine (one registry, handed through ``ServeApp`` to
    ``SweepEngine``), so every mutation holds the instrument lock --
    ``+=`` on a float is read-modify-write and drops increments under
    contention.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A last-value-wins observation (also supports deltas)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class LatencyHistogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics.

    ``bounds`` are inclusive upper bounds (``le``); an observation lands
    in the first bucket whose bound is >= the value, or the implicit
    ``+Inf`` overflow bucket past the last bound.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase strictly: {bounds}")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value

    def cumulative(self) -> List[int]:
        """Per-bound cumulative counts; the last entry is the +Inf bucket
        and always equals :attr:`count`."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation within the
        bucket holding it (the standard Prometheus ``histogram_quantile``
        estimate); 0.0 with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = self.cumulative()
        for index, cum in enumerate(cumulative):
            if cum >= rank:
                if index == len(self.bounds):
                    return self.bounds[-1]  # overflow bucket: clamp
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                prev_cum = cumulative[index - 1] if index else 0
                in_bucket = cum - prev_cum
                if in_bucket == 0:
                    return upper
                return lower + (upper - lower) * (rank - prev_cum) / in_bucket
        return self.bounds[-1]

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                _format_bound(bound): cum
                for bound, cum in zip(
                    self.bounds + (math.inf,), self.cumulative()
                )
            },
        }


Instrument = Union[Counter, Gauge, LatencyHistogram]


# -- families ----------------------------------------------------------


class MetricFamily:
    """One named metric and its per-label-value children."""

    kind = ""  # overridden

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets
        self.children: Dict[Tuple[str, ...], Instrument] = {}
        self.window: Deque[Tuple[float, float]] = deque(maxlen=256)
        self._lock = threading.Lock()

    def _new_child(self) -> Instrument:
        raise NotImplementedError

    def _child(self, labelvalues: Dict[str, Any]) -> Instrument:
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.label_names)
        child = self.children.get(key)
        if child is None:
            with self._lock:
                child = self.children.get(key)
                if child is None:
                    child = self.children[key] = self._new_child()
        return child

    def total(self) -> float:
        """The family-wide scalar the window ring records: summed counter
        values, summed gauge values, summed histogram counts."""
        values = list(self.children.values())
        if self.kind == "histogram":
            return float(sum(cast(LatencyHistogram, c).count for c in values))
        return float(sum(cast(Union[Counter, Gauge], c).value for c in values))


class CounterFamily(MetricFamily):
    kind = "counter"

    def _new_child(self) -> Counter:
        return Counter()

    def labels(self, **labelvalues: Any) -> Counter:
        return cast(Counter, self._child(labelvalues))


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def _new_child(self) -> Gauge:
        return Gauge()

    def labels(self, **labelvalues: Any) -> Gauge:
        return cast(Gauge, self._child(labelvalues))


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def _new_child(self) -> LatencyHistogram:
        return LatencyHistogram(self.buckets or DEFAULT_BUCKETS)

    def labels(self, **labelvalues: Any) -> LatencyHistogram:
        return cast(LatencyHistogram, self._child(labelvalues))


# -- registry ----------------------------------------------------------


class MetricsRegistry:
    """Process-wide metric store with Prometheus + JSON rendering."""

    enabled = True

    def __init__(self, ring_size: int = 256) -> None:
        if ring_size <= 1:
            raise ValueError("ring_size must be > 1")
        self.ring_size = ring_size
        self._families: "Dict[str, MetricFamily]" = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _register(
        self,
        cls: type,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (
                    type(family) is not cls
                    or family.label_names != label_names
                    or family.buckets != buckets
                ):
                    raise ValueError(
                        f"metric {name!r} re-registered with a different "
                        f"kind/labels/buckets"
                    )
                return family
            family = cls(name, help_text, label_names, buckets)
            family.window = deque(maxlen=self.ring_size)
            self._families[name] = family
            return family

    def counter_family(
        self, name: str, help_text: str, labels: Sequence[str]
    ) -> CounterFamily:
        return cast(
            CounterFamily,
            self._register(CounterFamily, name, help_text, tuple(labels)),
        )

    def gauge_family(
        self, name: str, help_text: str, labels: Sequence[str]
    ) -> GaugeFamily:
        return cast(
            GaugeFamily,
            self._register(GaugeFamily, name, help_text, tuple(labels)),
        )

    def histogram_family(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        return cast(
            HistogramFamily,
            self._register(
                HistogramFamily, name, help_text, tuple(labels),
                tuple(float(b) for b in buckets),
            ),
        )

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self.counter_family(name, help_text, ()).labels()

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self.gauge_family(name, help_text, ()).labels()

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> LatencyHistogram:
        return self.histogram_family(name, help_text, (), buckets).labels()

    @property
    def family_count(self) -> int:
        return len(self._families)

    def families(self) -> List[MetricFamily]:
        return list(self._families.values())

    # -- windowed time series ------------------------------------------

    def record_window(self, t_s: float) -> None:
        """Append one ``(t_s, family_total)`` sample per family to the
        ring buffers; call periodically (the serve layer samples every
        couple of seconds)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.window.append((float(t_s), family.total()))

    def window(self, name: str) -> List[Tuple[float, float]]:
        family = self._families.get(name)
        return list(family.window) if family is not None else []

    def rate(self, name: str, window_s: float = 60.0) -> float:
        """Per-second delta of ``name``'s family total over (at most) the
        trailing ``window_s`` of ring samples; 0.0 without two samples."""
        samples = self.window(name)
        if len(samples) < 2:
            return 0.0
        t_last, v_last = samples[-1]
        t_first, v_first = samples[0]
        for t_s, value in samples:
            if t_s >= t_last - window_s:
                t_first, v_first = t_s, value
                break
        if t_last <= t_first:
            return 0.0
        return (v_last - v_first) / (t_last - t_first)

    # -- rendering -----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, LatencyHistogram):
                    cumulative = child.cumulative()
                    for bound, cum in zip(child.bounds, cumulative):
                        labels = _format_labels(
                            family.label_names + ("le",),
                            key + (_format_bound(bound),),
                        )
                        lines.append(f"{family.name}_bucket{labels} {cum}")
                    inf_labels = _format_labels(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{family.name}_bucket{inf_labels} {child.count}")
                    plain = _format_labels(family.label_names, key)
                    lines.append(
                        f"{family.name}_sum{plain} {_format_value(child.total)}"
                    )
                    lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    labels = _format_labels(family.label_names, key)
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, Any]:
        """Compact JSON form: one series-name -> value/summary map per kind."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for key in sorted(family.children):
                child = family.children[key]
                series = family.name + _format_labels(family.label_names, key)
                if isinstance(child, LatencyHistogram):
                    histograms[series] = child.summary()
                elif isinstance(child, Counter):
                    counters[series] = child.value
                else:
                    gauges[series] = cast(Gauge, child).value
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


# -- the disabled path -------------------------------------------------


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullFamily:
    __slots__ = ("_child",)

    def __init__(self, child: Any) -> None:
        self._child = child

    def labels(self, **labelvalues: Any) -> Any:
        return self._child


class NullMetrics:
    """The disabled registry: every accessor returns a shared no-op.

    Like :class:`~repro.obs.probe.NullProbe`, holding this is safe
    everywhere -- but hot paths must branch on :attr:`enabled` (or
    resolve instruments to ``None`` up front) so the disabled
    configuration never calls into this module at all.
    """

    enabled = False

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def counter(self, name: str, help_text: str = "") -> _NullCounter:
        return self._counter

    def gauge(self, name: str, help_text: str = "") -> _NullGauge:
        return self._gauge

    def histogram(
        self, name: str, help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _NullHistogram:
        return self._histogram

    def counter_family(
        self, name: str, help_text: str, labels: Sequence[str]
    ) -> _NullFamily:
        return _NullFamily(self._counter)

    def gauge_family(
        self, name: str, help_text: str, labels: Sequence[str]
    ) -> _NullFamily:
        return _NullFamily(self._gauge)

    def histogram_family(
        self, name: str, help_text: str, labels: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _NullFamily:
        return _NullFamily(self._histogram)

    @property
    def family_count(self) -> int:
        return 0

    def record_window(self, t_s: float) -> None:
        pass

    def window(self, name: str) -> List[Tuple[float, float]]:
        return []

    def rate(self, name: str, window_s: float = 60.0) -> float:
        return 0.0

    def render_prometheus(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: Shared disabled-metrics singleton; identity-comparable.
NULL_METRICS = NullMetrics()

#: What instrumented code should accept: a real or disabled registry.
MetricsLike = Union[MetricsRegistry, NullMetrics]


# -- formatting helpers ------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    if bound == int(bound):
        return str(float(bound))
    return repr(bound)


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
