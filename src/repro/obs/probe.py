"""The probe/metrics bus: counters, gauges, histograms, structured events.

One :class:`ProbeBus` instance serves one simulation (or one sweep job):
the processor, the per-domain DVFS controllers, the regulators, and the
power accounting all publish into it.  Three metric families are kept
in-process, cheap enough to update every 4 ns sampling period:

* **counters** -- monotonically accumulating values (samples seen,
  frequency steps applied, FSM transitions);
* **gauges** -- last-value-wins observations (current occupancy,
  frequency, cumulative per-domain energy);
* **histograms** -- count/sum/min/max summaries of a value stream
  (occupancy distribution, FSM dwell times).

Structured **events** (:meth:`ProbeBus.event`) additionally fan out to any
number of sinks -- typically a :class:`~repro.obs.trace.TraceRecorder`
ring buffer -- and are the raw material of the JSONL and Chrome-trace
artifacts.

When observability is disabled the publishers hold :data:`NULL_PROBE`
instead, whose methods are no-ops; hot paths gate their probe work on
``probe.enabled`` so the disabled configuration does no metric work at
all (the overhead guard in ``tests/obs/test_overhead.py`` proves it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Histogram:
    """Streaming count/sum/min/max summary of one value series."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class NullProbe:
    """The disabled probe: every method is a no-op.

    Publishers hold this by default, so instrumented code needs no
    ``if probe is not None`` dance -- but hot loops should still branch on
    :attr:`enabled` to skip even the argument construction.
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass

    def event(self, kind: str, t_ns: float, **fields) -> None:
        pass

    def summary(self) -> Dict:
        return {}


#: Shared disabled-probe singleton; identity-comparable (`is NULL_PROBE`).
NULL_PROBE = NullProbe()


class ProbeBus:
    """The enabled probe: in-process metric store + event fan-out."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._sinks: List[Callable[[Dict], None]] = []

    # -- metric families ----------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        # each ProbeBus instance is single-owner: the serve app's bus
        # lives on the event loop, a run's bus on its executor thread;
        # cross-context delivery goes through the EventBridge hop.
        self.counters[name] = self.counters.get(name, 0) + value  # statcheck: disable=LOCK001 -- single-owner bus instance

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    # -- structured events --------------------------------------------

    def add_sink(self, sink: Callable[[Dict], None]) -> None:
        """Register a callable receiving every event dict as emitted."""
        self._sinks.append(sink)

    def event(self, kind: str, t_ns: float, **fields) -> Dict:
        """Publish one structured event; returns the event dict."""
        event = {"kind": kind, "t_ns": t_ns}
        event.update(fields)
        self.count(f"events.{kind}")
        for sink in self._sinks:
            sink(event)
        return event

    # -- reporting ----------------------------------------------------

    def summary(self) -> Dict:
        """Plain JSON-compatible snapshot of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
        }
