"""Schema of the observability event stream, with validators.

Every event in the JSONL metric stream is a flat JSON object carrying a
``kind`` discriminator and a simulated timestamp ``t_ns``; per-kind
required fields are listed in :data:`EVENT_SCHEMAS`.  Extra fields are
allowed (publishers may enrich events), unknown kinds are not (a typo'd
kind would otherwise silently produce an unqueryable stream).

The validators double as the CI gate: ``python -m repro.obs.schema
metrics.jsonl trace.chrome.json`` exits non-zero listing every malformed
event, and ``repro-dvfs trace`` runs the same validation on the files it
just wrote.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Dict, List, Sequence

_NUMBER = (int, float)

#: kind -> {field: allowed type(s)} required beyond the common envelope.
EVENT_SCHEMAS: Dict[str, Dict] = {
    "sample": {
        "domain": str,
        "occupancy": int,
        "freq_ghz": _NUMBER,
        "voltage": _NUMBER,
        "energy": _NUMBER,
    },
    "fsm_transition": {
        "domain": str,
        "signal": str,
        "from_state": str,
        "to_state": str,
        "dwell_samples": int,
        "trigger": int,
    },
    "reconcile": {
        "domain": str,
        "level_trigger": int,
        "slope_trigger": int,
        "outcome": str,
        "steps": int,
    },
    "freq_step": {
        "domain": str,
        "steps": int,
        "target_ghz": _NUMBER,
        "freq_ghz": _NUMBER,
        "applied": bool,
    },
    "interval_decision": {
        "domain": str,
        "controller": str,
    },
    "profile": {
        "phase": str,
        "wall_s": _NUMBER,
        "calls": int,
    },
    # -- serve layer (repro.serve): t_ns is wall monotonic ns since
    # -- server start, not simulated time.
    "serve_request": {
        "method": str,
        "path": str,
        "status": int,
        "wall_ms": _NUMBER,
    },
    "serve_batch_flush": {
        "requests": int,
        "groups": int,
        "run_batch_calls": int,
    },
    "serve_sse_drop": {
        "job": str,
        "dropped": int,
    },
    "serve_metrics_scrape": {
        "families": int,
        "bytes": int,
    },
    # -- span tracing (repro.obs.spans): t_ns is the epoch wall clock the
    # -- span started/ended at, shared across processes.
    "span_start": {
        "trace_id": str,
        "span_id": str,
        "parent_id": str,
        "name": str,
    },
    "span_end": {
        "trace_id": str,
        "span_id": str,
        "parent_id": str,
        "name": str,
        "dur_ns": _NUMBER,
    },
}

#: trace/span identifiers are lowercase hex, 8..32 chars (os.urandom.hex()).
_SPAN_ID = re.compile(r"^[0-9a-f]{8,64}$")

_FSM_STATES = ("wait", "count_up", "count_down")
_RECONCILE_OUTCOMES = ("single", "combine", "cancel")
_TRIGGERS = (-1, 0, 1)

#: Chrome trace phase types we emit (metadata, counter, instant, complete).
_CHROME_PHASES = ("M", "C", "i", "X")


def validate_event(event: Dict) -> List[str]:
    """Return a list of schema violations for one event (empty = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    kind = event.get("kind")
    if kind not in EVENT_SCHEMAS:
        return [f"unknown event kind {kind!r}"]
    t_ns = event.get("t_ns")
    if not isinstance(t_ns, _NUMBER) or isinstance(t_ns, bool) or t_ns < 0:
        errors.append(f"{kind}: t_ns must be a non-negative number, got {t_ns!r}")
    for name, types in EVENT_SCHEMAS[kind].items():
        if name not in event:
            errors.append(f"{kind}: missing required field {name!r}")
            continue
        value = event[name]
        # bool is an int subclass; only accept it where bool is the spec
        if types is not bool and isinstance(value, bool):
            errors.append(f"{kind}: field {name!r} must be {types}, got bool")
        elif not isinstance(value, types):
            errors.append(
                f"{kind}: field {name!r} must be {types}, got {type(value).__name__}"
            )
    if errors:
        return errors

    # value constraints
    if kind == "sample" and event["occupancy"] < 0:
        errors.append("sample: occupancy must be non-negative")
    if kind == "fsm_transition":
        for field in ("from_state", "to_state"):
            if event[field] not in _FSM_STATES:
                errors.append(
                    f"fsm_transition: {field} must be one of {_FSM_STATES}, "
                    f"got {event[field]!r}"
                )
        if event["trigger"] not in _TRIGGERS:
            errors.append("fsm_transition: trigger must be -1, 0 or +1")
        if event["dwell_samples"] < 0:
            errors.append("fsm_transition: dwell_samples must be non-negative")
    if kind == "reconcile":
        if event["outcome"] not in _RECONCILE_OUTCOMES:
            errors.append(
                f"reconcile: outcome must be one of {_RECONCILE_OUTCOMES}, "
                f"got {event['outcome']!r}"
            )
        for field in ("level_trigger", "slope_trigger"):
            if event[field] not in _TRIGGERS:
                errors.append(f"reconcile: {field} must be -1, 0 or +1")
    if kind == "serve_request":
        if not 100 <= event["status"] <= 599:
            errors.append("serve_request: status must be an HTTP status code")
        if event["wall_ms"] < 0:
            errors.append("serve_request: wall_ms must be non-negative")
    if kind == "serve_batch_flush":
        for field in ("requests", "groups", "run_batch_calls"):
            if event[field] < 0:
                errors.append(f"serve_batch_flush: {field} must be non-negative")
        if event["groups"] > event["requests"]:
            errors.append("serve_batch_flush: groups cannot exceed requests")
    if kind == "serve_sse_drop" and event["dropped"] < 1:
        errors.append("serve_sse_drop: dropped must be positive")
    if kind == "serve_metrics_scrape":
        for field in ("families", "bytes"):
            if event[field] < 0:
                errors.append(
                    f"serve_metrics_scrape: {field} must be non-negative"
                )
    if kind in ("span_start", "span_end"):
        for field in ("trace_id", "span_id"):
            if not _SPAN_ID.match(event[field]):
                errors.append(
                    f"{kind}: {field} must be 8..64 lowercase-hex chars, "
                    f"got {event[field]!r}"
                )
        parent_id = event["parent_id"]
        if parent_id and not _SPAN_ID.match(parent_id):
            errors.append(
                f"{kind}: parent_id must be empty or lowercase hex, "
                f"got {parent_id!r}"
            )
        if parent_id == event["span_id"]:
            errors.append(f"{kind}: a span cannot be its own parent")
        if not event["name"]:
            errors.append(f"{kind}: name must be non-empty")
    if kind == "span_end" and event["dur_ns"] < 0:
        errors.append("span_end: dur_ns must be non-negative")
    return errors


def validate_jsonl_file(path: str) -> List[str]:
    """Validate a JSONL metric stream; returns all violations found."""
    errors: List[str] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                errors.append(f"{path}:{lineno}: invalid JSON: {exc}")
                continue
            for problem in validate_event(event):
                errors.append(f"{path}:{lineno}: {problem}")
    return errors


def validate_chrome_event(event: Dict) -> List[str]:
    """Validate one Chrome-trace event dict."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"trace event is not an object: {event!r}"]
    ph = event.get("ph")
    if ph not in _CHROME_PHASES:
        errors.append(f"unsupported ph {ph!r} (expected one of {_CHROME_PHASES})")
    if not isinstance(event.get("name"), str) or not event.get("name"):
        errors.append("missing or empty name")
    ts = event.get("ts")
    if not isinstance(ts, _NUMBER) or isinstance(ts, bool) or ts < 0:
        errors.append(f"ts must be a non-negative number, got {ts!r}")
    for field in ("pid", "tid"):
        if not isinstance(event.get(field), int) or isinstance(event.get(field), bool):
            errors.append(f"{field} must be an integer, got {event.get(field)!r}")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, _NUMBER) or isinstance(dur, bool) or dur < 0:
            errors.append(f"X event dur must be a non-negative number, got {dur!r}")
    if ph == "C" and not isinstance(event.get("args"), dict):
        errors.append("counter event must carry an args object")
    return errors


def validate_chrome_file(path: str) -> List[str]:
    """Validate a Chrome-trace JSON file (the ``traceEvents`` object form)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except ValueError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return [f"{path}: expected an object with a traceEvents array"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be an array"]
    errors: List[str] = []
    for index, event in enumerate(events):
        for problem in validate_chrome_event(event):
            errors.append(f"{path}: traceEvents[{index}]: {problem}")
    return errors


def validate_trace_files(*paths: str) -> List[str]:
    """Dispatch each path to the right validator by suffix."""
    errors: List[str] = []
    for path in paths:
        if path.endswith(".jsonl"):
            errors.extend(validate_jsonl_file(path))
        else:
            errors.extend(validate_chrome_file(path))
    return errors


def main(argv: Sequence[str]) -> int:
    """CLI entry point: ``python -m repro.obs.schema FILE [FILE ...]``."""
    if not argv:
        print("usage: python -m repro.obs.schema FILE.jsonl FILE.json ...",
              file=sys.stderr)
        return 2
    errors = validate_trace_files(*argv)
    for problem in errors:
        print(problem, file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv)} file(s) valid")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main(sys.argv[1:]))
