"""Multi-taper variance-spectrum estimation (Thomson's method).

The spectrum of a time series distributes its variance over frequency; the
multi-taper estimator averages periodograms computed with orthogonal DPSS
(Slepian) tapers, trading a little resolution for much lower variance than a
single periodogram -- the method the paper cites for Figure 8.

Frequencies are in cycles per sample (the paper's x-axis is the reciprocal,
wavelength in sampling periods); density integrates to the series variance
(Parseval, checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.signal import windows


@dataclass(frozen=True)
class VarianceSpectrum:
    """A one-sided variance spectrum.

    ``density[i]`` is variance per unit frequency at ``frequency[i]``
    (cycles/sample); ``sum(density) * df`` equals the series variance up to
    taper bias.
    """

    frequency: np.ndarray
    density: np.ndarray

    def __post_init__(self) -> None:
        if self.frequency.shape != self.density.shape:
            raise ValueError("frequency and density must have the same shape")

    @property
    def df(self) -> float:
        return float(self.frequency[1] - self.frequency[0])

    @property
    def total_variance(self) -> float:
        """Integral of the density over all frequencies."""
        return float(np.sum(self.density) * self.df)

    @property
    def wavelength(self) -> np.ndarray:
        """Wavelengths (sampling periods) for each bin; inf at DC."""
        with np.errstate(divide="ignore"):
            return 1.0 / self.frequency


def multitaper_spectrum(
    series: Sequence[float],
    n_tapers: int = 5,
    bandwidth: Optional[float] = None,
) -> VarianceSpectrum:
    """Estimate the variance spectrum of ``series``.

    Parameters
    ----------
    series:
        The sampled signal (e.g. queue occupancy each sampling period).  The
        mean is removed, so the spectrum holds variance only.
    n_tapers:
        Number of DPSS tapers averaged.
    bandwidth:
        Time-bandwidth product NW; defaults to ``(n_tapers + 1) / 2``.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim != 1:
        raise ValueError("series must be one-dimensional")
    n = x.size
    if n < 8:
        raise ValueError("series too short for spectral estimation")
    if n_tapers < 1:
        raise ValueError("need at least one taper")
    nw = bandwidth if bandwidth is not None else (n_tapers + 1) / 2.0

    x = x - x.mean()
    tapers = windows.dpss(n, nw, Kmax=n_tapers)  # (K, N), unit-energy rows

    n_freq = n // 2 + 1
    psd = np.zeros(n_freq)
    for taper in tapers:
        spec = np.fft.rfft(taper * x)
        psd += np.abs(spec) ** 2
    psd /= n_tapers

    # One-sided density normalization.  With unit-energy tapers, DFT
    # Parseval gives sum over all N bins of |X_k|^2 = N * var(w x) ~= N*var.
    # Folding negative frequencies in and leaving the values as-is makes
    # sum(density) * df = var, since df = 1/N.
    psd[1:-1] *= 2.0
    if n % 2 == 1:
        psd[-1] *= 2.0

    frequency = np.fft.rfftfreq(n, d=1.0)
    return VarianceSpectrum(frequency=frequency, density=psd)
