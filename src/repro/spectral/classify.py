"""Fast-workload-variation classification (paper Section 5.2, Figure 8).

A benchmark is *fast-varying* when a substantial share of its workload
variance lives at wavelengths shorter than a fixed-interval controller's
interval: those are exactly the swings a per-interval average cannot see.
The paper's interval is 10k cycles at 1 GHz = 10 us = 2500 sampling periods,
so the "interesting" band of Figure 8 is wavelengths below 2500 samples
(excluding the very shortest few samples, which are noise).

Two classifiers are provided:

* **occupancy-based** (:func:`fast_variation_metric`) -- the paper's
  Figure-8 quantity: sub-interval variance of a sampled queue-occupancy
  series.  In this reproduction's simulator, instruction-granularity queue
  churn contributes broadband variance that can mask the workload signal on
  short runs, so this metric is best used for spectra (Figure 8), not for
  thresholding.
* **demand-based** (:func:`workload_fast_variation_metric`) -- the robust
  classifier used for Table 2: spectral variance of per-window instruction
  *demand shares* (FP / memory / branch / mul-div / ALU) computed directly
  from the trace, with the binomial sampling-noise floor subtracted.  This
  measures the workload itself rather than the queue's response to it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.spectral.multitaper import VarianceSpectrum, multitaper_spectrum
from repro.workloads.instructions import Instruction, InstructionKind as K

#: Wavelength (in 4 ns sampling periods) of a 10k-cycle fixed interval.
FAST_WAVELENGTH_SAMPLES = 2500.0

#: Wavelengths shorter than this are treated as sampling noise, not workload.
NOISE_WAVELENGTH_SAMPLES = 8.0


def band_variance(
    spectrum: VarianceSpectrum,
    min_wavelength: float,
    max_wavelength: float,
) -> float:
    """Variance contributed by wavelengths in [min, max] (sampling periods)."""
    if not 0 < min_wavelength < max_wavelength:
        raise ValueError("need 0 < min_wavelength < max_wavelength")
    f_lo = 1.0 / max_wavelength
    f_hi = 1.0 / min_wavelength
    mask = (spectrum.frequency >= f_lo) & (spectrum.frequency <= f_hi)
    return float(np.sum(spectrum.density[mask]) * spectrum.df)


def fast_variation_metric(
    occupancy: Sequence[float],
    interval_samples: float = FAST_WAVELENGTH_SAMPLES,
    noise_samples: float = NOISE_WAVELENGTH_SAMPLES,
    n_tapers: int = 5,
) -> float:
    """Queue variance at sub-interval wavelengths (entries^2).

    This is the quantity the dotted line of the paper's Figure 8 delimits:
    the variance a fixed-interval scheme with the given interval cannot
    react to.
    """
    spectrum = multitaper_spectrum(occupancy, n_tapers=n_tapers)
    return band_variance(spectrum, noise_samples, interval_samples)


def classify_fast_varying(
    occupancy: Sequence[float],
    threshold: float = 2.0,
    interval_samples: float = FAST_WAVELENGTH_SAMPLES,
) -> bool:
    """Label a queue-occupancy trace as fast-varying (occupancy metric)."""
    return fast_variation_metric(occupancy, interval_samples=interval_samples) > threshold


# ----------------------------------------------------------------------
# demand-based classification (Table 2)
# ----------------------------------------------------------------------

#: demand channels: coarse opcode classes whose per-window shares describe
#: what the program is asking of each domain
_N_CHANNELS = 5


def _channel(kind: K) -> int:
    if kind.is_fp:
        return 0
    if kind.is_mem:
        return 1
    if kind is K.BRANCH:
        return 2
    if kind in (K.INT_MUL, K.INT_DIV):
        return 3
    return 4  # plain ALU


def demand_shares(
    trace: Sequence[Instruction], window: int = 500
) -> np.ndarray:
    """Per-window demand shares, shape (channels, n_windows).

    Each column is the fraction of the window's instructions falling into
    the FP / memory / branch / mul-div / ALU channels.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    n = len(trace) // window
    shares = np.zeros((_N_CHANNELS, n))
    for w in range(n):
        for inst in trace[w * window : (w + 1) * window]:
            shares[_channel(inst.kind)][w] += 1
    return shares / window


def workload_fast_variation_metric(
    trace: Sequence[Instruction],
    window: int = 500,
    interval_instructions: float = 10_000.0,
    min_wavelength_windows: float = 2.5,
) -> float:
    """Sub-interval workload variance, summed over demand channels.

    For each channel, the variance spectrum of the per-window share series
    is integrated over wavelengths between ``min_wavelength_windows`` and
    the fixed-interval length; the binomial sampling-noise floor
    (``p(1-p)/window`` spread over the band) is subtracted, so a perfectly
    steady workload scores ~0 regardless of its mix.
    """
    shares = demand_shares(trace, window)
    n = shares.shape[1]
    if n < 64:
        raise ValueError(
            "trace too short for spectral classification "
            f"(need >= {64 * window} instructions)"
        )
    max_wavelength = interval_instructions / window
    if max_wavelength <= min_wavelength_windows:
        raise ValueError("interval must exceed the minimum wavelength")
    band_fraction = (1.0 / min_wavelength_windows - 1.0 / max_wavelength) / 0.5
    total = 0.0
    for c in range(_N_CHANNELS):
        series = shares[c]
        spectrum = multitaper_spectrum(series)
        in_band = band_variance(spectrum, min_wavelength_windows, max_wavelength)
        p = float(series.mean())
        noise_floor = p * (1.0 - p) / window * band_fraction
        total += max(0.0, in_band - noise_floor)
    return total


def classify_fast_varying_trace(
    trace: Sequence[Instruction],
    threshold: float = 0.01,
    window: int = 500,
    interval_instructions: float = 10_000.0,
) -> bool:
    """Table-2 classification: is this workload fast-varying?

    The 0.01 threshold (in summed share-variance units) cleanly separates
    the suite: fast-varying members score >= ~0.02, steady ones <= ~0.006
    (validated against the specs' ground-truth labels in tests).
    """
    metric = workload_fast_variation_metric(
        trace, window=window, interval_instructions=interval_instructions
    )
    return metric > threshold
