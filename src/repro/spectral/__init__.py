"""Section 5.2: spectral analysis of workload variability.

The paper classifies benchmarks by *fast* workload variation: total queue
variance says nothing about time scale, so it estimates the variance
*spectrum* of the queue-occupancy series with the multi-taper method and
integrates the spectral density over short wavelengths only -- wavelengths
shorter than a fixed-interval controller's interval, the swings such a
controller averages away.
"""

from repro.spectral.multitaper import VarianceSpectrum, multitaper_spectrum
from repro.spectral.classify import (
    FAST_WAVELENGTH_SAMPLES,
    band_variance,
    fast_variation_metric,
    classify_fast_varying,
    demand_shares,
    workload_fast_variation_metric,
    classify_fast_varying_trace,
)

__all__ = [
    "VarianceSpectrum",
    "multitaper_spectrum",
    "FAST_WAVELENGTH_SAMPLES",
    "band_variance",
    "fast_variation_metric",
    "classify_fast_varying",
    "demand_shares",
    "workload_fast_variation_metric",
    "classify_fast_varying_trace",
]
