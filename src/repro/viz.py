"""Terminal-friendly visualization of simulation results.

Pure-text rendering (no plotting dependencies): line plots for time series
such as the Figure-7 frequency trace, horizontal bar charts for per-benchmark
comparisons, and sparklines for compact inline series.  All functions return
strings; nothing prints.
"""

from __future__ import annotations

from typing import Optional, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 72,
    height: int = 16,
    x_label: str = "",
    y_format: str = "{:4.2f}",
) -> str:
    """Render a line plot of ``ys`` over ``xs`` as ASCII art.

    The series is resampled to ``width`` columns; each column plots the
    value nearest its position.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(ys) < 2:
        raise ValueError("need at least two points")
    if width < 8 or height < 4:
        raise ValueError("plot too small")
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    n = len(ys)
    for col in range(width):
        value = ys[int(col * (n - 1) / (width - 1))]
        row = height - 1 - int((value - lo) / span * (height - 1))
        grid[row][col] = "*"
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = y_format.format(hi)
        elif i == height - 1:
            label = y_format.format(lo)
        else:
            label = ""
        lines.append(f"{label:>8} |{''.join(row)}")
    lines.append(" " * 9 + "-" * width)
    if x_label:
        lines.append(" " * 9 + f"{xs[0]:g} .. {xs[-1]:g} {x_label}")
    return "\n".join(lines)


def sparkline(ys: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of ``ys`` (resampled to ``width``)."""
    if not ys:
        raise ValueError("need at least one point")
    values = list(ys)
    if width is not None and width > 0 and len(values) > width:
        n = len(values)
        values = [values[int(i * (n - 1) / (width - 1))] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    levels = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int((v - lo) / span * levels)] for v in values
    )


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    value_format: str = "{:6.2f}",
    title: str = "",
) -> str:
    """Horizontal bar chart; negative values extend left of the axis."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        raise ValueError("nothing to chart")
    label_width = max(len(label) for label in labels)
    biggest = max(abs(v) for v in values) or 1.0
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in zip(labels, values):
        bar_len = int(round(abs(value) / biggest * width))
        bar = ("#" if value >= 0 else "-") * bar_len
        lines.append(
            f"{label:<{label_width}}  {value_format.format(value)} |{bar}"
        )
    return "\n".join(lines)


def frequency_trace(result, domain, width: int = 72, height: int = 16) -> str:
    """Figure-7-style rendering: a domain's frequency over retired
    instructions, from a :class:`~repro.mcd.processor.SimulationResult`."""
    history = result.history
    ys = history.frequency_ghz[domain]
    xs = history.retired
    if len(ys) < 2:
        raise ValueError("result carries no frequency history (record_history?)")
    header = (
        f"{result.benchmark} / {result.scheme}: {domain.value} frequency (GHz)"
    )
    return header + "\n" + line_plot(
        xs, ys, width=width, height=height, x_label="instructions"
    )


def occupancy_trace(result, domain, width: int = 72, height: int = 12) -> str:
    """Queue-occupancy counterpart of :func:`frequency_trace`."""
    history = result.history
    ys = [float(v) for v in history.occupancy[domain]]
    xs = history.retired
    if len(ys) < 2:
        raise ValueError("result carries no occupancy history (record_history?)")
    header = f"{result.benchmark} / {result.scheme}: {domain.value} queue occupancy"
    return header + "\n" + line_plot(
        xs, ys, width=width, height=height, x_label="instructions",
        y_format="{:4.1f}",
    )
