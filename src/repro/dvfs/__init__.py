"""DVFS machinery and prior-work baseline controllers.

The adaptive controller (the paper's contribution) lives in
:mod:`repro.core`; this package provides what it and the baselines share --
the slew-rate-limited voltage regulator and the controller interface -- plus
reimplementations of the two fixed-interval schemes the paper compares
against: the attack/decay controller of Semeraro et al. (MICRO 2002) and the
PID controller of Wu et al. (ASPLOS 2004).
"""

from repro.dvfs.base import DvfsController, FrequencyCommand, FullSpeedController
from repro.dvfs.regulator import VoltageRegulator
from repro.dvfs.attack_decay import AttackDecayController, AttackDecayConfig
from repro.dvfs.pid import PidController, PidConfig

__all__ = [
    "DvfsController",
    "FrequencyCommand",
    "FullSpeedController",
    "VoltageRegulator",
    "AttackDecayController",
    "AttackDecayConfig",
    "PidController",
    "PidConfig",
]
