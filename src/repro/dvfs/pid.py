"""Fixed-interval PID controller (Wu et al., ASPLOS 2004).

This is the paper's baseline [23]: once per fixed interval, a PID loop on the
interval-average queue occupancy error computes the next frequency setting
(an absolute target, realized through the same slew-limited regulator as
every other scheme).  The velocity (incremental) PID form is used:

    f[k+1] = f[k] + Kp*(e[k] - e[k-1]) + Ki*e[k] + Kd*(e[k] - 2e[k-1] + e[k-2])

with e[k] = q_avg[k] - q_ref.  A positive error (queue above reference, the
sender outrunning the receiver) raises frequency; a negative error lowers it.

The interval length is a first-class parameter because the paper's closing
experiment re-runs this scheme with shorter intervals: shorter intervals
react faster but average over fewer samples (noisier) and switch more often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dvfs.base import DvfsController, FrequencyCommand
from repro.mcd.domains import DomainId


@dataclass(frozen=True)
class PidConfig:
    """PID gains and interval length.

    Gains are in GHz per queue entry.  The defaults follow the original
    scheme's design goals (small overshoot, settling within a few intervals
    for a full-scale error): with ``q_ref = 4`` an empty queue (e = -4)
    moves the target ~0.1 GHz per interval, settling across the full DVFS
    range in roughly ten intervals.
    """

    interval_ns: float = 10_000.0
    q_ref: float = 4.0
    kp: float = 0.012
    ki: float = 0.024
    kd: float = 0.004

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError("interval must be positive")
        if self.q_ref < 0:
            raise ValueError("q_ref must be non-negative")

    def with_interval(self, interval_ns: float) -> "PidConfig":
        """Copy with a different interval (the paper's Table-3 sweep)."""
        return PidConfig(
            interval_ns=interval_ns, q_ref=self.q_ref, kp=self.kp, ki=self.ki, kd=self.kd
        )


class PidController(DvfsController):
    """Interval-based PID frequency control on queue occupancy."""

    def __init__(self, domain: DomainId, config: PidConfig) -> None:
        super().__init__(domain)
        self.config = config
        self._interval_start: Optional[float] = None
        self._occupancy_sum = 0.0
        self._samples = 0
        self._e1: Optional[float] = None  # e[k-1]
        self._e2: Optional[float] = None  # e[k-2]
        self.intervals_elapsed = 0

    # ------------------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self._interval_start = None
        self._occupancy_sum = 0.0
        self._samples = 0
        self._e1 = None
        self._e2 = None
        self.intervals_elapsed = 0

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        if self._interval_start is None:
            self._interval_start = now_ns
        # Decide *before* accumulating the current sample, so every interval
        # covers the same number of samples.
        command = None
        if now_ns - self._interval_start >= self.config.interval_ns and self._samples:
            command = self._end_interval(now_ns, freq_ghz)
        self._occupancy_sum += occupancy
        self._samples += 1
        return command

    # ------------------------------------------------------------------

    def _end_interval(self, now_ns: float, freq_ghz: float) -> Optional[FrequencyCommand]:
        q_avg = self._occupancy_sum / self._samples
        self._interval_start = now_ns
        self._occupancy_sum = 0.0
        self._samples = 0
        self.intervals_elapsed += 1

        error = q_avg - self.config.q_ref
        e1 = self._e1 if self._e1 is not None else error
        e2 = self._e2 if self._e2 is not None else e1
        self._e2 = e1
        self._e1 = error

        delta = (
            self.config.kp * (error - e1)
            + self.config.ki * error
            + self.config.kd * (error - 2.0 * e1 + e2)
        )
        if self.probe.enabled:
            self.probe.event(
                "interval_decision",
                now_ns,
                domain=self.domain.value,
                controller="pid",
                q_avg=q_avg,
                error=error,
                delta_ghz=delta,
                target_ghz=freq_ghz + delta,
            )
            self.probe.count(f"pid_intervals.{self.domain.value}")
        if abs(delta) < 1e-9:
            return None
        return self._issue(FrequencyCommand(target_ghz=freq_ghz + delta))
