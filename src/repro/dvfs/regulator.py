"""Slew-rate-limited voltage regulator (XScale-style DVFS model).

Frequency and voltage transition together at 73.3 ns/MHz (paper Table 1:
73.3 ns/MHz, 7 ns/2.86 mV -- the two rates are locked by the linear V(f)
map).  The domain keeps executing through a transition; there is no PLL
relock idle time.  A single controller step of 2.34 MHz therefore takes
~172 ns to complete -- the switching time ``T_s`` that the adaptive FSM waits
out in its Act state.
"""

from __future__ import annotations

from typing import Optional

from repro.dvfs.base import FrequencyCommand
from repro.mcd.domains import DomainId, MachineConfig


class VoltageRegulator:
    """Per-domain frequency/voltage actuator."""

    def __init__(
        self,
        domain: DomainId,
        config: MachineConfig,
        initial_freq_ghz: Optional[float] = None,
    ) -> None:
        self.domain = domain
        self.config = config
        freq = config.f_max_ghz if initial_freq_ghz is None else initial_freq_ghz
        self._current_ghz = config.clamp_frequency(freq)
        self._target_ghz = self._current_ghz
        self._voltage = config.voltage_for(self._current_ghz)
        #: slew in GHz per ns: (1 MHz / 73.3 ns) = 1/73.3 * 1e-3 GHz/ns
        self.slew_ghz_per_ns = 1.0e-3 / config.slew_ns_per_mhz
        self.transitions = 0
        self.total_travel_ghz = 0.0

    # ------------------------------------------------------------------

    @property
    def current_freq_ghz(self) -> float:
        return self._current_ghz

    @property
    def target_freq_ghz(self) -> float:
        return self._target_ghz

    @property
    def voltage(self) -> float:
        """Supply voltage tracking the current frequency (cached; refreshed
        whenever the frequency physically moves)."""
        return self._voltage

    @property
    def in_transition(self) -> bool:
        return abs(self._target_ghz - self._current_ghz) > 1e-12

    @property
    def relative_frequency(self) -> float:
        """f / f_max -- the f-hat used by the controller's delay scaling."""
        return self._current_ghz / self.config.f_max_ghz

    # ------------------------------------------------------------------

    def apply(self, command: FrequencyCommand) -> None:
        """Retarget according to a controller command."""
        if command.target_ghz is not None:
            new_target = self.config.clamp_frequency(command.target_ghz)
        else:
            new_target = self.config.clamp_frequency(
                self._target_ghz + command.steps * self.config.step_ghz
            )
        if abs(new_target - self._target_ghz) > 1e-12:
            self.transitions += 1
            self._target_ghz = new_target

    def switching_time_ns(self, steps: int = 1) -> float:
        """Time to complete a transition of ``steps`` controller steps."""
        return abs(steps) * self.config.step_ghz * 1e3 * self.config.slew_ns_per_mhz

    def advance(self, dt_ns: float) -> None:
        """Slew the physical frequency toward the target over ``dt_ns``."""
        if dt_ns < 0:
            raise ValueError("dt must be non-negative")
        delta = self._target_ghz - self._current_ghz
        if not delta:
            return
        max_move = self.slew_ghz_per_ns * dt_ns
        move = max(-max_move, min(max_move, delta))
        self._current_ghz += move
        self.total_travel_ghz += abs(move)
        if abs(self._target_ghz - self._current_ghz) < 1e-12:
            self._current_ghz = self._target_ghz
        self._voltage = self.config.voltage_for(self._current_ghz)
