"""Centralized (coordinated) adaptive DVFS -- the paper's stated open problem.

Section 3.1: "A centralized DVFS scheme which utilizes all queue/domain
information may work better, but is much harder to design, as it is still an
open research problem."  This module is an exploratory answer built on the
paper's own per-domain machinery: each domain keeps its adaptive FSM
pipeline, and a lightweight coordinator adds one cross-domain rule --

    **a domain may not scale down while any sibling queue is backlogged.**

Rationale: the domains feed each other through dependences.  When some queue
is above its reference, the system is backlogged somewhere; slowing *any*
domain at that moment risks turning it into the next bottleneck (its own
queue is a lagging indicator).  Down-steps are therefore vetoed until the
whole machine is quiet, while up-steps (performance-protecting) always pass.

This trades a little energy for performance protection; the companion bench
measures whether the coordination actually "works better" on this substrate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.core.controller import AdaptiveDvfsController
from repro.dvfs.base import DvfsController, FrequencyCommand
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig


class CentralizedCoordinator:
    """Shared state: the latest occupancancy of every controlled queue."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        backlog_margin: float = 1.0,
    ) -> None:
        self.machine = machine or MachineConfig()
        #: a queue counts as backlogged when occupancy > q_ref + margin
        self.backlog_margin = backlog_margin
        self._occupancy: Dict[DomainId, int] = {d: 0 for d in CONTROLLED_DOMAINS}
        self._q_ref: Dict[DomainId, float] = {
            d: float(default_adaptive_config(d).q_ref) for d in CONTROLLED_DOMAINS
        }
        self.vetoes = 0

    def note(self, domain: DomainId, occupancy: int) -> None:
        self._occupancy[domain] = occupancy

    def set_reference(self, domain: DomainId, q_ref: float) -> None:
        self._q_ref[domain] = q_ref

    def backlogged_domains(self) -> "list[DomainId]":
        return [
            d
            for d in CONTROLLED_DOMAINS
            if self._occupancy[d] > self._q_ref[d] + self.backlog_margin
        ]

    def allows_down(self, domain: DomainId) -> bool:
        """May ``domain`` scale down right now?

        Denied while any *other* domain's queue is backlogged.  (A domain's
        own backlog already prevents its down-trigger via the level signal.)
        """
        for other in CONTROLLED_DOMAINS:
            if other is domain:
                continue
            if self._occupancy[other] > self._q_ref[other] + self.backlog_margin:
                self.vetoes += 1
                return False
        return True


class CoordinatedAdaptiveController(DvfsController):
    """A per-domain adaptive controller subject to the coordinator's veto."""

    def __init__(
        self,
        domain: DomainId,
        coordinator: CentralizedCoordinator,
        config: Optional[AdaptiveConfig] = None,
        machine: Optional[MachineConfig] = None,
    ) -> None:
        super().__init__(domain)
        self.coordinator = coordinator
        self.inner = AdaptiveDvfsController(domain, config, machine)
        coordinator.set_reference(domain, float(self.inner.config.q_ref))

    @property
    def config(self) -> AdaptiveConfig:
        return self.inner.config

    def attach_probe(self, probe) -> None:
        super().attach_probe(probe)
        self.inner.attach_probe(probe)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        inner = self.inner
        self.coordinator.note(self.domain, occupancy)
        signals = inner.monitor.sample(occupancy)
        if inner.scheduler.busy(now_ns):
            return None

        f_rel = min(1.0, freq_ghz / inner.machine.f_max_ghz)
        tracing = self.probe.enabled
        if tracing:
            level_was = inner.level_fsm.state
            level_dwell = inner.level_fsm.samples_in_state
            slope_was = inner.slope_fsm.state
            slope_dwell = inner.slope_fsm.samples_in_state
        level_trigger = inner.level_fsm.step(signals.level, f_rel)
        slope_trigger = (
            inner.slope_fsm.step(signals.slope, f_rel)
            if inner.config.use_slope_signal
            else 0
        )
        if tracing:
            inner._trace_fsm(
                now_ns, "level", level_was, level_dwell,
                inner.level_fsm.state, level_trigger,
            )
            if inner.config.use_slope_signal:
                inner._trace_fsm(
                    now_ns, "slope", slope_was, slope_dwell,
                    inner.slope_fsm.state, slope_trigger,
                )

        # the centralized rule: veto down-moves while a sibling is backlogged
        if (level_trigger < 0 or slope_trigger < 0) and not (
            self.coordinator.allows_down(self.domain)
        ):
            level_trigger = max(0, level_trigger)
            slope_trigger = max(0, slope_trigger)
            if tracing:
                self.probe.count(f"coordinator_vetoes.{self.domain.value}")

        action = inner.scheduler.reconcile(now_ns, level_trigger, slope_trigger)
        if action is None:
            if level_trigger and slope_trigger and level_trigger != slope_trigger:
                inner.level_fsm.reset()
                inner.slope_fsm.reset()
            return None
        return self._issue(FrequencyCommand(steps=action.steps))


def build_centralized_controllers(
    machine: Optional[MachineConfig] = None,
    backlog_margin: float = 1.0,
    adaptive_overrides: Optional[Dict[str, object]] = None,
) -> Dict[DomainId, DvfsController]:
    """One coordinated controller per domain, sharing a coordinator."""
    machine = machine or MachineConfig()
    coordinator = CentralizedCoordinator(machine, backlog_margin=backlog_margin)
    controllers: Dict[DomainId, DvfsController] = {}
    for domain in CONTROLLED_DOMAINS:
        config = default_adaptive_config(domain, **(adaptive_overrides or {}))
        controllers[domain] = CoordinatedAdaptiveController(
            domain, coordinator, config, machine
        )
    return controllers
