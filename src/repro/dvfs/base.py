"""Controller interface shared by the adaptive scheme and the baselines.

A controller is attached to one controlled clock domain.  The processor calls
:meth:`DvfsController.observe` once per signal sampling period (4 ns, 250 MHz)
with the domain's current queue occupancy and frequency; the controller may
return a :class:`FrequencyCommand`, which the processor forwards to the
domain's voltage regulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.mcd.domains import DomainId
from repro.obs.probe import NULL_PROBE


@dataclass(frozen=True)
class FrequencyCommand:
    """A requested frequency change.

    Exactly one of the two forms is used:

    * ``steps`` -- a relative change of N controller steps (the adaptive and
      attack/decay schemes);
    * ``target_ghz`` -- an absolute setting (the PID scheme computes one per
      interval).
    """

    steps: int = 0
    target_ghz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.steps != 0 and self.target_ghz is not None:
            raise ValueError("a command is either relative steps or an absolute target")
        if self.steps == 0 and self.target_ghz is None:
            raise ValueError("empty command; return None instead")


class DvfsController(abc.ABC):
    """Per-domain online DVFS decision logic."""

    def __init__(self, domain: DomainId) -> None:
        self.domain = domain
        self.commands_issued = 0
        #: observability sink; NULL_PROBE (no-op) unless a probe bus is
        #: attached.  Hot paths gate probe work on ``self.probe.enabled``.
        self.probe = NULL_PROBE

    def attach_probe(self, probe) -> None:
        """Publish this controller's decisions into ``probe``.

        Wrapper controllers that delegate to an inner controller should
        override this to forward the attachment.
        """
        self.probe = probe

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        """Process one queue-occupancy sample; optionally command a change."""

    def reset(self) -> None:
        """Return to the initial state (between runs)."""
        self.commands_issued = 0

    def _issue(self, command: FrequencyCommand) -> FrequencyCommand:
        self.commands_issued += 1
        return command


class FullSpeedController(DvfsController):
    """The synchronous baseline: never changes frequency."""

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        return None
