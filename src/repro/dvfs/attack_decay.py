"""Fixed-interval attack/decay controller (Semeraro et al., MICRO 2002).

This is the paper's baseline [9].  Once per fixed interval it inspects the
change in average queue utilization:

* a significant utilization *increase* triggers an "attack" -- a
  multiplicative frequency raise;
* a significant *decrease* triggers a downward attack;
* otherwise the frequency *decays* downward slowly, harvesting energy while
  nothing seems to be happening.

Both the interval boundary (reaction can be a full interval late) and the
interval-average statistic (intra-interval swings cancel out) are the
limitations the adaptive scheme is designed to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dvfs.base import DvfsController, FrequencyCommand
from repro.mcd.domains import DomainId


@dataclass(frozen=True)
class AttackDecayConfig:
    """Tuning published with the original algorithm.

    ``interval_ns`` corresponds to the 10k-cycle interval at the 1 GHz
    front-end clock.
    """

    interval_ns: float = 10_000.0
    #: utilization change (fraction of capacity) that counts as significant
    threshold: float = 0.017
    #: multiplicative frequency move on a significant change
    attack: float = 0.07
    #: multiplicative downward drift when nothing significant happens
    decay: float = 0.00175
    #: queue capacity, for normalizing occupancy into utilization
    capacity: int = 16

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.attack < 1:
            raise ValueError("attack must be in (0, 1)")
        if not 0 <= self.decay < 1:
            raise ValueError("decay must be in [0, 1)")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")


class AttackDecayController(DvfsController):
    """Interval-based attack/decay frequency control."""

    def __init__(self, domain: DomainId, config: AttackDecayConfig) -> None:
        super().__init__(domain)
        self.config = config
        self._interval_start: Optional[float] = None
        self._occupancy_sum = 0.0
        self._samples = 0
        self._prev_utilization: Optional[float] = None
        self.intervals_elapsed = 0

    # ------------------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self._interval_start = None
        self._occupancy_sum = 0.0
        self._samples = 0
        self._prev_utilization = None
        self.intervals_elapsed = 0

    def observe(
        self, now_ns: float, occupancy: int, freq_ghz: float
    ) -> Optional[FrequencyCommand]:
        if self._interval_start is None:
            self._interval_start = now_ns
        # Decide *before* accumulating the current sample, so every interval
        # covers the same number of samples.
        command = None
        if now_ns - self._interval_start >= self.config.interval_ns and self._samples:
            command = self._end_interval(now_ns, freq_ghz)
        self._occupancy_sum += occupancy
        self._samples += 1
        return command

    # ------------------------------------------------------------------

    def _end_interval(self, now_ns: float, freq_ghz: float) -> Optional[FrequencyCommand]:
        utilization = (self._occupancy_sum / self._samples) / self.config.capacity
        self._interval_start = now_ns
        self._occupancy_sum = 0.0
        self._samples = 0
        self.intervals_elapsed += 1

        prev = self._prev_utilization
        self._prev_utilization = utilization
        if prev is None:
            return None

        delta = utilization - prev
        if delta > self.config.threshold:
            target = freq_ghz * (1.0 + self.config.attack)
            mode = "attack_up"
        elif delta < -self.config.threshold:
            target = freq_ghz * (1.0 - self.config.attack)
            mode = "attack_down"
        else:
            target = freq_ghz * (1.0 - self.config.decay)
            mode = "decay"
        if self.probe.enabled:
            self.probe.event(
                "interval_decision",
                now_ns,
                domain=self.domain.value,
                controller="attack_decay",
                utilization=utilization,
                delta=delta,
                mode=mode,
                target_ghz=target,
            )
            self.probe.count(f"attack_decay.{mode}.{self.domain.value}")
        if abs(target - freq_ghz) < 1e-12:
            return None
        return self._issue(FrequencyCommand(target_ghz=target))
