"""repro -- Adaptive-reaction-time DVFS for multiple-clock-domain processors.

A full reproduction of Wu, Juang, Martonosi & Clark, "Voltage and Frequency
Control With Adaptive Reaction Time in Multiple-Clock-Domain Processors"
(HPCA 2005): the adaptive controller itself (:mod:`repro.core`), its
control-theoretic model and stability analysis (:mod:`repro.analysis`), a
GALS multiple-clock-domain processor simulator (:mod:`repro.mcd`), energy
accounting (:mod:`repro.power`), the prior-work fixed-interval baselines
(:mod:`repro.dvfs`), synthetic MediaBench/SPEC2000 workloads
(:mod:`repro.workloads`), spectral workload-variability analysis
(:mod:`repro.spectral`), and an experiment harness (:mod:`repro.harness`).

Quickstart::

    from repro import run_experiment, get_benchmark

    result = run_experiment(get_benchmark("epic-decode"), scheme="adaptive")
    print(result.time_ns, result.energy.total)
"""

from repro.core import AdaptiveDvfsController, AdaptiveConfig, default_adaptive_config
from repro.mcd import MCDProcessor, MachineConfig, DomainId, SimulationResult
from repro.mcd.domains import transmeta_machine_config
from repro.dvfs import (
    AttackDecayController,
    AttackDecayConfig,
    PidController,
    PidConfig,
    FullSpeedController,
)
from repro.workloads import BENCHMARKS, get_benchmark, generate_trace
from repro.harness import run_experiment, compare_schemes, SCHEMES
from repro import viz

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDvfsController",
    "AdaptiveConfig",
    "default_adaptive_config",
    "MCDProcessor",
    "MachineConfig",
    "DomainId",
    "SimulationResult",
    "AttackDecayController",
    "AttackDecayConfig",
    "PidController",
    "PidConfig",
    "FullSpeedController",
    "BENCHMARKS",
    "get_benchmark",
    "generate_trace",
    "run_experiment",
    "compare_schemes",
    "SCHEMES",
    "transmeta_machine_config",
    "viz",
    "__version__",
]
