"""Bit-identity comparison between simulation results.

The fast core's contract is *bit*-identity, not tolerance-based closeness:
every float in a :class:`repro.mcd.processor.SimulationResult` produced by
the fast core must equal the reference core's float exactly.  The golden
equivalence suite and ``bench_simcore.py`` both use these helpers, and
``assert_results_identical`` reports the first diverging field with both
values in full ``repr`` precision so a contract break is immediately
actionable.

Comparison goes through :func:`repro.harness.persistence.result_to_dict`
(with history) so it automatically covers every field the repo's own
persistence layer considers part of a result -- a new result field that
reaches the artifact format is compared here without this module changing.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from repro.harness.persistence import result_to_dict
from repro.mcd.processor import SimulationResult

#: Wall-clock measurements inside ``probe_summary["profile"]``.  They differ
#: between *any* two runs (including two reference runs), so they are outside
#: the bit-identity contract; deterministic profile fields (``samples``,
#: per-phase ``calls``) are still compared.
_WALL_CLOCK_KEYS = frozenset({"wall_s", "samples_per_s", "share"})


def _scrub_wall_clock(value: Any) -> Any:
    """Drop wall-clock keys from a profile subtree, recursively."""
    if isinstance(value, dict):
        return {
            k: _scrub_wall_clock(v)
            for k, v in value.items()
            if k not in _WALL_CLOCK_KEYS
        }
    return value


def _comparable(result: SimulationResult) -> Any:
    data = result_to_dict(result, include_history=True)
    summary = data.get("probe_summary")
    if isinstance(summary, dict) and "profile" in summary:
        summary = dict(summary)
        summary["profile"] = _scrub_wall_clock(summary["profile"])
        data = dict(data)
        data["probe_summary"] = summary
    return data


def _walk_diffs(a: Any, b: Any, path: str) -> Iterator[Tuple[str, Any, Any]]:
    """Yield ``(path, left, right)`` for every leaf where ``a != b``.

    Floats are compared with ``==`` (exact; +-0.0 aside, equal floats are
    bit-equal), never with a tolerance.
    """
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            if key not in a:
                yield (f"{path}.{key}", "<missing>", b[key])
            elif key not in b:
                yield (f"{path}.{key}", a[key], "<missing>")
            else:
                yield from _walk_diffs(a[key], b[key], f"{path}.{key}")
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            yield (f"{path}.len", len(a), len(b))
            return
        for i, (x, y) in enumerate(zip(a, b)):
            yield from _walk_diffs(x, y, f"{path}[{i}]")
        return
    # Exact leaf comparison; type mismatches (e.g. 0 vs 0.0) also count.
    if a != b or type(a) is not type(b):
        yield (path, a, b)


def result_diffs(
    ref: SimulationResult, other: SimulationResult
) -> "list[Tuple[str, Any, Any]]":
    """All leaf-level differences between two results (empty = identical)."""
    return list(_walk_diffs(_comparable(ref), _comparable(other), "result"))


def results_identical(ref: SimulationResult, other: SimulationResult) -> bool:
    """True when every field of both results matches exactly."""
    return not result_diffs(ref, other)


def assert_results_identical(
    ref: SimulationResult, other: SimulationResult, context: str = ""
) -> None:
    """Raise ``AssertionError`` naming the first diverging fields.

    ``context`` prefixes the message (e.g. ``"gzip/adaptive seed=7"``).
    """
    diffs = result_diffs(ref, other)
    if not diffs:
        return
    shown = "\n".join(
        f"  {path}: ref={left!r} other={right!r}"
        for path, left, right in diffs[:10]
    )
    suffix = "" if len(diffs) <= 10 else f"\n  ... and {len(diffs) - 10} more"
    prefix = f"{context}: " if context else ""
    raise AssertionError(
        f"{prefix}results diverge in {len(diffs)} field(s):\n{shown}{suffix}"
    )
