"""Precomputed frequency/voltage/energy lookup tables for the fast core.

The reference simulator recomputes three families of floats over and over on
its per-sample path:

* ``MachineConfig.voltage_for(f)`` -- the linear V(f) map, re-derived every
  time a regulator moves;
* the per-cycle energy coefficients ``c_eff * V^2 * {base, slope, gated}``
  -- re-derived for all four domains at every 4 ns sample even though
  voltages only change during a slew;
* the per-sample background energy ``(leakage [+ gated rate]) * dt`` -- two
  multiplies and an add per domain per sample.

Controller targets live on the quantized step grid, so the set of distinct
``(voltage, frequency)`` operating points a run visits is small and highly
repetitive -- and across a multi-seed batch the replicas visit the *same*
points.  :class:`SimTables` memoizes all three families keyed by the exact
float inputs.  Because every cached value is produced by the bit-exact same
expression the reference core evaluates, serving it from the table cannot
change a single bit of simulated state.

``tables_for`` interns one :class:`SimTables` per ``(MachineConfig, power
params)`` pair, so ``simcore.run_batch`` and sweep-engine workers amortize
table population across replicas for free.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mcd.domains import DomainId, MachineConfig
from repro.power.model import PowerModel

#: Edge-tag order used throughout the fast core: FE=0, INT=1, FP=2, LS=3
#: (mirrors ``repro.mcd.processor._EDGE_TAG``).
TAG_ORDER: Tuple[DomainId, ...] = (
    DomainId.FRONT_END,
    DomainId.INT,
    DomainId.FP,
    DomainId.LS,
)

#: (c_eff, active_base, active_slope, gated_fraction, leakage_fraction)
ParamRow = Tuple[float, float, float, float, float]
#: (active_base_e, active_slope_e, gated_e) at one voltage
CoeffRow = Tuple[float, float, float]
#: (awake background energy, asleep background energy) over one sample period
BackgroundRow = Tuple[float, float]


class SimTables:
    """Shared memo tables for one ``(machine config, power model)`` pair."""

    __slots__ = (
        "config",
        "dt_ns",
        "params_by_tag",
        "voltage",
        "period",
        "coeff",
        "background",
        "fe_background_e",
    )

    def __init__(self, config: MachineConfig, power: PowerModel) -> None:
        self.config = config
        self.dt_ns = config.sample_period_ns
        #: per-tag power-model constants, in TAG_ORDER
        self.params_by_tag: List[ParamRow] = []
        for domain in TAG_ORDER:
            p = power.params[domain]
            self.params_by_tag.append(
                (
                    p.c_eff,
                    p.active_base,
                    p.active_slope,
                    p.gated_fraction,
                    p.leakage_fraction,
                )
            )
        #: frequency -> supply voltage (exact ``config.voltage_for`` output)
        self.voltage: Dict[float, float] = {}
        #: frequency -> period in ns (exact ``1.0 / f``)
        self.period: Dict[float, float] = {}
        #: per-tag: voltage -> per-cycle energy coefficient triple
        self.coeff: List[Dict[float, CoeffRow]] = [{}, {}, {}, {}]
        #: per-tag: (voltage, freq) -> per-sample background energy pair
        self.background: List[Dict[Tuple[float, float], BackgroundRow]] = [
            {},
            {},
            {},
            {},
        ]
        # The front end is pinned at (v_max, f_max) and never sleeps, so its
        # per-sample background energy is one constant.  Same op order as
        # PowerModel.background: leakage_power(v) * dt.
        ce = self.params_by_tag[0][0]
        leak_frac = self.params_by_tag[0][4]
        v = config.v_max
        self.fe_background_e = ce * v * v * leak_frac * self.dt_ns

    # ------------------------------------------------------------------

    def voltage_for(self, freq_ghz: float) -> float:
        """Memoized ``config.voltage_for``; bit-exact by construction."""
        v = self.voltage.get(freq_ghz)
        if v is None:
            v = self.config.voltage_for(freq_ghz)
            self.voltage[freq_ghz] = v
        return v

    def period_ns(self, freq_ghz: float) -> float:
        """Memoized clock period, exactly ``1.0 / freq_ghz``."""
        p = self.period.get(freq_ghz)
        if p is None:
            p = 1.0 / freq_ghz
            self.period[freq_ghz] = p
        return p

    def coeff_for(self, tag: int, voltage: float) -> CoeffRow:
        """Per-cycle energy coefficients of domain ``tag`` at ``voltage``.

        Identical expressions (and evaluation order) to
        ``MCDProcessor._refresh_energy_coefficients``.
        """
        row = self.coeff[tag].get(voltage)
        if row is None:
            ce, active_base, active_slope, gated_frac, _ = self.params_by_tag[tag]
            v2c = ce * voltage * voltage
            row = (v2c * active_base, v2c * active_slope, v2c * gated_frac)
            self.coeff[tag][voltage] = row
        return row

    def background_for(
        self, tag: int, voltage: float, freq_ghz: float
    ) -> BackgroundRow:
        """Per-sample background energy (awake, asleep) of domain ``tag``.

        Mirrors ``PowerModel.background`` exactly: the asleep value is
        ``(leak + gated_rate) * dt`` as one product, *not* the float-unequal
        ``leak * dt + gated_rate * dt``.
        """
        key = (voltage, freq_ghz)
        row = self.background[tag].get(key)
        if row is None:
            ce, _, _, gated_frac, leak_frac = self.params_by_tag[tag]
            leak = ce * voltage * voltage * leak_frac
            gated_rate = ce * voltage * voltage * gated_frac * freq_ghz
            row = (leak * self.dt_ns, (leak + gated_rate) * self.dt_ns)
            self.background[tag][key] = row
        return row


#: process-wide table interning: (config, params signature) -> SimTables
_TABLES: Dict[Tuple[MachineConfig, Tuple[ParamRow, ...]], SimTables] = {}


def tables_for(config: MachineConfig, power: PowerModel) -> SimTables:
    """Return the interned :class:`SimTables` for this config/power pair.

    ``MachineConfig`` is a frozen (hashable) dataclass, so table sharing
    across batch replicas and within a sweep worker process is automatic.
    """
    sig = tuple(
        (
            p.c_eff,
            p.active_base,
            p.active_slope,
            p.gated_fraction,
            p.leakage_fraction,
        )
        for p in (power.params[d] for d in TAG_ORDER)
    )
    key = (config, sig)
    tables = _TABLES.get(key)
    if tables is None:
        tables = SimTables(config, power)
        _TABLES[key] = tables
    return tables
