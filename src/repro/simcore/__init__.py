"""Selectable simulation cores: reference, fast scalar, and SoA batch.

Three interchangeable cores execute every simulation:

* ``ref`` -- :class:`repro.mcd.processor.MCDProcessor`, the straight-line
  reference implementation;
* ``fast`` -- :class:`repro.simcore.fast.FastMCDProcessor`, the
  profile-guided megaloop that is bit-identical by contract (same
  ``SimulationResult``, same ``FrequencyStepEvent`` sequence, same
  probe-event stream) and >=2x faster;
* ``batch`` -- :class:`repro.simcore.batchcore.BatchMCDProcessor`, the
  structure-of-arrays core (PR 9): many seeds/configs simulate as one
  lock-step batch whose DVFS control plane is vectorized with NumPy
  (:mod:`repro.simcore.soa`), still bit-identical per lane.  Requires
  numpy; without it the core degrades to the fast megaloop with a
  one-time warning.

``fast`` is the default; ``REPRO_SIMCORE=ref`` is the escape hatch that
forces the reference core everywhere (CLI, sweeps, pool workers -- the
environment variable is inherited across process boundaries).  Sweep cache
keys include the resolved core, so results produced under different cores
never alias even though they are byte-identical by contract.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import TYPE_CHECKING, Any, Optional, Tuple, Type

from repro.simcore.batch import run_batch
from repro.simcore.markers import hot_path
from repro.simcore.tables import SimTables, tables_for
from repro.simcore.validate import assert_results_identical, results_identical
from repro.simcore.wheel import EventWheel

if TYPE_CHECKING:
    from repro.mcd.processor import MCDProcessor

#: environment variable selecting the simulation core
SIMCORE_ENV = "REPRO_SIMCORE"
#: recognised core names
CORES: Tuple[str, ...] = ("ref", "fast", "batch")
#: core used when neither an explicit choice nor the env var is given
DEFAULT_CORE = "fast"

__all__ = [
    "CORES",
    "DEFAULT_CORE",
    "SIMCORE_ENV",
    "EventWheel",
    "SimTables",
    "assert_results_identical",
    "batch_available",
    "create_processor",
    "hot_path",
    "processor_class",
    "reset_degradation_warning",
    "resolve_core",
    "results_identical",
    "run_batch",
    "tables_for",
]


def resolve_core(choice: Optional[str] = None) -> str:
    """Resolve a core selection: explicit choice > env var > default.

    Raises ``ValueError`` for unknown names so a typo in ``REPRO_SIMCORE``
    fails loudly instead of silently simulating with the wrong core.
    """
    selected = choice if choice is not None else os.environ.get(SIMCORE_ENV)
    if selected is None or selected == "":
        return DEFAULT_CORE
    if selected not in CORES:
        raise ValueError(
            f"unknown simcore {selected!r} (from "
            f"{'argument' if choice is not None else SIMCORE_ENV}); "
            f"expected one of {CORES}"
        )
    return selected


def batch_available() -> bool:
    """Is the vectorized control plane usable (numpy importable)?"""
    return importlib.util.find_spec("numpy") is not None


#: Whether the batch->fast degradation warning has fired this process.
#: Sweeps resolve the core once per job, so an unguarded warn would spam
#: one line per lane; tests reset the guard to observe the warning again.
_degradation_warned = False


def reset_degradation_warning() -> None:
    """Re-arm the one-shot degradation warning (test isolation hook)."""
    global _degradation_warned
    _degradation_warned = False


def _warn_degraded() -> None:
    global _degradation_warned
    if _degradation_warned:
        return
    _degradation_warned = True
    warnings.warn(
        "REPRO_SIMCORE=batch requested but numpy is not installed; "
        "simulating with the bit-identical 'fast' core instead",
        RuntimeWarning,
        stacklevel=3,
    )


def processor_class(choice: Optional[str] = None) -> Type["MCDProcessor"]:
    """The processor class implementing the resolved core."""
    core = resolve_core(choice)
    if core == "ref":
        from repro.mcd.processor import MCDProcessor

        return MCDProcessor
    if core == "batch":
        # BatchMCDProcessor itself is numpy-free; without numpy its run()
        # degrades lane by lane to the (bit-identical) fast megaloop.
        if not batch_available():
            _warn_degraded()
        from repro.simcore.batchcore import BatchMCDProcessor

        return BatchMCDProcessor
    from repro.simcore.fast import FastMCDProcessor

    return FastMCDProcessor


def create_processor(
    *args: Any, simcore: Optional[str] = None, **kwargs: Any
) -> "MCDProcessor":
    """Instantiate the selected core with MCDProcessor's constructor args."""
    return processor_class(simcore)(*args, **kwargs)
