"""Structure-of-arrays batch driver: the vectorized DVFS control plane.

:class:`BatchSimulator` runs many :class:`BatchMCDProcessor` lanes at once.
Each lane's microarchitectural event loop stays scalar (the generator
``_lane_events`` in :mod:`repro.simcore.batchcore` -- seeds make the event
streams diverge immediately, so there is nothing to share below the sample
tick), but the lanes march in lock-step over the 4 ns sampling grid, and
*everything the reference does per sample* is executed here as NumPy
operations with the lane axis vectorized:

* **latch** -- queue occupancies and sleep flags arrive as each lane's
  reused yield buffer; one ``np.array`` call per round turns the batch into
  an ``[L, 3]`` block (domains in edge-tag order INT, FP, LS);
* **observe** -- the signal monitor (level/slope), both per-signal
  time-delay FSMs, trigger reconciliation, and regulator retarget run as
  masked array expressions whose float operand order is copied term by term
  from ``TimeDelayFsm.step`` / ``ActionScheduler.reconcile`` /
  ``VoltageRegulator.apply``, so every lane value is bit-identical to what
  the reference objects would have produced;
* **slew** -- the regulator ramp (`advance`), V(f) recompute, and clock
  retune happen on ``[L, 3]`` arrays; only the sparse set of (lane, domain)
  cells whose physical frequency actually changed get a scalar update tuple
  sent back into the lane generator;
* **wake selection** -- each lane's heapq remains its own wake wheel; the
  batch-level "next wake" is implicit in the lock-step round: every live
  lane runs exactly to its next sample event, so the driver's round loop is
  the argmin over the (identical) per-lane sample times.

Sleeping/exited lanes: a lane whose trace retires mid-batch raises
``StopIteration`` out of its generator; the driver snapshots its array
columns at that instant (the arrays keep being updated full-width -- the
snapshot is what makes post-exit churn harmless) and later folds the
snapshot back through ``BatchMCDProcessor._absorb_lane_state``, which
produces the exact ``SimulationResult`` the reference would return.

Float discipline: every scalar sent into a lane is cast to a Python
``float``/``int`` so lane-local arithmetic never silently promotes to
NumPy scalars (results are JSON-serialized by the cache layer); energy
coefficients come from the lane's interned :class:`SimTables`, keyed by the
exact voltage the vector slew produced.

Lanes that are not :func:`vector_eligible` (observability attached,
history recording, or non-adaptive controllers whose per-object state the
arrays do not model) simply run the inherited fast megaloop to completion
-- lanes never interact, so no interleaving is needed for them.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId
from repro.mcd.processor import _EDGE_TAG, FrequencyStepEvent, SimulationResult
from repro.simcore.batchcore import BatchMCDProcessor, vector_eligible
from repro.simcore.fast import FastMCDProcessor

_F64 = np.float64
#: controlled domains in edge-tag order; column j of every [L, 3] array
_DOM_BY_COL: Tuple[DomainId, ...] = tuple(CONTROLLED_DOMAINS)
#: FsmState -> int8 encoding used by the state arrays
_STATE_CODE = {"wait": 0, "count_up": 1, "count_down": -1}


class BatchSimulator:
    """Run a batch of ``BatchMCDProcessor`` lanes; return per-lane results.

    Lanes are partitioned into vector-eligible groups (keyed by sampling
    period, since rounds are lock-stepped on the sample grid) and scalar
    stragglers; every lane's result is bit-identical to ``ref``.
    """

    def __init__(self, procs: List[BatchMCDProcessor]) -> None:
        if not procs:
            raise ValueError("BatchSimulator needs at least one lane")
        self.procs = list(procs)

    def run(self) -> List[SimulationResult]:
        results: List[Optional[SimulationResult]] = [None] * len(self.procs)
        groups: Dict[float, List[int]] = {}
        for i, proc in enumerate(self.procs):
            if vector_eligible(proc):
                groups.setdefault(proc.config.sample_period_ns, []).append(i)
            else:
                # Scalar straggler: lanes never interact, so the inherited
                # fast megaloop (bit-identical by contract) just runs it.
                results[i] = FastMCDProcessor.run(proc)
        for indices in groups.values():
            lanes = [self.procs[i] for i in indices]
            for i, result in zip(indices, _run_vector_group(lanes)):
                results[i] = result
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# the vectorized group
# ----------------------------------------------------------------------


def _run_vector_group(lanes: List[BatchMCDProcessor]) -> List[SimulationResult]:
    state = _GroupState(lanes)
    gens: List[Optional[Generator]] = []
    # prime: advance every lane to its first sample yield (t = dt)
    for i, lane in enumerate(lanes):
        gen = lane._lane_events()
        try:
            state.bufs[i] = next(gen)
            gens.append(gen)
        except StopIteration as stop:
            # trace retired before the first sample tick (tiny traces);
            # zero samples processed, arrays still at their initial state
            gens.append(None)
            state.exit_lane(i, stop.value)
    now = 0.0
    dt = state.dt
    while state.live:
        now = now + dt  # same accumulation sequence as the lanes' heaps
        updates = state.control_round(now)
        for i in list(state.live):
            gen = gens[i]
            assert gen is not None
            # Whether the lane reaches the next sample or retires first,
            # it fully processed *this* round's sample event.
            state.samples[i] += 1
            try:
                gen.send(updates.get(i))
            except StopIteration as stop:
                gens[i] = None
                state.exit_lane(i, stop.value)
    return [state.extract(i) for i in range(len(lanes))]


class _GroupState:  # statcheck: vector-state=BatchMCDProcessor
    """All [L, 3] control-plane arrays for one lock-step group."""

    #: per-round state with no scalar write-back: the reference discards
    #: these too (monitor/FSM internals die with the run; busy windows
    #: and absorbed-elsewhere buffers are folded in via snapshots)
    _DRIVER_INTERNAL = frozenset(
        {
            "prev",
            "has_prev",
            "busy_until",
            "state_level",
            "state_slope",
            "counter_level",
            "counter_slope",
        }
    )

    def __init__(self, lanes: List[BatchMCDProcessor]) -> None:
        self.lanes = lanes
        length = len(lanes)
        self.dt = lanes[0].config.sample_period_ns
        #: each lane's (reused) yield buffer, collected at prime time --
        #: rows stay identity-stable so one np.array call latches the batch.
        #: Exited lanes keep their last (or placeholder) row: their values
        #: are masked out of everything their snapshot doesn't already hold.
        self.bufs: List[Any] = [[0, 0, 0, False, False, False] for _ in lanes]
        self.live: set = set(range(length))
        self.active = np.ones(length, dtype=bool)
        #: sample count per lane (== yields received; prime is sample 1)
        self.samples = [0] * length
        for i, lane in enumerate(lanes):
            self.samples[i] = lane._freq_samples  # fresh lanes: 0
        self.finish_ns = [0.0] * length
        self.snapshots: List[Optional[Tuple]] = [None] * length

        def cfg_col(fn) -> np.ndarray:
            return np.array([[fn(lane)] for lane in lanes], dtype=_F64)

        # -- machine / regulator config, one column per lane ------------
        cfg = [lane.config for lane in lanes]
        self.f_min = cfg_col(lambda p: p.config.f_min_ghz)
        self.f_max = cfg_col(lambda p: p.config.f_max_ghz)
        self.fspan = self.f_max - self.f_min
        self.v_min = cfg_col(lambda p: p.config.v_min)
        self.vspan = cfg_col(lambda p: p.config.v_max) - self.v_min
        self.step_ghz = cfg_col(lambda p: p.config.step_ghz)
        #: regulator.advance's max_move = slew_ghz_per_ns * dt, per lane
        self.max_move = np.array(
            [
                [lane.regulators[d].slew_ghz_per_ns * self.dt for d in _DOM_BY_COL]
                for lane in lanes
            ],
            dtype=_F64,
        )
        self.relock = cfg_col(lambda p: p.config.relock_idle_ns)
        self.stalls = np.array(
            [[c.stalls_during_transition] for c in cfg], dtype=bool
        )

        # -- regulator state --------------------------------------------
        def reg_arr(fn) -> np.ndarray:
            return np.array(
                [[fn(lane.regulators[d]) for d in _DOM_BY_COL] for lane in lanes],
                dtype=_F64,
            )

        self.cur = reg_arr(lambda r: r._current_ghz)
        self.tgt = reg_arr(lambda r: r._target_ghz)
        self.volt = reg_arr(lambda r: r._voltage)
        self.travel = reg_arr(lambda r: r.total_travel_ghz)
        self.trans = np.array(
            [
                [lane.regulators[d].transitions for d in _DOM_BY_COL]
                for lane in lanes
            ],
            dtype=np.int64,
        )
        self.fsum = np.array(
            [[lane._freq_sum[d] for d in _DOM_BY_COL] for lane in lanes],
            dtype=_F64,
        )

        # -- controller state (adaptive lanes; zeros elsewhere) ----------
        self.has_ctrl = np.array(
            [[bool(lane.controllers)] for lane in lanes], dtype=bool
        )

        def ctrl_arr(fn, default: float = 0.0, dtype=_F64) -> np.ndarray:
            rows = []
            for lane in lanes:
                if lane.controllers:
                    rows.append([fn(lane.controllers[d]) for d in _DOM_BY_COL])
                else:
                    rows.append([default] * 3)
            return np.array(rows, dtype=dtype)

        self.q_ref = ctrl_arr(lambda c: c.monitor.q_ref)
        self.prev = ctrl_arr(lambda c: c.monitor._prev or 0)
        self.has_prev = ctrl_arr(
            lambda c: c.monitor._prev is not None, dtype=bool
        )
        self.dw_level = ctrl_arr(lambda c: c.level_fsm.deviation_window)
        self.dw_slope = ctrl_arr(lambda c: c.slope_fsm.deviation_window)
        self.delay_level = ctrl_arr(lambda c: c.level_fsm.delay, default=1.0)
        self.delay_slope = ctrl_arr(lambda c: c.slope_fsm.delay, default=1.0)
        self.scale_level = ctrl_arr(lambda c: c.level_fsm.scale)
        self.scale_slope = ctrl_arr(lambda c: c.slope_fsm.scale)
        self.signal_scaled = ctrl_arr(
            lambda c: c.level_fsm.signal_scaled, dtype=bool
        )
        self.freq_scaled_down = ctrl_arr(
            lambda c: c.level_fsm.freq_scaled_down, dtype=bool
        )
        self.use_slope = ctrl_arr(lambda c: c.config.use_slope_signal, dtype=bool)
        self.combine = ctrl_arr(
            lambda c: c.scheduler.combine_actions, dtype=bool
        )
        self.switching = ctrl_arr(lambda c: c.scheduler.switching_time_ns)
        self.busy_until = ctrl_arr(lambda c: c.scheduler._busy_until_ns)
        self.state_level = ctrl_arr(
            lambda c: _STATE_CODE[c.level_fsm.state.value], dtype=np.int8
        )
        self.state_slope = ctrl_arr(
            lambda c: _STATE_CODE[c.slope_fsm.state.value], dtype=np.int8
        )
        self.counter_level = ctrl_arr(lambda c: c.level_fsm.counter)
        self.counter_slope = ctrl_arr(lambda c: c.slope_fsm.counter)

        # -- background-energy params (edge-tag columns INT, FP, LS) -----
        def par_arr(k: int) -> np.ndarray:
            return np.array(
                [
                    [lane._tables.params_by_tag[tag][k] for tag in (1, 2, 3)]
                    for lane in lanes
                ],
                dtype=_F64,
            )

        self.c_eff = par_arr(0)
        self.gated_frac = par_arr(3)
        self.leak_frac = par_arr(4)
        self.fe_bg = np.array(
            [lane._tables.fe_background_e for lane in lanes], dtype=_F64
        )
        self.bg_acc = np.zeros((length, 4), dtype=_F64)

    # ------------------------------------------------------------------

    def _fsm_step(
        self,
        signal: np.ndarray,
        f_rel2: np.ndarray,
        eligible: np.ndarray,
        which: str,
    ) -> np.ndarray:
        """Vectorized ``TimeDelayFsm.step`` for one signal across the batch.

        Mutates the state/counter arrays for eligible cells only (the
        reference holds the FSMs while the scheduler is busy) and returns
        the per-cell trigger (-1/0/+1, int8).  Term-for-term transcription
        of ``TimeDelayFsm.step``.
        """
        if which == "level":
            state, counter = self.state_level, self.counter_level
            dw, delay, scale = self.dw_level, self.delay_level, self.scale_level
        else:
            state, counter = self.state_slope, self.counter_slope
            dw, delay, scale = self.dw_slope, self.delay_slope, self.scale_slope
        # ref: inside the deviation window -> reset, no trigger
        inside = (signal >= -dw) & (signal <= dw)
        m_in = eligible & inside
        state[m_in] = 0
        counter[m_in] = 0.0
        # ref: direction = 1 if signal > 0 else -1; restart on side-cross
        m_out = eligible & ~inside
        dirn = np.where(signal > 0, 1, -1).astype(np.int8)
        restart = m_out & (state != dirn)
        counter[restart] = 0.0
        state[m_out] = dirn[m_out]
        # ref: increment = scale * (|signal| if signal_scaled else 1.0),
        #      then *= f_rel^2 for a count-down with freq-scaled delay
        inc = np.where(self.signal_scaled, scale * np.abs(signal), scale)
        inc = np.where((dirn < 0) & self.freq_scaled_down, inc * f_rel2, inc)
        counter[m_out] = (counter + inc)[m_out]
        # ref: counter >= delay -> trigger and reset to Wait
        trig = m_out & (counter >= delay)
        counter[trig] = 0.0
        state[trig] = 0
        return np.where(trig, dirn, np.int8(0))

    def control_round(self, now: float) -> Dict[int, List[Tuple]]:
        """One sample tick across the batch: observe, slew, energy.

        Mirrors the reference ``_sample`` phases (occupancies were latched
        by the lanes into their yield buffers); returns the sparse per-lane
        update lists to send back into the lane generators.
        """
        lanes = self.lanes
        latch = np.array(self.bufs, dtype=_F64)  # [L, 6]
        occf = latch[:, :3]
        slp = latch[:, 3:] != 0.0

        # -- observe ----------------------------------------------------
        # ref: SignalMonitor.sample -- prev updates on *every* sample,
        # before the busy check; first sample has zero slope
        level = occf - self.q_ref
        slope = np.where(self.has_prev, occf - self.prev, 0.0)
        self.prev = occf
        self.has_prev |= True
        # ref: scheduler.busy(now) -> hold (monitor already sampled)
        eligible = self.has_ctrl & (now >= self.busy_until)
        # ref: f_rel = min(1.0, freq / f_max), squared for the down-scale
        f_rel = np.minimum(1.0, self.cur / self.f_max)
        f_rel2 = f_rel * f_rel
        lt = self._fsm_step(level, f_rel2, eligible, "level")
        st = self._fsm_step(slope, f_rel2, eligible & self.use_slope, "slope")
        # ref: ActionScheduler.reconcile -- opposite triggers cancel (both
        # FSMs already reset themselves on trigger), identical combine,
        # single trigger passes through; serialize takes the level action
        both = (lt != 0) & (st != 0)
        same = both & (lt == st)
        single = (lt != 0) ^ (st != 0)
        steps = np.where(single, lt + st, np.int8(0))
        steps = np.where(same, np.where(self.combine, lt + st, lt), steps)
        act = (single | same) & self.active[:, None]
        if act.any():
            stepf = steps.astype(_F64)
            self.busy_until = np.where(
                act, now + self.switching * np.abs(stepf), self.busy_until
            )
            # ref: VoltageRegulator.apply -- clamp(target + steps * step)
            new_tgt = np.minimum(
                self.f_max, np.maximum(self.f_min, self.tgt + stepf * self.step_ghz)
            )
            applied = act & (np.abs(new_tgt - self.tgt) > 1e-12)
            self.trans += applied
            self.tgt = np.where(applied, new_tgt, self.tgt)
            # ref: _apply_command -- FrequencyStepEvent recorded per
            # command (applied or not), pre-slew freq, post-apply target
            pause_rows = applied & self.stalls
            for row in np.argwhere(act):
                lane_i = int(row[0])
                col = int(row[1])
                lanes[lane_i].step_events.append(
                    FrequencyStepEvent(
                        time_ns=now,
                        domain=_DOM_BY_COL[col],
                        steps=int(steps[lane_i, col]),
                        target_ghz=float(self.tgt[lane_i, col]),
                        freq_ghz=float(self.cur[lane_i, col]),
                        applied=bool(applied[lane_i, col]),
                    )
                )
        else:
            pause_rows = None

        # -- slew -------------------------------------------------------
        # ref: VoltageRegulator.advance(dt): clamp the move to the slew
        # envelope, snap within 1e-12, then recompute V(f).  Where there is
        # no transition the move is exactly 0.0 and x + 0.0 == x bit-wise.
        cur_before = self.cur
        delta = self.tgt - cur_before
        move = np.maximum(-self.max_move, np.minimum(self.max_move, delta))
        cur = cur_before + move
        self.travel = self.travel + np.abs(move)
        cur = np.where(np.abs(self.tgt - cur) < 1e-12, self.tgt, cur)
        self.cur = cur
        # ref: MachineConfig.voltage_for -- pure in cur, so the full-array
        # recompute reproduces cached values bit-exactly
        alpha = (cur - self.f_min) / self.fspan
        alpha = np.minimum(1.0, np.maximum(0.0, alpha))
        self.volt = self.v_min + alpha * self.vspan
        changed = cur != cur_before
        # ref: _freq_sum[domain] += current (post-advance)
        self.fsum = self.fsum + cur

        # -- background energy (ref: PowerModel.background per domain) ---
        v = self.volt
        leak = self.c_eff * v * v * self.leak_frac
        gated_rate = self.c_eff * v * v * self.gated_frac * cur
        dt = self.dt
        bg = np.where(slp, (leak + gated_rate) * dt, leak * dt)
        self.bg_acc[:, 1:] += bg
        self.bg_acc[:, 0] += self.fe_bg

        # -- sparse updates back into the lanes -------------------------
        updates: Dict[int, List[Tuple]] = {}
        send = changed if pause_rows is None else (changed | pause_rows)
        send = send & self.active[:, None]
        if send.any():
            for row in np.argwhere(send):
                lane_i = int(row[0])
                col = int(row[1])
                freq = float(cur[lane_i, col])
                tag = col + 1
                lane = lanes[lane_i]
                # exact same expressions as the lane's inline refresh,
                # memoized per (tag, voltage) in the interned tables
                coeffs = lane._tables.coeff_for(tag, float(v[lane_i, col]))
                pz = None
                if pause_rows is not None and pause_rows[lane_i, col]:
                    pz = float(now + self.relock[lane_i, 0])
                updates.setdefault(lane_i, []).append(
                    (tag, freq, 1.0 / freq, coeffs[0], coeffs[1], coeffs[2], pz)
                )
        return updates

    # ------------------------------------------------------------------

    def exit_lane(self, i: int, finish_ns: float) -> None:
        """Snapshot lane ``i``'s array columns the instant it retires."""
        self.live.discard(i)
        self.active[i] = False
        self.finish_ns[i] = float(finish_ns)
        self.snapshots[i] = (
            self.cur[i].copy(),
            self.tgt[i].copy(),
            self.volt[i].copy(),
            self.travel[i].copy(),
            self.trans[i].copy(),
            self.fsum[i].copy(),
            self.bg_acc[i].copy(),
        )

    def extract(self, i: int) -> SimulationResult:
        """Fold lane ``i``'s snapshot back into its processor's result."""
        snap = self.snapshots[i]
        assert snap is not None
        cur, tgt, volt, travel, trans, fsum, bg = snap
        reg_state = [
            (
                float(cur[j]),
                float(tgt[j]),
                float(volt[j]),
                float(travel[j]),
                int(trans[j]),
            )
            for j in range(3)
        ]
        return self.lanes[i]._absorb_lane_state(
            self.finish_ns[i],
            self.samples[i],
            (float(fsum[0]), float(fsum[1]), float(fsum[2])),
            (float(bg[0]), float(bg[1]), float(bg[2]), float(bg[3])),
            reg_state,
        )


__all__ = ["BatchSimulator"]
