"""Hot-path markers consumed by the PERF001 statcheck rule.

Decorating a function with :func:`hot_path` declares it part of the
simulator's per-cycle inner loop: the PERF001 rule then flags any dict/list/
set literal, comprehension, or ``dict()``/``list()``/``set()`` constructor
call inside it, because per-cycle allocation churn is exactly what the fast
core exists to eliminate.  The decorator itself is a no-op at runtime.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as a per-cycle hot loop for static analysis (no-op)."""
    fn.__hot_path__ = True  # type: ignore[attr-defined]
    return fn
