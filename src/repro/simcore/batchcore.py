"""Batch core lane machinery: the per-lane event stepper.

``BatchMCDProcessor`` is the third simulation core (``REPRO_SIMCORE=batch``).
One instance is one *lane* of a structure-of-arrays batch: the
microarchitectural event loop (clock edges, fetch/dispatch, issue, memory
access, wake/sleep) stays a scalar Python megaloop per lane -- rewritten as
the generator method :meth:`BatchMCDProcessor._lane_events`, which *suspends
at every 4 ns sampling event* instead of running the control plane inline.
The driver (:class:`repro.simcore.soa.BatchSimulator`) resumes every lane
once per sample tick and executes the whole control plane -- adaptive FSMs,
regulator slew ramps, background energy, mean-frequency accumulators -- as
NumPy operations over the lane axis, then pushes the resulting frequency /
energy-coefficient updates back into each lane.

The generator is derived from ``FastMCDProcessor.run()`` and keeps its
bit-identity rules (float operand order, ``rng.gauss`` call order, heap push
order).  On top of the fast core's megaloop it flattens the remaining
per-event object traffic:

* **flat completion array** -- the reference's ``Dict[int, float]``
  completion map and per-``RobEntry`` ``done_ns`` collapse into one list
  indexed by instruction index, initialised to ``+inf`` (= "not complete",
  the reference's ``None``/unset states) with a ``-inf`` sentinel slot that
  absent source operands point at, removing two ``None`` checks per
  dependency test;
* **flat ROB** -- in-order dispatch means the ROB always holds a contiguous
  instruction-index range, so the entry deque and by-index dict become two
  integers (head index, tail == next fetch index);
* **per-instruction field arrays** -- ``src1``/``src2``/``pc``/``addr``/
  ``taken``/``target`` and the I-cache line are pre-extracted from the trace
  once, replacing per-event dataclass attribute loads;
* **queue entries as 2-lists** -- ``[visible_ns, index]`` instead of
  ``QueueEntry`` objects (the scan algorithms, including identity-based
  removal, are unchanged).

None of these change any arithmetic: they re-index the same values.  The
golden-equivalence suite runs against this core end to end
(``REPRO_GOLDEN_OTHER=batch``).

A lane that the vectorized control plane cannot serve bit-identically --
observability attached, history recording, or a non-adaptive controller set
(PID / attack-decay / centralized wrappers hold per-object state the driver
does not vectorize) -- falls back to the inherited fast megaloop, which is
bit-identical by the existing contract.  ``vector_eligible`` is that
predicate; :mod:`repro.simcore.soa` and :meth:`BatchMCDProcessor.run` share
it.

Post-run object state: like the fast core, the batch lane writes back every
attribute a ``SimulationResult`` is derived from.  Transient structures the
reference only mutates mid-run (live ``RobEntry``/``QueueEntry`` objects,
the completion dict) are empty at retirement and are not materialized.
Controller-internal state (FSM counters, monitor history, scheduler busy
windows) lives in the driver's arrays and is deliberately not written back
into the controller objects -- no result field reads them.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import ceil
from typing import Any, Generator, List, Optional, Tuple

from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId
from repro.mcd.processor import SimulationResult
from repro.simcore.fast import FastMCDProcessor
from repro.simcore.markers import hot_path
from repro.simcore.tables import SimTables

_INF = float("inf")

#: lane -> driver payload, reused per yield:
#: [occ_int, occ_fp, occ_ls, sleeping_int, sleeping_fp, sleeping_ls]
SampleOut = List[Any]
#: driver -> lane: per-domain updates, or None when nothing changed this
#: sample: (edge_tag, freq_ghz, period_ns, active_base_e, active_slope_e,
#: gated_e, pause_until_or_None)
LaneUpdate = Optional[List[Tuple[int, float, float, float, float, float, Optional[float]]]]


def vector_eligible(proc: "BatchMCDProcessor") -> bool:
    """Can the SoA driver run this lane's control plane bit-identically?

    The vector plane covers exactly the reference ``_sample`` semantics for
    lanes with no observability, no history recording, and either no
    controllers (full-speed) or one plain :class:`AdaptiveDvfsController`
    per controlled domain.  Everything else (PID integrators, attack/decay
    interval state, centralized coordination wrappers, probe tracing)
    keeps per-object state the arrays do not model, so those lanes run the
    inherited fast megaloop instead.
    """
    if not isinstance(proc, BatchMCDProcessor):
        return False
    if proc.obs is not None or proc.record_history:
        return False
    controllers = proc.controllers
    if not controllers:
        return True
    if set(controllers) != set(CONTROLLED_DOMAINS):
        return False
    return all(
        type(ctrl) is AdaptiveDvfsController for ctrl in controllers.values()
    )


class BatchMCDProcessor(FastMCDProcessor):
    """One lane of the structure-of-arrays batch core.

    Construction and results match ``MCDProcessor`` exactly.  Standalone
    (``create_processor(..., simcore="batch")``) it simulates itself as a
    one-lane batch through the SoA driver when eligible, else through the
    inherited fast megaloop; either way the ``SimulationResult`` is
    bit-identical to the reference.
    """

    def __init__(self, *args: object, tables: Optional[SimTables] = None, **kwargs: object) -> None:
        super().__init__(*args, tables=tables, **kwargs)
        # --- flat per-instruction field arrays (index = inst.index) -------
        n = len(self._lat_arr)
        sentinel = n
        src1 = [sentinel] * n
        src2 = [sentinel] * n
        pcs = [0] * n
        addrs = [0] * n
        takens: List[Any] = [False] * n
        targets: List[Any] = [None] * n
        lines = [0] * n
        line_size = self.config.line_size
        for inst in self.trace:
            i = inst.index
            if inst.src1 is not None:
                src1[i] = inst.src1
            if inst.src2 is not None:
                src2[i] = inst.src2
            pc = inst.pc
            pcs[i] = pc
            lines[i] = pc // line_size
            if inst.addr is not None:
                addrs[i] = inst.addr
            takens[i] = inst.taken
            targets[i] = inst.target
        self._src1_arr = src1
        self._src2_arr = src2
        self._pc_arr = pcs
        self._addr_arr = addrs
        self._taken_arr = takens
        self._target_arr = targets
        self._line_arr = lines
        self._sentinel = sentinel
        #: driver-visible sample payload buffer (reused every yield)
        self._sample_out: SampleOut = [0, 0, 0, False, False, False]

    # ------------------------------------------------------------------

    def run(self, max_time_ns: Optional[float] = None) -> SimulationResult:
        """Simulate this lane; eligible lanes ride a one-lane SoA batch."""
        if max_time_ns is None and vector_eligible(self):
            try:
                from repro.simcore.soa import BatchSimulator
            except ImportError:
                # numpy unavailable: degrade to the fast megaloop, which is
                # bit-identical (repro.simcore warns once at selection time)
                return super().run(max_time_ns)
            return BatchSimulator([self]).run()[0]
        return super().run(max_time_ns)

    # ------------------------------------------------------------------
    # the lane event stepper
    # ------------------------------------------------------------------

    @hot_path
    def _lane_events(self) -> Generator[SampleOut, LaneUpdate, float]:  # noqa: C901
        """Event megaloop as a generator: yields at every sample event.

        Yields the sample payload (queue occupancies + sleep flags); the
        driver sends back a :data:`LaneUpdate` after running the control
        plane.  Returns the finish time (last front-end activity) via
        ``StopIteration.value``; the driver then writes its array state
        back and calls ``self._result(finish_ns)``.

        Derived line by line from ``FastMCDProcessor.run()`` -- ``ref:``
        comments tie blocks to the reference implementation.  Bit-identity
        rules apply to every edit (operand order, gauss call order, heap
        push order).
        """
        cfg = self.config
        # ref: generous cutoff, identical expression
        max_time_ns = len(self.trace) * 25.0 / cfg.f_min_ghz + 1e5

        # --- bind everything to locals --------------------------------
        trace_len = len(self.trace)
        wheel = self._wheel
        heap = wheel.heap
        seq = wheel.seq
        sleeping = wheel.sleeping
        timer_target = wheel.timer_target
        wake_gen = wheel.wake_gen
        pause = self._pause_until

        clocks = [
            self.clocks[DomainId.FRONT_END],
            self.clocks[DomainId.INT],
            self.clocks[DomainId.FP],
            self.clocks[DomainId.LS],
        ]
        sigma = cfg.jitter_sigma_ns
        gauss = [c._rng.gauss for c in clocks]
        freqs = [c._freq_ghz for c in clocks]
        periods = [1.0 / f for f in freqs]
        neg04 = [-0.4 * p for p in periods]
        pos04 = [0.4 * p for p in periods]
        next_edge = [c._next_edge_ns for c in clocks]
        fe_period = periods[0]  # the front-end clock never retunes

        rob = self.rob
        rob_cap = rob.capacity
        retire_width = cfg.retire_width
        rob_head = 0  # instruction index of the ROB head; tail == fe_next
        retired_total = 0

        # flat completion: +inf = not complete (ref dict-miss / RobEntry
        # default); slot [sentinel] = -inf so absent operands always pass
        comp = [_INF] * (self._sentinel + 1)
        comp[self._sentinel] = -_INF
        src1_arr = self._src1_arr
        src2_arr = self._src2_arr
        pc_arr = self._pc_arr
        addr_arr = self._addr_arr
        taken_arr = self._taken_arr
        target_arr = self._target_arr
        line_arr = self._line_arr

        # queue entries as [visible_ns, index] 2-lists; the queues end the
        # run empty, so the internal representation never escapes
        ent_int: List[List[float]] = []
        ent_fp: List[List[float]] = []
        ent_ls: List[List[float]] = []
        entries_by_tag = [None, ent_int, ent_fp, ent_ls]
        q_int = self.queues[DomainId.INT]
        q_fp = self.queues[DomainId.FP]
        q_ls = self.queues[DomainId.LS]
        qcap_by_tag = [0, q_int.capacity, q_fp.capacity, q_ls.capacity]
        dom_int = self.domains[DomainId.INT]
        dom_fp = self.domains[DomainId.FP]
        dom_ls = self.domains[DomainId.LS]
        width_by_tag = [0, dom_int.issue_width, dom_fp.issue_width, dom_ls.issue_width]
        alu_by_tag = [None, dom_int._alu._busy_until, dom_fp._alu._busy_until]
        md_by_tag = [None, dom_int._muldiv._busy_until, dom_fp._muldiv._busy_until]
        issued_by_tag = [0, 0, 0, 0]
        ls_ports = dom_ls._ports._busy_until
        sb = dom_ls.store_buffer
        sb_drains = sb._drains
        sb_popleft = sb_drains.popleft
        sb_cap = sb.capacity
        sb_full_stalls = 0
        sb_total_stores = 0
        ls_loads = 0
        ls_stores = 0
        l1w_cycles = dom_ls._l1_write_cycles

        fe = self.frontend
        fe_next = fe.next_index
        fe_dispatched = fe.dispatched
        fe_icache_until = fe._icache_stall_until
        fe_blocked = -1  # blocked-branch instruction index; -1 = clear
        fe_last_line = fe._last_fetch_line
        fe_last_stall = fe.last_stall
        fe_sleeping = self._fe_sleeping
        dispatch_width = cfg.dispatch_width
        mp_pen_ns = cfg.mispredict_penalty_cycles * fe_period
        predictor_resolve = self.predictor.resolve

        hier = self.hierarchy
        l1i_access = hier.l1i.access
        l1d_access = hier.l1d.access
        l2_access = hier.l2.access
        l1_hit_cycles = hier.l1_hit_cycles
        l2_hit_cycles = hier.l2_hit_cycles
        mem_lat_ns = hier.memory_latency_ns
        mem_accesses = 0

        sync = self.sync
        sync_window = sync.sync_window_ns
        sync_transfers = sync._transfers
        sync_deferred = sync._deferred

        lat_arr = self._lat_arr
        busy_arr = self._busy_arr
        tag_arr = self._tag_arr
        md_arr = self._muldiv_arr
        store_arr = self._store_arr
        branch_arr = self._branch_arr

        ebt = self._energy_by_tag
        abe = self._active_base_e
        ase = self._active_slope_e
        ge = self._gated_e
        iw = self._inv_width
        abe0 = abe[0]
        ase0 = ase[0]
        ge0 = ge[0]
        iw0 = iw[0]

        dt = cfg.sample_period_ns
        sbuf = self._sample_out
        issued_buf = self._issued_buf

        # --- initial events (ref push order: FE, INT, FP, LS, sample) -----
        for tag in (0, 1, 2, 3):
            seq += 1
            heappush(heap, (next_edge[tag], tag, seq, 0))
        seq += 1
        heappush(heap, (dt, 4, seq, 0))

        finish_ns = 0.0
        time_ns = self._now

        while fe_next < trace_len or rob_head < fe_next:
            ev = heappop(heap)
            time_ns = ev[0]
            tag = ev[1]
            if time_ns > max_time_ns:
                raise RuntimeError(
                    f"simulation exceeded max_time_ns={max_time_ns:.0f} "
                    f"({retired_total}/{trace_len} retired)"
                )

            if tag < 3:
                if tag:
                    # ==================================================
                    # INT / FP execution-domain edge (ref: _domain_cycle)
                    # ==================================================
                    per = periods[tag]
                    # ref: clock.advance()
                    if sigma:
                        j = gauss[tag](0.0, sigma)
                        lo = neg04[tag]
                        hi = pos04[tag]
                        if j < lo:
                            j = lo
                        elif j > hi:
                            j = hi
                        next_edge[tag] = time_ns + per + j
                    else:
                        next_edge[tag] = time_ns + per
                    if time_ns < pause[tag]:
                        # Transmeta-style relock idle: gated + timer sleep
                        ebt[tag] += ge[tag]
                        sleeping[tag] = True
                        pu = pause[tag]
                        timer_target[tag] = pu
                        wake_gen[tag] = g = wake_gen[tag] + 1
                        seq += 1
                        heappush(heap, (pu, tag + 4, seq, g))
                        continue
                    # ref: ExecutionDomain.cycle
                    entries = entries_by_tag[tag]
                    width = width_by_tag[tag]
                    issued = 0
                    for entry in entries:
                        if issued >= width:
                            break
                        if entry[0] > time_ns:
                            continue
                        idx = entry[1]
                        d = comp[src1_arr[idx]]
                        if d > time_ns:
                            continue
                        d = comp[src2_arr[idx]]
                        if d > time_ns:
                            continue
                        busy = md_by_tag[tag] if md_arr[idx] else alu_by_tag[tag]
                        i = 0
                        nb = len(busy)
                        while i < nb:
                            if busy[i] <= time_ns:
                                busy[i] = time_ns + busy_arr[idx] * per
                                break
                            i += 1
                        else:
                            continue  # no free functional unit
                        done_ns = time_ns + lat_arr[idx] * per
                        # ref: rob.mark_done (+ head-done FE wake)
                        comp[idx] = done_ns
                        if (
                            fe_sleeping
                            and rob_head < fe_next
                            and idx == rob_head
                        ):
                            wake_ns = done_ns if done_ns > time_ns else time_ns
                            fe_sleeping = False
                            ne0 = next_edge[0]
                            if wake_ns > ne0:
                                next_edge[0] = ne0 + ceil(
                                    (wake_ns - ne0) / fe_period
                                ) * fe_period
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                        issued_buf.append(entry)
                        issued += 1
                    if issued:
                        qcap = qcap_by_tag[tag]
                        for entry in issued_buf:
                            # ref: queue.remove (+ slot-freed FE wake)
                            was_full = len(entries) >= qcap
                            k = 0
                            while entries[k] is not entry:
                                k += 1
                            del entries[k]
                            if was_full and fe_sleeping:
                                fe_sleeping = False
                                ne0 = next_edge[0]
                                if time_ns > ne0:
                                    next_edge[0] = ne0 + ceil(
                                        (time_ns - ne0) / fe_period
                                    ) * fe_period
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                        del issued_buf[:]
                        issued_by_tag[tag] += issued
                        utilization = issued * iw[tag]
                        if utilization > 1.0:
                            utilization = 1.0
                        ebt[tag] += abe[tag] + ase[tag] * utilization
                    else:
                        ebt[tag] += ge[tag]
                        alu = alu_by_tag[tag]
                        md = md_by_tag[tag]
                        if (
                            not entries
                            and max(alu) <= time_ns
                            and max(md) <= time_ns
                        ):
                            # ref: is_idle -> pure sleep, next dispatch wakes
                            sleeping[tag] = True
                            timer_target[tag] = None
                            wake_gen[tag] += 1
                            continue
                        # ref: stall_hint (next_ready_hint inline)
                        best = _INF
                        for entry in entries:
                            v = entry[0]
                            if v > time_ns:
                                if v < best:
                                    best = v
                                continue
                            ready = v
                            idx = entry[1]
                            d = comp[src1_arr[idx]]
                            if d == _INF:
                                best = _INF
                                break
                            if d > ready:
                                ready = d
                            d = comp[src2_arr[idx]]
                            if d == _INF:
                                best = _INF
                                break
                            if d > ready:
                                ready = d
                            if ready <= time_ns:
                                best = _INF
                                break
                            if ready < best:
                                best = ready
                        else:
                            if best != _INF and best > time_ns + 2.0 * per:
                                sleeping[tag] = True
                                timer_target[tag] = best
                                wake_gen[tag] = g = wake_gen[tag] + 1
                                seq += 1
                                heappush(heap, (best, tag + 4, seq, g))
                                continue
                    seq += 1
                    heappush(heap, (next_edge[tag], tag, seq, 0))
                else:
                    # ==================================================
                    # front-end edge (ref: _front_end_cycle)
                    # ==================================================
                    # ref: clock.advance()
                    if sigma:
                        j = gauss[0](0.0, sigma)
                        lo = neg04[0]
                        hi = pos04[0]
                        if j < lo:
                            j = lo
                        elif j > hi:
                            j = hi
                        next_edge[0] = time_ns + fe_period + j
                    else:
                        next_edge[0] = time_ns + fe_period
                    # ref: rob.retire(now, retire_width)
                    retired_now = 0
                    while retired_now < retire_width and rob_head < fe_next:
                        if comp[rob_head] > time_ns:
                            break
                        rob_head += 1
                        retired_now += 1
                    retired_total += retired_now
                    fe_last_stall = None
                    dispatched = 0
                    if fe_next >= trace_len:
                        fe_last_stall = "trace_done"
                    elif (
                        fe_blocked >= 0
                        and comp[fe_blocked] + mp_pen_ns > time_ns
                    ):
                        # ref: _redirect_clear False -> mispredict redirect
                        fe_last_stall = "branch"
                    elif fe_icache_until > time_ns:
                        # redirect (if any) cleared; I-fetch still stalled
                        fe_blocked = -1
                        fe_last_stall = "icache"
                    else:
                        fe_blocked = -1
                        # ref: _fetch_and_dispatch
                        budget = dispatch_width
                        while budget:
                            budget -= 1
                            if fe_next >= trace_len:
                                break
                            idx = fe_next
                            line = line_arr[idx]
                            if line != fe_last_line:
                                # ref: _icache_miss
                                fe_last_line = line
                                pc = pc_arr[idx]
                                if not l1i_access(pc):
                                    l2_hit = l2_access(pc)
                                    if not l2_hit:
                                        mem_accesses += 1
                                    cycles = l1_hit_cycles + l2_hit_cycles
                                    fixed = 0.0 if l2_hit else mem_lat_ns
                                    extra = cycles - l1_hit_cycles
                                    fe_icache_until = (
                                        time_ns + extra * fe_period + fixed
                                    )
                                    if dispatched == 0:
                                        fe_last_stall = "icache"
                                    break
                            if fe_next - rob_head >= rob_cap:
                                if dispatched == 0:
                                    fe_last_stall = "rob_full"
                                break
                            dtag = tag_arr[idx]
                            q_entries = entries_by_tag[dtag]
                            if len(q_entries) >= qcap_by_tag[dtag]:
                                if dispatched == 0:
                                    fe_last_stall = "queue_full"
                                break
                            # ref: rob.allocate -- the flat ROB tail is
                            # fe_next itself (in-order dispatch)
                            # ref: sync.arrival_time(now + period, dst_clock)
                            t_ready = time_ns + fe_period
                            ne = next_edge[dtag]
                            per = periods[dtag]
                            if t_ready <= ne:
                                edge2 = ne
                            else:
                                edge2 = ne + ceil((t_ready - ne) / per) * per
                            sync_transfers += 1
                            if edge2 - t_ready < sync_window:
                                sync_deferred += 1
                                edge2 += per
                            q_entries.append([edge2, idx])  # statcheck: disable=PERF001 -- the 2-list IS the queue entry (flat analogue of fast.py's per-dispatch QueueEntry); one allocation per dispatched instruction is the contract, not loop overhead
                            # ref: on_dispatch -> wake a sleeping domain
                            if sleeping[dtag]:
                                wake_ns = edge2
                                tt = timer_target[dtag]
                                if tt is not None and tt < wake_ns:
                                    wake_ns = tt
                                sleeping[dtag] = False
                                timer_target[dtag] = None
                                wake_gen[dtag] += 1
                                if wake_ns > ne:
                                    ne += ceil((wake_ns - ne) / per) * per
                                    next_edge[dtag] = ne
                                seq += 1
                                heappush(heap, (next_edge[dtag], dtag, seq, 0))
                            fe_next += 1
                            dispatched += 1
                            if branch_arr[idx]:
                                if not predictor_resolve(
                                    pc_arr[idx], taken_arr[idx], target_arr[idx]
                                ):
                                    fe_blocked = idx
                                    break
                        fe_dispatched += dispatched
                    # ref: _front_end_cycle energy + reschedule
                    if dispatched:
                        utilization = dispatched * iw0
                        if utilization > 1.0:
                            utilization = 1.0
                        ebt[0] += abe0 + ase0 * utilization
                    else:
                        ebt[0] += ge0
                    if fe_next < trace_len or rob_head < fe_next:
                        if dispatched == 0:
                            # ref: stall_hint
                            candidate = None
                            known = True
                            if fe_blocked >= 0:
                                bdn = comp[fe_blocked]
                                if bdn == _INF:
                                    known = False
                                else:
                                    candidate = bdn + mp_pen_ns
                            elif fe_icache_until > time_ns:
                                candidate = fe_icache_until
                            elif fe_next - rob_head >= rob_cap:
                                hd = comp[rob_head]
                                if hd == _INF:
                                    known = False
                                else:
                                    candidate = hd
                            hint = None
                            if known and candidate is not None and candidate > time_ns:
                                hd = comp[rob_head] if rob_head < fe_next else None
                                if hd is not None and hd != _INF:
                                    if hd <= time_ns:
                                        candidate = None
                                    elif hd < candidate:
                                        candidate = hd
                                hint = candidate
                            if hint is not None:
                                ne0 = next_edge[0]
                                if hint > ne0:
                                    next_edge[0] = ne0 + ceil(
                                        (hint - ne0) / fe_period
                                    ) * fe_period
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                            elif fe_last_stall == "queue_full" or fe_last_stall == "rob_full":
                                fe_sleeping = True
                            else:
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                        else:
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                    finish_ns = time_ns
            elif tag == 3:
                # ======================================================
                # LS-domain edge (ref: _domain_cycle + LoadStoreDomain)
                # ======================================================
                per = periods[3]
                if sigma:
                    j = gauss[3](0.0, sigma)
                    lo = neg04[3]
                    hi = pos04[3]
                    if j < lo:
                        j = lo
                    elif j > hi:
                        j = hi
                    next_edge[3] = time_ns + per + j
                else:
                    next_edge[3] = time_ns + per
                if time_ns < pause[3]:
                    ebt[3] += ge[3]
                    sleeping[3] = True
                    pu = pause[3]
                    timer_target[3] = pu
                    wake_gen[3] = g = wake_gen[3] + 1
                    seq += 1
                    heappush(heap, (pu, 7, seq, g))
                    continue
                entries = ent_ls
                width = width_by_tag[3]
                issued = 0
                for entry in entries:
                    if issued >= width:
                        break
                    if entry[0] > time_ns:
                        continue
                    idx = entry[1]
                    d = comp[src1_arr[idx]]
                    if d > time_ns:
                        continue
                    d = comp[src2_arr[idx]]
                    if d > time_ns:
                        continue
                    storing = store_arr[idx]
                    if storing:
                        # ref: store_buffer.can_accept (evict then test)
                        while sb_drains and sb_drains[0] <= time_ns:
                            sb_popleft()
                        if len(sb_drains) >= sb_cap:
                            sb_full_stalls += 1
                            continue
                    # ref: _ports.acquire(now, period); on failure: break
                    i = 0
                    nb = len(ls_ports)
                    while i < nb:
                        if ls_ports[i] <= time_ns:
                            ls_ports[i] = time_ns + per
                            break
                        i += 1
                    else:
                        break  # both cache ports taken this cycle
                    # ref: _access_latency
                    if not l1d_access(addr_arr[idx]):
                        l2_hit = l2_access(addr_arr[idx])
                        if not l2_hit:
                            mem_accesses += 1
                        cycles = l1_hit_cycles + l2_hit_cycles
                        fixed = 0.0 if l2_hit else mem_lat_ns
                    else:
                        cycles = l1_hit_cycles
                        fixed = 0.0
                    full_path = per + cycles * per + fixed
                    if storing:
                        ls_stores += 1
                        latency_ns = per + l1w_cycles * per
                        # ref: store_buffer.push(now, now + full_path)
                        while sb_drains and sb_drains[0] <= time_ns:
                            sb_popleft()
                        dd = time_ns + full_path
                        if sb_drains and dd < sb_drains[-1]:
                            dd = sb_drains[-1]
                        sb_drains.append(dd)
                        sb_total_stores += 1
                    else:
                        ls_loads += 1
                        latency_ns = full_path
                    done_ns = time_ns + latency_ns
                    comp[idx] = done_ns
                    if fe_sleeping and rob_head < fe_next and idx == rob_head:
                        wake_ns = done_ns if done_ns > time_ns else time_ns
                        fe_sleeping = False
                        ne0 = next_edge[0]
                        if wake_ns > ne0:
                            next_edge[0] = ne0 + ceil(
                                (wake_ns - ne0) / fe_period
                            ) * fe_period
                        seq += 1
                        heappush(heap, (next_edge[0], 0, seq, 0))
                    issued_buf.append(entry)
                    issued += 1
                if issued:
                    qcap = qcap_by_tag[3]
                    for entry in issued_buf:
                        was_full = len(entries) >= qcap
                        k = 0
                        while entries[k] is not entry:
                            k += 1
                        del entries[k]
                        if was_full and fe_sleeping:
                            fe_sleeping = False
                            ne0 = next_edge[0]
                            if time_ns > ne0:
                                next_edge[0] = ne0 + ceil(
                                    (time_ns - ne0) / fe_period
                                ) * fe_period
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                    del issued_buf[:]
                    issued_by_tag[3] += issued
                    utilization = issued * iw[3]
                    if utilization > 1.0:
                        utilization = 1.0
                    ebt[3] += abe[3] + ase[3] * utilization
                else:
                    ebt[3] += ge[3]
                    if not entries and max(ls_ports) <= time_ns:
                        sleeping[3] = True
                        timer_target[3] = None
                        wake_gen[3] += 1
                        continue
                    best = _INF
                    for entry in entries:
                        v = entry[0]
                        if v > time_ns:
                            if v < best:
                                best = v
                            continue
                        ready = v
                        idx = entry[1]
                        d = comp[src1_arr[idx]]
                        if d == _INF:
                            best = _INF
                            break
                        if d > ready:
                            ready = d
                        d = comp[src2_arr[idx]]
                        if d == _INF:
                            best = _INF
                            break
                        if d > ready:
                            ready = d
                        if ready <= time_ns:
                            best = _INF
                            break
                        if ready < best:
                            best = ready
                    else:
                        if best != _INF and best > time_ns + 2.0 * per:
                            sleeping[3] = True
                            timer_target[3] = best
                            wake_gen[3] = g = wake_gen[3] + 1
                            seq += 1
                            heappush(heap, (best, 7, seq, g))
                            continue
                seq += 1
                heappush(heap, (next_edge[3], 3, seq, 0))
            elif tag == 4:
                # ======================================================
                # sample tick: suspend; the SoA driver runs the control
                # plane (ref: _sample) across all lanes and sends back
                # any frequency / coefficient / pause updates
                # ======================================================
                sbuf[0] = len(ent_int)
                sbuf[1] = len(ent_fp)
                sbuf[2] = len(ent_ls)
                sbuf[3] = sleeping[1]
                sbuf[4] = sleeping[2]
                sbuf[5] = sleeping[3]
                upd = yield sbuf
                if upd is not None:
                    for dtag, f, p, nabe, nase, nge, pz in upd:
                        # ref: clock.set_frequency(current)
                        freqs[dtag] = f
                        periods[dtag] = p
                        neg04[dtag] = -0.4 * p
                        pos04[dtag] = 0.4 * p
                        # ref: _refresh_energy_coefficients (this domain)
                        abe[dtag] = nabe
                        ase[dtag] = nase
                        ge[dtag] = nge
                        if pz is not None and pz > pause[dtag]:
                            # ref: _apply_command transmeta relock pause
                            pause[dtag] = pz
                seq += 1
                heappush(heap, (time_ns + dt, 4, seq, 0))
            else:
                # ======================================================
                # wake timer (ref: run loop's _TIMER_DOMAIN branch)
                # ======================================================
                dtag = tag - 4
                if sleeping[dtag] and ev[3] == wake_gen[dtag]:
                    sleeping[dtag] = False
                    timer_target[dtag] = None
                    wake_gen[dtag] += 1
                    ne = next_edge[dtag]
                    if time_ns > ne:
                        per = periods[dtag]
                        next_edge[dtag] = ne + ceil((time_ns - ne) / per) * per
                    seq += 1
                    heappush(heap, (next_edge[dtag], dtag, seq, 0))

        # --- write locals back into object state ----------------------
        wheel.seq = seq
        self._seq = seq
        self._now = time_ns
        fe.next_index = fe_next
        fe.dispatched = fe_dispatched
        fe.last_stall = fe_last_stall
        fe._blocked_on = None  # flat lanes do not materialize RobEntry
        fe._icache_stall_until = fe_icache_until
        fe._last_fetch_line = fe_last_line
        self._fe_sleeping = fe_sleeping
        sync._transfers = sync_transfers
        sync._deferred = sync_deferred
        for tag in (0, 1, 2, 3):
            clock = clocks[tag]
            clock._freq_ghz = freqs[tag]
            clock._next_edge_ns = next_edge[tag]
        for domain, tag in (
            (DomainId.INT, 1),
            (DomainId.FP, 2),
            (DomainId.LS, 3),
        ):
            self._sleeping[domain] = sleeping[tag]
            self._timer_target[domain] = timer_target[tag]
            self._wake_gen[domain] = wake_gen[tag]
        rob.retired = retired_total
        dom_int.issued += issued_by_tag[1]
        dom_fp.issued += issued_by_tag[2]
        dom_ls.issued += issued_by_tag[3]
        dom_ls.loads += ls_loads
        dom_ls.stores += ls_stores
        sb.full_stalls += sb_full_stalls
        sb.total_stores += sb_total_stores
        hier.memory_accesses += mem_accesses
        return finish_ns

    # ------------------------------------------------------------------

    def _absorb_lane_state(
        self,
        finish_ns: float,
        freq_samples: int,
        freq_sum: Tuple[float, float, float],
        background_e: Tuple[float, float, float, float],
        reg_state: List[Tuple[float, float, float, float, int]],
    ) -> SimulationResult:
        """Fold the driver's per-lane array snapshot back into object state.

        ``reg_state`` carries one ``(current_ghz, target_ghz, voltage,
        total_travel_ghz, transitions)`` tuple per controlled domain in
        CONTROLLED_DOMAINS order; ``background_e`` is the accumulated
        per-sample background energy in edge-tag order (FE, INT, FP, LS);
        ``freq_sum`` parallels CONTROLLED_DOMAINS.  Matches the state the
        reference accumulates through ``_sample``/``advance`` -- every
        value was produced by the bit-identical vector expressions.
        """
        self._freq_samples = freq_samples
        for i, domain in enumerate(CONTROLLED_DOMAINS):
            cur, tgt, volt, travel, trans = reg_state[i]
            regulator = self.regulators[domain]
            regulator._current_ghz = cur
            regulator._target_ghz = tgt
            regulator._voltage = volt
            regulator.total_travel_ghz = travel
            regulator.transitions = trans
            self._freq_sum[domain] = freq_sum[i]
        energy_add = self.energy.add
        energy_add(DomainId.FRONT_END, background_e[0])
        energy_add(DomainId.INT, background_e[1])
        energy_add(DomainId.FP, background_e[2])
        energy_add(DomainId.LS, background_e[3])
        return self._result(finish_ns)


__all__ = ["BatchMCDProcessor", "LaneUpdate", "SampleOut", "vector_eligible"]
