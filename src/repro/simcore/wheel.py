"""Tag-indexed event wheel and wake scheduler for the fast core.

The reference processor keeps its wake/sleep bookkeeping in three
``Dict[DomainId, ...]`` maps (``_sleeping``, ``_timer_target``,
``_wake_gen``): every wake, sleep, and timer check pays an enum hash.  The
fast core replaces them with flat lists indexed by the integer edge tag
(FE=0, INT=1, FP=2, LS=3), sharing the same heapq event queue and sequence
counter as the reference so heap tie-breaking -- and therefore event order --
is bit-identical.

The megaloop in :mod:`repro.simcore.fast` manipulates these lists directly
(bound to locals); the methods here exist for the cold paths -- setup, the
processor's overridden callbacks when poked outside ``run()``, and tests.
"""

from __future__ import annotations

from heapq import heappush
from typing import List, Optional, Tuple

#: heap entry: (time_ns, tag, seq, payload) -- same shape as the reference
Event = Tuple[float, int, int, int]

#: timer event tag for edge tag t (INT 1->5, FP 2->6, LS 3->7)
TIMER_TAG_OFFSET = 4


class EventWheel:
    """Heap-backed event queue plus tag-indexed wake state."""

    __slots__ = ("heap", "seq", "sleeping", "timer_target", "wake_gen")

    def __init__(self) -> None:
        self.heap: List[Event] = []
        self.seq = 0
        #: index = edge tag; slot 0 (front end) is tracked separately by the
        #: processor's ``_fe_sleeping`` backpressure flag
        self.sleeping: List[bool] = [False, False, False, False]
        self.timer_target: List[Optional[float]] = [None, None, None, None]
        self.wake_gen: List[int] = [0, 0, 0, 0]

    # ------------------------------------------------------------------

    def push(self, time_ns: float, tag: int, payload: int = 0) -> None:
        """Schedule one event; seq strictly increases so ties pop FIFO."""
        self.seq += 1
        heappush(self.heap, (time_ns, tag, self.seq, payload))

    def sleep(self, tag: int, timer_ns: Optional[float]) -> None:
        """Gate a domain; with a timer, schedule the generation-stamped wake."""
        self.sleeping[tag] = True
        self.timer_target[tag] = timer_ns
        self.wake_gen[tag] += 1
        if timer_ns is not None:
            self.push(timer_ns, tag + TIMER_TAG_OFFSET, self.wake_gen[tag])

    def wake(self, tag: int) -> None:
        """Clear a domain's sleep state and invalidate pending timers.

        The caller is responsible for skipping the domain clock forward and
        pushing its next edge (the wake time is clock business, not wheel
        business).
        """
        self.sleeping[tag] = False
        self.timer_target[tag] = None
        self.wake_gen[tag] += 1

    def timer_valid(self, tag: int, payload: int) -> bool:
        """Is a popped timer event still current for a sleeping domain?"""
        return self.sleeping[tag] and payload == self.wake_gen[tag]
