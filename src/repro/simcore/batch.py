"""Batched multi-seed simulation runs.

``run_batch`` expands one ``(benchmark, scheme)`` point into one
:class:`repro.engine.jobs.SweepJob` per seed and routes them through the
sweep engine, so replicas get the engine's caching/retry/telemetry for free
and -- when the fast core is selected -- share one interned
:class:`repro.simcore.tables.SimTables` instance per worker process
(:func:`repro.simcore.tables.tables_for` memoizes on the machine config and
power parameters, so table construction is paid once per process, not once
per replica).

When the resolved core is ``batch`` and numpy is importable, the seeds
skip the engine's per-job pool entirely: every cache-miss job becomes one
lane of a single :class:`repro.simcore.soa.BatchSimulator`, whose DVFS
control plane advances all lanes at once as structure-of-arrays numpy
operations.  The engine's result cache is still consulted per job before
the batch is formed and populated per job after it runs, so batch runs
interoperate with cached ``batch`` artifacts exactly like pool runs do
(the cache key resolves the core, so ``batch`` entries never alias
``ref``/``fast``).  Without numpy the path degrades to the ordinary
engine route, where each lane's :meth:`BatchMCDProcessor.run` falls back
to the bit-identical fast megaloop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.engine.jobs import SweepJob
    from repro.engine.scheduler import SweepEngine
    from repro.mcd.domains import MachineConfig
    from repro.mcd.processor import SimulationResult
    from repro.obs.facade import ObsConfig
    from repro.obs.spans import SpanContext
    from repro.workloads.phases import BenchmarkSpec


def run_batch(
    benchmark: "Union[str, BenchmarkSpec]",
    scheme: str = "adaptive",
    seeds: Iterable[int] = (1, 2, 3),
    *,
    machine: "Optional[MachineConfig]" = None,
    max_instructions: Optional[int] = None,
    record_history: bool = False,
    history_stride: int = 4,
    pid_interval_ns: Optional[float] = None,
    adaptive_overrides: Optional[Dict[str, object]] = None,
    obs: "Optional[ObsConfig]" = None,
    simcore: Optional[str] = None,
    engine: "Optional[SweepEngine]" = None,
    spans: "Optional[Sequence[Optional[SpanContext]]]" = None,
) -> "List[SimulationResult]":
    """Run one benchmark/scheme point across many seeds; results in seed order.

    ``simcore`` selects the core explicitly (``"ref"``/``"fast"``); ``None``
    defers to ``REPRO_SIMCORE`` and the default.  ``engine`` is an optional
    :class:`repro.engine.SweepEngine` for parallel/cached execution; without
    one the batch runs serially in-process (still retried and observable).
    ``spans`` optionally carries one parent
    :class:`~repro.obs.spans.SpanContext` per seed (the serve coalescer's
    per-request trace contexts), attached to the constructed jobs so
    worker spans stitch back to their submitting requests.
    """
    # Imported lazily: repro.engine.jobs imports this package for the
    # cache-key core selection, so a module-level import would be circular.
    from repro.engine.jobs import SweepJob
    from repro.harness.experiment import run_experiment_batch

    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("run_batch needs at least one seed")
    span_list = list(spans) if spans is not None else [None] * len(seed_list)
    if len(span_list) != len(seed_list):
        raise ValueError(
            f"spans ({len(span_list)}) must parallel seeds ({len(seed_list)})"
        )
    jobs = [
        SweepJob.make(
            benchmark,
            scheme=scheme,
            seed=seed,
            machine=machine,
            max_instructions=max_instructions,
            record_history=record_history,
            history_stride=history_stride,
            pid_interval_ns=pid_interval_ns,
            adaptive_overrides=adaptive_overrides,
            obs=obs,
            simcore=simcore,
            span=span,
        )
        for seed, span in zip(seed_list, span_list)
    ]
    from repro.simcore import resolve_core

    if resolve_core(simcore) == "batch":
        vectorized = _run_batch_vectorized(jobs, engine)
        if vectorized is not None:
            return vectorized
    results: "List[SimulationResult]" = run_experiment_batch(jobs, engine=engine)
    return results


def _run_batch_vectorized(
    jobs: "Sequence[SweepJob]", engine: "Optional[SweepEngine]"
) -> "Optional[List[SimulationResult]]":
    """Run ``jobs`` as lanes of one vectorized batch; ``None`` sans numpy.

    Mirrors :func:`repro.harness.experiment.run_experiment`'s construction
    exactly -- raw seed into the trace generator, effective seed into the
    processor -- so each lane's :class:`SimulationResult` is bit-identical
    to what the per-job path would produce.  The engine's cache (when
    present) is consulted before and populated after the batch; its pool
    is deliberately bypassed -- for the batch core, throughput comes from
    vector width, not worker processes.
    """
    try:
        from repro.simcore.soa import BatchSimulator
    except ImportError:
        return None  # no numpy: the ordinary engine path handles fallback
    from repro.harness.experiment import build_controllers
    from repro.mcd.domains import MachineConfig
    from repro.simcore.batchcore import BatchMCDProcessor
    from repro.workloads.generator import generate_trace

    cache = engine.cache if engine is not None else None
    results: "List[Optional[SimulationResult]]" = [None] * len(jobs)
    miss_indices: List[int] = []
    lanes: List[BatchMCDProcessor] = []
    for index, job in enumerate(jobs):
        if cache is not None:
            cached = cache.get(job)
            if cached is not None:
                results[index] = cached
                continue
        spec = job.benchmark
        machine = job.machine or MachineConfig()
        effective_seed = spec.seed if job.seed is None else job.seed
        trace = generate_trace(
            spec, max_instructions=job.max_instructions, seed=job.seed
        )
        controllers = build_controllers(
            job.scheme,
            machine=machine,
            pid_interval_ns=job.pid_interval_ns,
            adaptive_overrides=dict(job.adaptive_overrides)
            if job.adaptive_overrides
            else None,
        )
        lanes.append(
            BatchMCDProcessor(
                trace=trace,
                config=machine,
                controllers=controllers,
                seed=effective_seed,
                record_history=job.record_history,
                history_stride=job.history_stride,
                benchmark=spec.name,
                scheme=job.scheme,
                obs=job.obs,
            )
        )
        miss_indices.append(index)
    if lanes:
        fresh = BatchSimulator(lanes).run()
        for index, result in zip(miss_indices, fresh):
            results[index] = result
            if cache is not None:
                cache.put(jobs[index], result)
    return [r for r in results if r is not None]  # all slots are filled


__all__ = ["run_batch"]
