"""Batched multi-seed simulation runs.

``run_batch`` expands one ``(benchmark, scheme)`` point into one
:class:`repro.engine.jobs.SweepJob` per seed and routes them through the
sweep engine, so replicas get the engine's caching/retry/telemetry for free
and -- when the fast core is selected -- share one interned
:class:`repro.simcore.tables.SimTables` instance per worker process
(:func:`repro.simcore.tables.tables_for` memoizes on the machine config and
power parameters, so table construction is paid once per process, not once
per replica).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.engine.scheduler import SweepEngine
    from repro.mcd.domains import MachineConfig
    from repro.mcd.processor import SimulationResult
    from repro.obs.facade import ObsConfig
    from repro.obs.spans import SpanContext
    from repro.workloads.phases import BenchmarkSpec


def run_batch(
    benchmark: "Union[str, BenchmarkSpec]",
    scheme: str = "adaptive",
    seeds: Iterable[int] = (1, 2, 3),
    *,
    machine: "Optional[MachineConfig]" = None,
    max_instructions: Optional[int] = None,
    record_history: bool = False,
    history_stride: int = 4,
    pid_interval_ns: Optional[float] = None,
    adaptive_overrides: Optional[Dict[str, object]] = None,
    obs: "Optional[ObsConfig]" = None,
    simcore: Optional[str] = None,
    engine: "Optional[SweepEngine]" = None,
    spans: "Optional[Sequence[Optional[SpanContext]]]" = None,
) -> "List[SimulationResult]":
    """Run one benchmark/scheme point across many seeds; results in seed order.

    ``simcore`` selects the core explicitly (``"ref"``/``"fast"``); ``None``
    defers to ``REPRO_SIMCORE`` and the default.  ``engine`` is an optional
    :class:`repro.engine.SweepEngine` for parallel/cached execution; without
    one the batch runs serially in-process (still retried and observable).
    ``spans`` optionally carries one parent
    :class:`~repro.obs.spans.SpanContext` per seed (the serve coalescer's
    per-request trace contexts), attached to the constructed jobs so
    worker spans stitch back to their submitting requests.
    """
    # Imported lazily: repro.engine.jobs imports this package for the
    # cache-key core selection, so a module-level import would be circular.
    from repro.engine.jobs import SweepJob
    from repro.harness.experiment import run_experiment_batch

    seed_list = list(seeds)
    if not seed_list:
        raise ValueError("run_batch needs at least one seed")
    span_list = list(spans) if spans is not None else [None] * len(seed_list)
    if len(span_list) != len(seed_list):
        raise ValueError(
            f"spans ({len(span_list)}) must parallel seeds ({len(seed_list)})"
        )
    jobs = [
        SweepJob.make(
            benchmark,
            scheme=scheme,
            seed=seed,
            machine=machine,
            max_instructions=max_instructions,
            record_history=record_history,
            history_stride=history_stride,
            pid_interval_ns=pid_interval_ns,
            adaptive_overrides=adaptive_overrides,
            obs=obs,
            simcore=simcore,
            span=span,
        )
        for seed, span in zip(seed_list, span_list)
    ]
    results: "List[SimulationResult]" = run_experiment_batch(jobs, engine=engine)
    return results


__all__ = ["run_batch"]
