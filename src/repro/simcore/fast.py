"""Profile-guided fast core: a bit-identical drop-in for MCDProcessor.

``FastMCDProcessor`` produces *exactly* the same ``SimulationResult`` -- the
same floats, the same ``FrequencyStepEvent`` sequence, the same probe-event
stream -- as the reference ``MCDProcessor``.  It gets its >=2x throughput
purely from how the same arithmetic is dispatched, never from changing it:

* **one megaloop** -- ``run()`` inlines the reference's per-event call tree
  (clock advance, front-end fetch/dispatch, execution-domain issue, LS memory
  access, wake/sleep bookkeeping) into a single function whose state lives in
  local variables, eliminating ~20 attribute/property/method dispatches per
  simulated event;
* **trace-parallel arrays** -- per-instruction latency, busy time, FU pool,
  domain tag, store/branch flags are precomputed once per trace, replacing
  per-issue enum-keyed dict lookups (enum ``__hash__`` is Python-level and
  profiled as ~8% of reference wall time);
* **tag-indexed wake scheduler** -- :class:`repro.simcore.wheel.EventWheel`
  lists replace the ``Dict[DomainId, ...]`` sleep/timer/generation maps;
* **lookup tables** -- :class:`repro.simcore.tables.SimTables` memoizes
  V(f), 1/f, per-cycle energy coefficients and per-sample background energy,
  keyed by the exact float inputs so a table hit returns the bit-exact value
  the reference would recompute;
* **allocation-free sampling** -- occupancies latch into scalars, the
  issue scan reuses one buffer, and history appends go through pre-bound
  methods; the only dict built per sample is the probe-emission payload, and
  only when the observability layer is attached.

The bit-identical contract imposes hard rules on every edit here: float
expressions must keep the reference's operand order and association
(``(leak + gated) * dt`` is not ``leak*dt + gated*dt``); ``rng.gauss`` call
count and order per clock must match (gauss caches a second variate); and
heap pushes must happen in the reference's order so sequence numbers -- the
tie-breakers for same-time events -- are identical.  Golden-equivalence
tests in ``tests/simcore/`` enforce the contract for every controller style.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import ceil
from time import perf_counter
from typing import Optional

from repro.mcd.domains import (
    CONTROLLED_DOMAINS,
    FU_LATENCY_CYCLES,
    DomainId,
    execution_domain,
)
from repro.mcd.processor import (
    _EDGE_TAG,
    MCDProcessor,
    SimulationResult,
)
from repro.mcd.queues import QueueEntry
from repro.mcd.rob import RobEntry
from repro.simcore.markers import hot_path
from repro.simcore.tables import SimTables, tables_for
from repro.simcore.wheel import EventWheel
from repro.workloads.instructions import InstructionKind as K

_INF = float("inf")

#: kinds served by the muldiv pool (mirrors ExecutionDomain._pool_for)
_MULDIV_KINDS = frozenset({K.INT_MUL, K.INT_DIV, K.FP_MUL, K.FP_DIV, K.FP_SQRT})
#: kinds whose FU accepts a new op every cycle (mirrors execcore._PIPELINED)
_PIPELINED = frozenset({K.INT_ALU, K.BRANCH, K.FP_ADD, K.FP_MUL, K.INT_MUL})


class FastMCDProcessor(MCDProcessor):
    """The fast core.  Construction and results match MCDProcessor exactly."""

    def __init__(self, *args: object, tables: Optional[SimTables] = None, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._tables = (
            tables if tables is not None else tables_for(self.config, self.power)
        )
        # Shared event wheel: replaces the base heap and the enum-keyed
        # wake/sleep dicts.  The base dicts stay as (synced) views so
        # external introspection keeps working.
        self._wheel = EventWheel()
        self._heap = self._wheel.heap

        # --- trace-parallel instruction arrays (index = inst.index) -------
        trace = self.trace
        n = 0
        for inst in trace:
            if inst.index >= n:
                n = inst.index + 1
        lat = [0] * n
        busy = [0] * n
        tags = bytearray(n)
        muldiv = bytearray(n)
        is_store = bytearray(n)
        is_branch = bytearray(n)
        for inst in trace:
            i = inst.index
            kind = inst.kind
            lat[i] = FU_LATENCY_CYCLES[kind]
            busy[i] = 1 if kind in _PIPELINED else lat[i]
            tags[i] = _EDGE_TAG[execution_domain(kind)]
            muldiv[i] = 1 if kind in _MULDIV_KINDS else 0
            is_store[i] = 1 if kind is K.STORE else 0
            is_branch[i] = 1 if kind is K.BRANCH else 0
        self._lat_arr = lat
        self._busy_arr = busy
        self._tag_arr = tags
        self._muldiv_arr = muldiv
        self._store_arr = is_store
        self._branch_arr = is_branch

        # --- per-sample row structures (built once, iterated per sample) --
        self._ctrl_rows = [
            (_EDGE_TAG[d], d, self.controllers[d], self.regulators[d])
            for d in CONTROLLED_DOMAINS
            if self.controllers.get(d) is not None
        ]
        self._slew_rows = [
            (_EDGE_TAG[d], d, self.regulators[d]) for d in CONTROLLED_DOMAINS
        ]
        self._rec_rows = [
            (
                _EDGE_TAG[d],
                self.history.occupancy[d].append,
                self.history.frequency_ghz[d].append,
                self.history.issued[d].append,
                self.regulators[d],
                self.domains[d],
            )
            for d in CONTROLLED_DOMAINS
        ]
        # last-seen voltage per tag: skips coefficient refresh while steady
        self._coeff_v = [
            self.config.v_max,
            self.regulators[DomainId.INT].voltage,
            self.regulators[DomainId.FP].voltage,
            self.regulators[DomainId.LS].voltage,
        ]
        # last-seen (voltage, freq) per tag for the background-energy pair
        self._bg_v: list = [None, None, None, None]
        self._bg_f: list = [None, None, None, None]
        self._bg_awake = [0.0, 0.0, 0.0, 0.0]
        self._bg_asleep = [0.0, 0.0, 0.0, 0.0]
        # reused buffers: the allocation-free sample/issue paths
        self._occ_buf = [0, 0, 0, 0]
        self._issued_buf: list = []

    # ------------------------------------------------------------------
    # cold-path overrides: keep the wheel and the reference-dict views in
    # sync when the processor is poked outside run() (tests, tooling)
    # ------------------------------------------------------------------

    def _push(self, time_ns: float, tag: int, payload: int = 0) -> None:
        self._wheel.push(time_ns, tag, payload)
        self._seq = self._wheel.seq

    def _wake(self, domain: DomainId, wake_ns: float) -> None:
        tag = _EDGE_TAG[domain]
        self._wheel.wake(tag)
        self._sleeping[domain] = False
        self._timer_target[domain] = None
        self._wake_gen[domain] = self._wheel.wake_gen[tag]
        clock = self.clocks[domain]
        clock.skip_to(wake_ns)
        self._push(clock.next_edge_ns, tag)

    def _sleep(self, domain: DomainId, now_ns: float, timer_ns: Optional[float]) -> None:
        tag = _EDGE_TAG[domain]
        self._wheel.sleep(tag, timer_ns)
        self._seq = self._wheel.seq
        self._sleeping[domain] = True
        self._timer_target[domain] = timer_ns
        self._wake_gen[domain] = self._wheel.wake_gen[tag]

    def _on_dispatch(self, domain: DomainId, entry) -> None:
        tag = _EDGE_TAG[domain]
        if not self._wheel.sleeping[tag]:
            return
        wake_ns = entry.visible_ns
        timer = self._wheel.timer_target[tag]
        if timer is not None:
            wake_ns = min(wake_ns, timer)
        self._wake(domain, wake_ns)

    # ------------------------------------------------------------------
    # the megaloop
    # ------------------------------------------------------------------

    @hot_path
    def run(self, max_time_ns: Optional[float] = None) -> SimulationResult:  # noqa: C901
        """Simulate until the trace fully retires; return the result.

        One flat event loop replacing the reference's run/_front_end_cycle/
        _domain_cycle/_sample call tree.  Comments of the form ``ref:`` tie
        blocks back to the reference lines they mirror.
        """
        cfg = self.config
        if max_time_ns is None:
            # ref: generous cutoff, identical expression
            max_time_ns = len(self.trace) * 25.0 / cfg.f_min_ghz + 1e5

        # --- bind everything to locals --------------------------------
        trace = self.trace
        trace_len = len(trace)
        wheel = self._wheel
        heap = wheel.heap
        seq = wheel.seq
        sleeping = wheel.sleeping
        timer_target = wheel.timer_target
        wake_gen = wheel.wake_gen
        pause = self._pause_until

        clocks = [
            self.clocks[DomainId.FRONT_END],
            self.clocks[DomainId.INT],
            self.clocks[DomainId.FP],
            self.clocks[DomainId.LS],
        ]
        sigma = cfg.jitter_sigma_ns
        gauss = [c._rng.gauss for c in clocks]
        freqs = [c._freq_ghz for c in clocks]
        periods = [1.0 / f for f in freqs]
        neg04 = [-0.4 * p for p in periods]
        pos04 = [0.4 * p for p in periods]
        next_edge = [c._next_edge_ns for c in clocks]
        fe_period = periods[0]  # the front-end clock never retunes

        rob = self.rob
        rob_entries = rob._entries
        rob_by_index = rob._by_index
        completion = rob._completion_ns
        completion_get = completion.get
        rob_cap = rob.capacity
        retire_width = cfg.retire_width

        q_int = self.queues[DomainId.INT]
        q_fp = self.queues[DomainId.FP]
        q_ls = self.queues[DomainId.LS]
        entries_by_tag = [None, q_int._entries, q_fp._entries, q_ls._entries]
        qcap_by_tag = [0, q_int.capacity, q_fp.capacity, q_ls.capacity]
        dom_int = self.domains[DomainId.INT]
        dom_fp = self.domains[DomainId.FP]
        dom_ls = self.domains[DomainId.LS]
        dom_by_tag = [None, dom_int, dom_fp, dom_ls]
        width_by_tag = [0, dom_int.issue_width, dom_fp.issue_width, dom_ls.issue_width]
        alu_by_tag = [None, dom_int._alu._busy_until, dom_fp._alu._busy_until]
        md_by_tag = [None, dom_int._muldiv._busy_until, dom_fp._muldiv._busy_until]
        ls_ports = dom_ls._ports._busy_until
        sb = dom_ls.store_buffer
        sb_drains = sb._drains
        sb_popleft = sb_drains.popleft
        sb_cap = sb.capacity
        l1w_cycles = dom_ls._l1_write_cycles

        fe = self.frontend
        fe_next = fe.next_index
        fe_dispatched = fe.dispatched
        fe_icache_until = fe._icache_stall_until
        fe_blocked = fe._blocked_on
        fe_last_line = fe._last_fetch_line
        fe_last_stall = fe.last_stall
        fe_sleeping = self._fe_sleeping
        dispatch_width = cfg.dispatch_width
        line_size = cfg.line_size
        mp_pen_ns = cfg.mispredict_penalty_cycles * fe_period
        predictor_resolve = self.predictor.resolve

        hier = self.hierarchy
        l1i_access = hier.l1i.access
        l1d_access = hier.l1d.access
        l2_access = hier.l2.access
        l1_hit_cycles = hier.l1_hit_cycles
        l2_hit_cycles = hier.l2_hit_cycles
        mem_lat_ns = hier.memory_latency_ns

        sync = self.sync
        sync_window = sync.sync_window_ns
        sync_transfers = sync._transfers
        sync_deferred = sync._deferred

        lat_arr = self._lat_arr
        busy_arr = self._busy_arr
        tag_arr = self._tag_arr
        md_arr = self._muldiv_arr
        store_arr = self._store_arr
        branch_arr = self._branch_arr

        ebt = self._energy_by_tag
        abe = self._active_base_e
        ase = self._active_slope_e
        ge = self._gated_e
        iw = self._inv_width
        # FE energy coefficients are voltage-pinned constants
        abe0 = abe[0]
        ase0 = ase[0]
        ge0 = ge[0]
        iw0 = iw[0]

        tables = self._tables
        vtab = tables.voltage
        vtab_get = vtab.get
        voltage_for = cfg.voltage_for
        ctab = tables.coeff
        btab = tables.background
        params_by_tag = tables.params_by_tag
        fe_bg_e = tables.fe_background_e
        coeff_v = self._coeff_v
        bg_v = self._bg_v
        bg_f = self._bg_f
        bg_awake = self._bg_awake
        bg_asleep = self._bg_asleep

        ctrl_rows = self._ctrl_rows
        slew_rows = self._slew_rows
        rec_rows = self._rec_rows
        apply_command = self._apply_command
        bd = self.energy.by_domain
        d_fe = DomainId.FRONT_END
        d_int = DomainId.INT
        d_fp = DomainId.FP
        d_ls = DomainId.LS
        fsum = [0.0, self._freq_sum[d_int], self._freq_sum[d_fp], self._freq_sum[d_ls]]
        freq_samples = self._freq_samples

        dt = cfg.sample_period_ns
        record_history = self.record_history
        stride = self.history_stride
        h_time_append = self.history.time_ns.append
        h_ret_append = self.history.retired.append
        probe = self._probe
        obs_stride = self._obs_stride
        emit_samples = self._emit_samples
        prof = self._profiler
        prof_add = prof.add if prof is not None else None

        occs = self._occ_buf
        issued_buf = self._issued_buf

        # --- initial events (ref push order: FE, INT, FP, LS, sample) -----
        for tag in (0, 1, 2, 3):
            seq += 1
            heappush(heap, (next_edge[tag], tag, seq, 0))
        seq += 1
        heappush(heap, (dt, 4, seq, 0))

        if prof is not None:
            prof.run_started()
        finish_ns = 0.0
        sample_index = 0
        time_ns = self._now

        while fe_next < trace_len or rob_entries:
            ev = heappop(heap)
            time_ns = ev[0]
            tag = ev[1]
            if time_ns > max_time_ns:
                raise RuntimeError(
                    f"simulation exceeded max_time_ns={max_time_ns:.0f} "
                    f"({rob.retired}/{trace_len} retired)"
                )

            if tag < 3:
                if tag:
                    # ==================================================
                    # INT / FP execution-domain edge (ref: _domain_cycle)
                    # ==================================================
                    per = periods[tag]
                    # ref: clock.advance()
                    if sigma:
                        j = gauss[tag](0.0, sigma)
                        lo = neg04[tag]
                        hi = pos04[tag]
                        if j < lo:
                            j = lo
                        elif j > hi:
                            j = hi
                        next_edge[tag] = time_ns + per + j
                    else:
                        next_edge[tag] = time_ns + per
                    if time_ns < pause[tag]:
                        # Transmeta-style relock idle: gated + timer sleep
                        ebt[tag] += ge[tag]
                        sleeping[tag] = True
                        pu = pause[tag]
                        timer_target[tag] = pu
                        wake_gen[tag] = g = wake_gen[tag] + 1
                        seq += 1
                        heappush(heap, (pu, tag + 4, seq, g))
                        continue
                    # ref: ExecutionDomain.cycle
                    entries = entries_by_tag[tag]
                    width = width_by_tag[tag]
                    issued = 0
                    for entry in entries:
                        if issued >= width:
                            break
                        if entry.visible_ns > time_ns:
                            continue
                        inst = entry.instruction
                        s1 = inst.src1
                        if s1 is not None:
                            d = completion_get(s1)
                            if d is None or d > time_ns:
                                continue
                        s2 = inst.src2
                        if s2 is not None:
                            d = completion_get(s2)
                            if d is None or d > time_ns:
                                continue
                        idx = inst.index
                        busy = md_by_tag[tag] if md_arr[idx] else alu_by_tag[tag]
                        i = 0
                        nb = len(busy)
                        while i < nb:
                            if busy[i] <= time_ns:
                                busy[i] = time_ns + busy_arr[idx] * per
                                break
                            i += 1
                        else:
                            continue  # no free functional unit
                        done_ns = time_ns + lat_arr[idx] * per
                        # ref: rob.mark_done (+ head-done FE wake)
                        completion[idx] = done_ns
                        rentry = rob_by_index.get(idx)
                        if rentry is not None:
                            rentry.done_ns = done_ns
                            if (
                                fe_sleeping
                                and rob_entries
                                and rob_entries[0] is rentry
                            ):
                                wake_ns = done_ns if done_ns > time_ns else time_ns
                                fe_sleeping = False
                                ne0 = next_edge[0]
                                if wake_ns > ne0:
                                    next_edge[0] = ne0 + ceil(
                                        (wake_ns - ne0) / fe_period
                                    ) * fe_period
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                        issued_buf.append(entry)
                        issued += 1
                    if issued:
                        qcap = qcap_by_tag[tag]
                        for entry in issued_buf:
                            # ref: queue.remove (+ slot-freed FE wake)
                            was_full = len(entries) >= qcap
                            k = 0
                            while entries[k] is not entry:
                                k += 1
                            del entries[k]
                            if was_full and fe_sleeping:
                                fe_sleeping = False
                                ne0 = next_edge[0]
                                if time_ns > ne0:
                                    next_edge[0] = ne0 + ceil(
                                        (time_ns - ne0) / fe_period
                                    ) * fe_period
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                        del issued_buf[:]
                        dom_by_tag[tag].issued += issued
                        utilization = issued * iw[tag]
                        if utilization > 1.0:
                            utilization = 1.0
                        ebt[tag] += abe[tag] + ase[tag] * utilization
                    else:
                        ebt[tag] += ge[tag]
                        alu = alu_by_tag[tag]
                        md = md_by_tag[tag]
                        if (
                            not entries
                            and max(alu) <= time_ns
                            and max(md) <= time_ns
                        ):
                            # ref: is_idle -> pure sleep, next dispatch wakes
                            sleeping[tag] = True
                            timer_target[tag] = None
                            wake_gen[tag] += 1
                            continue
                        # ref: stall_hint (next_ready_hint inline)
                        best = _INF
                        for entry in entries:
                            v = entry.visible_ns
                            if v > time_ns:
                                if v < best:
                                    best = v
                                continue
                            ready = v
                            inst = entry.instruction
                            s1 = inst.src1
                            if s1 is not None:
                                d = completion_get(s1)
                                if d is None:
                                    best = _INF
                                    break
                                if d > ready:
                                    ready = d
                            s2 = inst.src2
                            if s2 is not None:
                                d = completion_get(s2)
                                if d is None:
                                    best = _INF
                                    break
                                if d > ready:
                                    ready = d
                            if ready <= time_ns:
                                best = _INF
                                break
                            if ready < best:
                                best = ready
                        else:
                            if best != _INF and best > time_ns + 2.0 * per:
                                sleeping[tag] = True
                                timer_target[tag] = best
                                wake_gen[tag] = g = wake_gen[tag] + 1
                                seq += 1
                                heappush(heap, (best, tag + 4, seq, g))
                                continue
                    seq += 1
                    heappush(heap, (next_edge[tag], tag, seq, 0))
                else:
                    # ==================================================
                    # front-end edge (ref: _front_end_cycle)
                    # ==================================================
                    # ref: clock.advance()
                    if sigma:
                        j = gauss[0](0.0, sigma)
                        lo = neg04[0]
                        hi = pos04[0]
                        if j < lo:
                            j = lo
                        elif j > hi:
                            j = hi
                        next_edge[0] = time_ns + fe_period + j
                    else:
                        next_edge[0] = time_ns + fe_period
                    # ref: rob.retire(now, retire_width)
                    retired_now = 0
                    while retired_now < retire_width and rob_entries:
                        head = rob_entries[0]
                        if head.done_ns > time_ns:
                            break
                        rob_entries.popleft()
                        del rob_by_index[head.instruction.index]
                        retired_now += 1
                    rob.retired += retired_now
                    fe_last_stall = None
                    dispatched = 0
                    if fe_next >= trace_len:
                        fe_last_stall = "trace_done"
                    elif (
                        fe_blocked is not None
                        and fe_blocked.done_ns + mp_pen_ns > time_ns
                    ):
                        # ref: _redirect_clear False -> mispredict redirect
                        fe_last_stall = "branch"
                    elif fe_icache_until > time_ns:
                        # redirect (if any) cleared; I-fetch still stalled
                        fe_blocked = None
                        fe_last_stall = "icache"
                    else:
                        fe_blocked = None
                        # ref: _fetch_and_dispatch
                        budget = dispatch_width
                        while budget:
                            budget -= 1
                            if fe_next >= trace_len:
                                break
                            inst = trace[fe_next]
                            pc = inst.pc
                            line = pc // line_size
                            if line != fe_last_line:
                                # ref: _icache_miss
                                fe_last_line = line
                                if not l1i_access(pc):
                                    l2_hit = l2_access(pc)
                                    if not l2_hit:
                                        hier.memory_accesses += 1
                                    cycles = l1_hit_cycles + l2_hit_cycles
                                    fixed = 0.0 if l2_hit else mem_lat_ns
                                    extra = cycles - l1_hit_cycles
                                    fe_icache_until = (
                                        time_ns + extra * fe_period + fixed
                                    )
                                    if dispatched == 0:
                                        fe_last_stall = "icache"
                                    break
                            if len(rob_entries) >= rob_cap:
                                if dispatched == 0:
                                    fe_last_stall = "rob_full"
                                break
                            idx = inst.index
                            dtag = tag_arr[idx]
                            q_entries = entries_by_tag[dtag]
                            if len(q_entries) >= qcap_by_tag[dtag]:
                                if dispatched == 0:
                                    fe_last_stall = "queue_full"
                                break
                            # ref: rob.allocate
                            rentry = RobEntry(instruction=inst, dispatch_ns=time_ns)
                            rob_entries.append(rentry)
                            rob_by_index[idx] = rentry
                            # ref: sync.arrival_time(now + period, dst_clock)
                            t_ready = time_ns + fe_period
                            ne = next_edge[dtag]
                            per = periods[dtag]
                            if t_ready <= ne:
                                edge2 = ne
                            else:
                                edge2 = ne + ceil((t_ready - ne) / per) * per
                            sync_transfers += 1
                            if edge2 - t_ready < sync_window:
                                sync_deferred += 1
                                edge2 += per
                            q_entries.append(
                                QueueEntry(
                                    instruction=inst,
                                    visible_ns=edge2,
                                    enqueued_ns=time_ns,
                                )
                            )
                            # ref: on_dispatch -> wake a sleeping domain
                            if sleeping[dtag]:
                                wake_ns = edge2
                                tt = timer_target[dtag]
                                if tt is not None and tt < wake_ns:
                                    wake_ns = tt
                                sleeping[dtag] = False
                                timer_target[dtag] = None
                                wake_gen[dtag] += 1
                                if wake_ns > ne:
                                    ne += ceil((wake_ns - ne) / per) * per
                                    next_edge[dtag] = ne
                                seq += 1
                                heappush(heap, (next_edge[dtag], dtag, seq, 0))
                            fe_next += 1
                            dispatched += 1
                            if branch_arr[idx]:
                                if not predictor_resolve(pc, inst.taken, inst.target):
                                    fe_blocked = rob_by_index.get(idx)
                                    break
                        fe_dispatched += dispatched
                    # ref: _front_end_cycle energy + reschedule
                    if dispatched:
                        utilization = dispatched * iw0
                        if utilization > 1.0:
                            utilization = 1.0
                        ebt[0] += abe0 + ase0 * utilization
                    else:
                        ebt[0] += ge0
                    if fe_next < trace_len or rob_entries:
                        if dispatched == 0:
                            # ref: stall_hint
                            candidate = None
                            known = True
                            if fe_blocked is not None:
                                bdn = fe_blocked.done_ns
                                if bdn == _INF:
                                    known = False
                                else:
                                    candidate = bdn + mp_pen_ns
                            elif fe_icache_until > time_ns:
                                candidate = fe_icache_until
                            elif len(rob_entries) >= rob_cap:
                                hd = rob_entries[0].done_ns
                                if hd == _INF:
                                    known = False
                                else:
                                    candidate = hd
                            hint = None
                            if known and candidate is not None and candidate > time_ns:
                                hd = rob_entries[0].done_ns if rob_entries else None
                                if hd is not None and hd != _INF:
                                    if hd <= time_ns:
                                        candidate = None
                                    elif hd < candidate:
                                        candidate = hd
                                hint = candidate
                            if hint is not None:
                                ne0 = next_edge[0]
                                if hint > ne0:
                                    next_edge[0] = ne0 + ceil(
                                        (hint - ne0) / fe_period
                                    ) * fe_period
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                            elif fe_last_stall == "queue_full" or fe_last_stall == "rob_full":
                                fe_sleeping = True
                            else:
                                seq += 1
                                heappush(heap, (next_edge[0], 0, seq, 0))
                        else:
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                    finish_ns = time_ns
            elif tag == 3:
                # ======================================================
                # LS-domain edge (ref: _domain_cycle + LoadStoreDomain)
                # ======================================================
                per = periods[3]
                if sigma:
                    j = gauss[3](0.0, sigma)
                    lo = neg04[3]
                    hi = pos04[3]
                    if j < lo:
                        j = lo
                    elif j > hi:
                        j = hi
                    next_edge[3] = time_ns + per + j
                else:
                    next_edge[3] = time_ns + per
                if time_ns < pause[3]:
                    ebt[3] += ge[3]
                    sleeping[3] = True
                    pu = pause[3]
                    timer_target[3] = pu
                    wake_gen[3] = g = wake_gen[3] + 1
                    seq += 1
                    heappush(heap, (pu, 7, seq, g))
                    continue
                entries = entries_by_tag[3]
                width = width_by_tag[3]
                issued = 0
                for entry in entries:
                    if issued >= width:
                        break
                    if entry.visible_ns > time_ns:
                        continue
                    inst = entry.instruction
                    s1 = inst.src1
                    if s1 is not None:
                        d = completion_get(s1)
                        if d is None or d > time_ns:
                            continue
                    s2 = inst.src2
                    if s2 is not None:
                        d = completion_get(s2)
                        if d is None or d > time_ns:
                            continue
                    idx = inst.index
                    storing = store_arr[idx]
                    if storing:
                        # ref: store_buffer.can_accept (evict then test)
                        while sb_drains and sb_drains[0] <= time_ns:
                            sb_popleft()
                        if len(sb_drains) >= sb_cap:
                            sb.full_stalls += 1
                            continue
                    # ref: _ports.acquire(now, period); on failure: break
                    i = 0
                    nb = len(ls_ports)
                    while i < nb:
                        if ls_ports[i] <= time_ns:
                            ls_ports[i] = time_ns + per
                            break
                        i += 1
                    else:
                        break  # both cache ports taken this cycle
                    # ref: _access_latency
                    if not l1d_access(inst.addr):
                        l2_hit = l2_access(inst.addr)
                        if not l2_hit:
                            hier.memory_accesses += 1
                        cycles = l1_hit_cycles + l2_hit_cycles
                        fixed = 0.0 if l2_hit else mem_lat_ns
                    else:
                        cycles = l1_hit_cycles
                        fixed = 0.0
                    full_path = per + cycles * per + fixed
                    if storing:
                        dom_ls.stores += 1
                        latency_ns = per + l1w_cycles * per
                        # ref: store_buffer.push(now, now + full_path)
                        while sb_drains and sb_drains[0] <= time_ns:
                            sb_popleft()
                        dd = time_ns + full_path
                        if sb_drains and dd < sb_drains[-1]:
                            dd = sb_drains[-1]
                        sb_drains.append(dd)
                        sb.total_stores += 1
                    else:
                        dom_ls.loads += 1
                        latency_ns = full_path
                    done_ns = time_ns + latency_ns
                    completion[idx] = done_ns
                    rentry = rob_by_index.get(idx)
                    if rentry is not None:
                        rentry.done_ns = done_ns
                        if fe_sleeping and rob_entries and rob_entries[0] is rentry:
                            wake_ns = done_ns if done_ns > time_ns else time_ns
                            fe_sleeping = False
                            ne0 = next_edge[0]
                            if wake_ns > ne0:
                                next_edge[0] = ne0 + ceil(
                                    (wake_ns - ne0) / fe_period
                                ) * fe_period
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                    issued_buf.append(entry)
                    issued += 1
                if issued:
                    qcap = qcap_by_tag[3]
                    for entry in issued_buf:
                        was_full = len(entries) >= qcap
                        k = 0
                        while entries[k] is not entry:
                            k += 1
                        del entries[k]
                        if was_full and fe_sleeping:
                            fe_sleeping = False
                            ne0 = next_edge[0]
                            if time_ns > ne0:
                                next_edge[0] = ne0 + ceil(
                                    (time_ns - ne0) / fe_period
                                ) * fe_period
                            seq += 1
                            heappush(heap, (next_edge[0], 0, seq, 0))
                    del issued_buf[:]
                    dom_ls.issued += issued
                    utilization = issued * iw[3]
                    if utilization > 1.0:
                        utilization = 1.0
                    ebt[3] += abe[3] + ase[3] * utilization
                else:
                    ebt[3] += ge[3]
                    if not entries and max(ls_ports) <= time_ns:
                        sleeping[3] = True
                        timer_target[3] = None
                        wake_gen[3] += 1
                        continue
                    best = _INF
                    for entry in entries:
                        v = entry.visible_ns
                        if v > time_ns:
                            if v < best:
                                best = v
                            continue
                        ready = v
                        inst = entry.instruction
                        s1 = inst.src1
                        if s1 is not None:
                            d = completion_get(s1)
                            if d is None:
                                best = _INF
                                break
                            if d > ready:
                                ready = d
                        s2 = inst.src2
                        if s2 is not None:
                            d = completion_get(s2)
                            if d is None:
                                best = _INF
                                break
                            if d > ready:
                                ready = d
                        if ready <= time_ns:
                            best = _INF
                            break
                        if ready < best:
                            best = ready
                    else:
                        if best != _INF and best > time_ns + 2.0 * per:
                            sleeping[3] = True
                            timer_target[3] = best
                            wake_gen[3] = g = wake_gen[3] + 1
                            seq += 1
                            heappush(heap, (best, 7, seq, g))
                            continue
                seq += 1
                heappush(heap, (next_edge[3], 3, seq, 0))
            elif tag == 4:
                # ======================================================
                # sample tick (ref: _sample, 4 profiled phases)
                # ======================================================
                sample_index += 1
                if prof is not None:
                    t0 = perf_counter()  # statcheck: disable=DET002 -- profiling only
                # -- latch ------------------------------------------------
                occs[1] = len(entries_by_tag[1])
                occs[2] = len(entries_by_tag[2])
                occs[3] = len(entries_by_tag[3])
                record = record_history and sample_index % stride == 0
                if record:
                    h_time_append(time_ns)
                    h_ret_append(rob.retired)
                freq_samples += 1
                if prof is not None:
                    t1 = perf_counter()  # statcheck: disable=DET002 -- profiling only
                    prof_add("latch", t1 - t0)
                # -- observe ----------------------------------------------
                for dtag, denum, ctrl, reg in ctrl_rows:
                    command = ctrl.observe(time_ns, occs[dtag], reg._current_ghz)
                    if command is not None:
                        apply_command(time_ns, denum, reg, command)
                if prof is not None:
                    t2 = perf_counter()  # statcheck: disable=DET002 -- profiling only
                    prof_add("observe", t2 - t1)
                # -- slew -------------------------------------------------
                for dtag, denum, reg in slew_rows:
                    cur = reg._current_ghz
                    tgt = reg._target_ghz
                    if tgt != cur:
                        # ref: regulator.advance(dt) -- identical arithmetic
                        delta = tgt - cur
                        max_move = reg.slew_ghz_per_ns * dt
                        move = max(-max_move, min(max_move, delta))
                        cur += move
                        reg.total_travel_ghz += abs(move)
                        if abs(tgt - cur) < 1e-12:
                            cur = tgt
                        reg._current_ghz = cur
                        v = vtab_get(cur)
                        if v is None:
                            v = voltage_for(cur)
                            vtab[cur] = v
                        reg._voltage = v
                        # ref: clock.set_frequency(current)
                        if cur != freqs[dtag]:
                            freqs[dtag] = cur
                            p = 1.0 / cur
                            periods[dtag] = p
                            neg04[dtag] = -0.4 * p
                            pos04[dtag] = 0.4 * p
                    fsum[dtag] += cur
                    # ref: energy.add(domain, power.background(...))
                    v = reg._voltage
                    if v != bg_v[dtag] or cur != bg_f[dtag]:
                        row = btab[dtag].get((v, cur))
                        if row is None:
                            ce, _, _, gf, lf = params_by_tag[dtag]
                            leak = ce * v * v * lf
                            gated_rate = ce * v * v * gf * cur
                            row = (leak * dt, (leak + gated_rate) * dt)
                            btab[dtag][(v, cur)] = row
                        bg_v[dtag] = v
                        bg_f[dtag] = cur
                        bg_awake[dtag] = row[0]
                        bg_asleep[dtag] = row[1]
                    bd[denum] += bg_asleep[dtag] if sleeping[dtag] else bg_awake[dtag]
                    # ref: _refresh_energy_coefficients (this domain's slice)
                    if v != coeff_v[dtag]:
                        coeff_v[dtag] = v
                        row = ctab[dtag].get(v)
                        if row is None:
                            ce, ab, asl, gf, _ = params_by_tag[dtag]
                            v2c = ce * v * v
                            row = (v2c * ab, v2c * asl, v2c * gf)
                            ctab[dtag][v] = row
                        abe[dtag] = row[0]
                        ase[dtag] = row[1]
                        ge[dtag] = row[2]
                bd[d_fe] += fe_bg_e
                if prof is not None:
                    t3 = perf_counter()  # statcheck: disable=DET002 -- profiling only
                    prof_add("slew", t3 - t2)
                # -- record -----------------------------------------------
                if record:
                    for dtag, occ_ap, freq_ap, iss_ap, reg, dom_obj in rec_rows:
                        occ_ap(occs[dtag])
                        freq_ap(reg._current_ghz)
                        iss_ap(dom_obj.issued)
                if probe is not None and sample_index % obs_stride == 0:
                    # Probe emission is the one sample path allowed to
                    # allocate: it only runs with the observability layer
                    # attached, and _emit_samples expects the reference's
                    # enum-keyed occupancy mapping.
                    emit_samples(
                        time_ns,
                        {d_int: occs[1], d_fp: occs[2], d_ls: occs[3]},  # statcheck: disable=PERF001 -- obs-only cold branch; _emit_samples takes the reference's enum-keyed dict
                    )
                if prof is not None:
                    prof_add("record", perf_counter() - t3)  # statcheck: disable=DET002 -- profiling only
                seq += 1
                heappush(heap, (time_ns + dt, 4, seq, 0))
            else:
                # ======================================================
                # wake timer (ref: run loop's _TIMER_DOMAIN branch)
                # ======================================================
                dtag = tag - 4
                if sleeping[dtag] and ev[3] == wake_gen[dtag]:
                    sleeping[dtag] = False
                    timer_target[dtag] = None
                    wake_gen[dtag] += 1
                    ne = next_edge[dtag]
                    if time_ns > ne:
                        per = periods[dtag]
                        next_edge[dtag] = ne + ceil((time_ns - ne) / per) * per
                    seq += 1
                    heappush(heap, (next_edge[dtag], dtag, seq, 0))

        # --- write locals back into object state ----------------------
        wheel.seq = seq
        self._seq = seq
        self._now = time_ns
        fe.next_index = fe_next
        fe.dispatched = fe_dispatched
        fe.last_stall = fe_last_stall
        fe._blocked_on = fe_blocked
        fe._icache_stall_until = fe_icache_until
        fe._last_fetch_line = fe_last_line
        self._fe_sleeping = fe_sleeping
        sync._transfers = sync_transfers
        sync._deferred = sync_deferred
        for tag in (0, 1, 2, 3):
            clock = clocks[tag]
            clock._freq_ghz = freqs[tag]
            clock._next_edge_ns = next_edge[tag]
        for domain, tag in ((d_int, 1), (d_fp, 2), (d_ls, 3)):
            self._sleeping[domain] = sleeping[tag]
            self._timer_target[domain] = timer_target[tag]
            self._wake_gen[domain] = wake_gen[tag]
            self._freq_sum[domain] = fsum[tag]
        self._freq_samples = freq_samples

        if prof is not None:
            prof.run_finished(samples=freq_samples)
        return self._result(finish_ns)
