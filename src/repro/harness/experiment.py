"""Build controllers and run single (benchmark x scheme) simulations."""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.config import (
    default_adaptive_config,
    transmeta_adaptive_config,
)
from repro.core.controller import AdaptiveDvfsController
from repro.dvfs.attack_decay import AttackDecayConfig, AttackDecayController
from repro.dvfs.base import DvfsController
from repro.dvfs.pid import PidConfig, PidController
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.processor import SimulationResult
from repro.simcore import create_processor
from repro.workloads.generator import generate_trace
from repro.workloads.phases import BenchmarkSpec
from repro.workloads.suite import get_benchmark

#: The four schemes of the paper's evaluation -- the synchronous full-speed
#: baseline, the adaptive scheme (the contribution), and the two prior
#: fixed-interval schemes -- plus the exploratory "centralized" coordinated
#: variant (the open problem the paper points at in Section 3.1).
SCHEMES = ("full-speed", "adaptive", "attack-decay", "pid", "centralized")

#: Per-domain reference occupancies (paper Section 5.1), shared by the
#: adaptive and PID schemes so the comparison targets the same operating
#: point.
_Q_REF = {DomainId.INT: 6, DomainId.FP: 4, DomainId.LS: 4}


def build_controllers(
    scheme: str,
    machine: Optional[MachineConfig] = None,
    pid_interval_ns: Optional[float] = None,
    adaptive_overrides: Optional[Dict[str, object]] = None,
    attack_decay_interval_ns: Optional[float] = None,
) -> Dict[DomainId, DvfsController]:
    """Instantiate one controller per controlled domain for ``scheme``.

    ``pid_interval_ns`` overrides the PID interval (the paper's closing
    interval-length sweep); ``adaptive_overrides`` are forwarded into every
    domain's :class:`AdaptiveConfig` (used by the ablation benches).
    """
    machine = machine or MachineConfig()
    if scheme == "full-speed":
        return {}
    if scheme == "centralized":
        from repro.dvfs.centralized import build_centralized_controllers

        return build_centralized_controllers(
            machine=machine, adaptive_overrides=adaptive_overrides
        )
    controllers: Dict[DomainId, DvfsController] = {}
    for domain in CONTROLLED_DOMAINS:
        if scheme == "adaptive":
            overrides = dict(adaptive_overrides or {})
            # Transmeta-style machines get the paper's "high/big" triggering
            # defaults; explicit overrides still win.
            make_config = (
                transmeta_adaptive_config
                if machine.stalls_during_transition
                else default_adaptive_config
            )
            config = make_config(domain, **overrides)
            controllers[domain] = AdaptiveDvfsController(domain, config, machine)
        elif scheme == "attack-decay":
            ad_config = AttackDecayConfig(
                capacity=machine.queue_capacity(domain),
                **(
                    {"interval_ns": attack_decay_interval_ns}
                    if attack_decay_interval_ns is not None
                    else {}
                ),
            )
            controllers[domain] = AttackDecayController(domain, ad_config)
        elif scheme == "pid":
            pid_config = PidConfig(
                q_ref=float(_Q_REF[domain]),
                **(
                    {"interval_ns": pid_interval_ns}
                    if pid_interval_ns is not None
                    else {}
                ),
            )
            controllers[domain] = PidController(domain, pid_config)
        else:
            raise ValueError(f"unknown scheme {scheme!r}; known: {SCHEMES}")
    return controllers


def run_experiment(
    benchmark: Union[str, BenchmarkSpec],
    scheme: str = "adaptive",
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    seed: Optional[int] = None,
    record_history: bool = True,
    history_stride: int = 4,
    pid_interval_ns: Optional[float] = None,
    adaptive_overrides: Optional[Dict[str, object]] = None,
    initial_frequencies: Optional[Dict[DomainId, float]] = None,
    obs=None,
    simcore: Optional[str] = None,
) -> SimulationResult:
    """Run one benchmark under one DVFS scheme and return the result.

    ``benchmark`` may be a Table-2 name or an explicit
    :class:`BenchmarkSpec`.  ``max_instructions`` truncates the run while
    preserving phase proportions.  ``initial_frequencies`` pins domains to
    starting frequencies (used by offline mu-f characterization).
    ``obs`` enables the observability layer (``True``, an
    :class:`repro.obs.ObsConfig`, or a live :class:`repro.obs.Observability`);
    the result then carries ``probe_summary``.  Step decisions are recorded
    on ``result.step_events`` regardless of ``obs`` and ``record_history``.
    ``simcore`` selects the simulation core (``"ref"``/``"fast"``); ``None``
    defers to the ``REPRO_SIMCORE`` environment variable -- both cores are
    bit-identical, so this never changes results, only throughput.
    """
    spec = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    machine = machine or MachineConfig()
    # one effective seed drives both the trace generator and the processor's
    # jitter RNG: an explicit ``seed`` overrides the spec's default for both
    # (previously the override never reached the processor).
    effective_seed = spec.seed if seed is None else seed
    trace = generate_trace(spec, max_instructions=max_instructions, seed=seed)
    controllers = build_controllers(
        scheme,
        machine=machine,
        pid_interval_ns=pid_interval_ns,
        adaptive_overrides=adaptive_overrides,
    )
    processor = create_processor(
        trace=trace,
        config=machine,
        controllers=controllers,
        seed=effective_seed,
        record_history=record_history,
        history_stride=history_stride,
        benchmark=spec.name,
        scheme=scheme,
        initial_frequencies=initial_frequencies,
        obs=obs,
        simcore=simcore,
    )
    return processor.run()


def run_experiment_batch(jobs, engine=None):
    """Engine-aware batch entry point: run many jobs, return their results.

    ``jobs`` is a sequence of :class:`repro.engine.jobs.SweepJob`.  With no
    ``engine`` the batch runs serially in-process; with a
    :class:`repro.engine.SweepEngine` it goes through the pool/cache/
    telemetry machinery.  Results come back in job order; any failed job
    raises (use ``engine.run`` directly for per-job outcomes).
    """
    from repro.engine.scheduler import SweepEngine

    if engine is None:
        engine = SweepEngine()  # serial, uncached, still retried/observable
    if not isinstance(engine, SweepEngine):
        raise TypeError(f"engine must be a SweepEngine, got {type(engine)!r}")
    return engine.results(list(jobs))
