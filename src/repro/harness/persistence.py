"""Save and reload experiment results as JSON.

Sweeps of 17 benchmarks x several schemes take minutes; persisting their
results lets figures be regenerated, compared across code versions, or
post-processed without re-simulating.  Histories are optional (they
dominate file size).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.mcd.domains import DomainId
from repro.mcd.processor import SimulationResult

FORMAT_VERSION = 1


def result_to_dict(
    result: SimulationResult, include_history: bool = False
) -> Dict:
    """Serialize one result to plain JSON-compatible data."""
    data = {
        "version": FORMAT_VERSION,
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "time_ns": result.time_ns,
        "instructions": result.instructions,
        "energy": {
            "by_domain": {
                d.value: e for d, e in result.energy.by_domain.items()
            },
            "memory": result.energy.memory,
            "total": result.energy.total,
        },
        "transitions": {d.value: t for d, t in result.transitions.items()},
        "mean_frequency_ghz": {
            d.value: f for d, f in result.mean_frequency_ghz.items()
        },
        "branch_mispredict_rate": result.branch_mispredict_rate,
        "l1d_miss_rate": result.l1d_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "sync_deferral_rate": result.sync_deferral_rate,
    }
    if include_history:
        history = result.history
        data["history"] = {
            "time_ns": list(history.time_ns),
            "retired": list(history.retired),
            "occupancy": {
                d.value: list(v) for d, v in history.occupancy.items()
            },
            "frequency_ghz": {
                d.value: list(v) for d, v in history.frequency_ghz.items()
            },
            "issued": {d.value: list(v) for d, v in history.issued.items()},
        }
    return data


def save_results(
    path: str,
    results: Iterable[SimulationResult],
    include_history: bool = False,
) -> None:
    """Write a list of results to a JSON file."""
    payload = {
        "version": FORMAT_VERSION,
        "results": [
            result_to_dict(r, include_history=include_history) for r in results
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_results(path: str) -> List[Dict]:
    """Load results saved by :func:`save_results` (as dictionaries)."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results-file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return payload["results"]


def domain_value(data: Dict, field: str, domain: DomainId):
    """Convenience accessor: ``data[field][domain.value]``."""
    return data[field][domain.value]
