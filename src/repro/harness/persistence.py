"""Save and reload experiment results as JSON (optionally gzipped).

Sweeps of 17 benchmarks x several schemes take minutes; persisting their
results lets figures be regenerated, compared across code versions, or
post-processed without re-simulating.  Histories are optional (they
dominate file size).

This module is also the serialization layer of the sweep engine's
content-addressed result cache (:mod:`repro.engine.cache`):

* writes are crash-safe -- the payload goes to a temporary file in the
  target directory and is :func:`os.replace`'d into place, so a killed
  sweep never leaves a truncated, unloadable file behind;
* paths ending in ``.gz`` are transparently gzip-compressed;
* :func:`result_from_dict` reconstructs a full
  :class:`~repro.mcd.processor.SimulationResult` from the saved data, so
  cached runs are interchangeable with freshly simulated ones.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from typing import Dict, Iterable, List

from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId
from repro.mcd.processor import (
    FrequencyStepEvent,
    SimulationHistory,
    SimulationResult,
)
from repro.power.model import EnergyAccount

FORMAT_VERSION = 1


def result_to_dict(
    result: SimulationResult, include_history: bool = False
) -> Dict:
    """Serialize one result to plain JSON-compatible data."""
    data = {
        "version": FORMAT_VERSION,
        "benchmark": result.benchmark,
        "scheme": result.scheme,
        "time_ns": result.time_ns,
        "instructions": result.instructions,
        "energy": {
            "by_domain": {
                d.value: e for d, e in result.energy.by_domain.items()
            },
            "memory": result.energy.memory,
            "total": result.energy.total,
        },
        "transitions": {d.value: t for d, t in result.transitions.items()},
        "mean_frequency_ghz": {
            d.value: f for d, f in result.mean_frequency_ghz.items()
        },
        "issued_by_domain": {
            d.value: n for d, n in result.issued_by_domain.items()
        },
        "branch_mispredict_rate": result.branch_mispredict_rate,
        "l1d_miss_rate": result.l1d_miss_rate,
        "l2_miss_rate": result.l2_miss_rate,
        "sync_deferral_rate": result.sync_deferral_rate,
        "step_events": [
            {
                "time_ns": e.time_ns,
                "domain": e.domain.value,
                "steps": e.steps,
                "target_ghz": e.target_ghz,
                "freq_ghz": e.freq_ghz,
                "applied": e.applied,
            }
            for e in result.step_events
        ],
    }
    if result.probe_summary is not None:
        data["probe_summary"] = result.probe_summary
    if include_history:
        history = result.history
        data["history"] = {
            "time_ns": list(history.time_ns),
            "retired": list(history.retired),
            "occupancy": {
                d.value: list(v) for d, v in history.occupancy.items()
            },
            "frequency_ghz": {
                d.value: list(v) for d, v in history.frequency_ghz.items()
            },
            "issued": {d.value: list(v) for d, v in history.issued.items()},
        }
    return data


def _domain_map(data: Dict, cast=float) -> Dict[DomainId, object]:
    return {DomainId(name): cast(value) for name, value in data.items()}


def result_from_dict(data: Dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` data.

    The inverse is lossless for every scalar field.  When the dictionary
    carries no ``history`` (the default save mode) the reconstructed
    result gets an empty :class:`SimulationHistory`.
    """
    energy = EnergyAccount()
    for name, value in data["energy"]["by_domain"].items():
        energy.by_domain[DomainId(name)] = float(value)
    energy.memory = float(data["energy"]["memory"])

    history = SimulationHistory()
    saved_history = data.get("history")
    if saved_history:
        history.time_ns = [float(t) for t in saved_history["time_ns"]]
        history.retired = [int(r) for r in saved_history["retired"]]
        history.occupancy = {
            DomainId(d): [int(v) for v in series]
            for d, series in saved_history["occupancy"].items()
        }
        history.frequency_ghz = {
            DomainId(d): [float(v) for v in series]
            for d, series in saved_history["frequency_ghz"].items()
        }
        history.issued = {
            DomainId(d): [int(v) for v in series]
            for d, series in saved_history["issued"].items()
        }

    issued = data.get("issued_by_domain")
    return SimulationResult(
        benchmark=data["benchmark"],
        scheme=data["scheme"],
        time_ns=float(data["time_ns"]),
        instructions=int(data["instructions"]),
        energy=energy,
        history=history,
        transitions=_domain_map(data["transitions"], int),
        mean_frequency_ghz=_domain_map(data["mean_frequency_ghz"], float),
        issued_by_domain=(
            _domain_map(issued, int)
            if issued is not None
            else {d: 0 for d in CONTROLLED_DOMAINS}
        ),
        branch_mispredict_rate=float(data["branch_mispredict_rate"]),
        l1d_miss_rate=float(data["l1d_miss_rate"]),
        l2_miss_rate=float(data["l2_miss_rate"]),
        sync_deferral_rate=float(data["sync_deferral_rate"]),
        # both fields post-date FORMAT_VERSION 1 files; absent means empty
        step_events=[
            FrequencyStepEvent(
                time_ns=float(e["time_ns"]),
                domain=DomainId(e["domain"]),
                steps=int(e["steps"]),
                target_ghz=float(e["target_ghz"]),
                freq_ghz=float(e["freq_ghz"]),
                applied=bool(e["applied"]),
            )
            for e in data.get("step_events", [])
        ],
        probe_summary=data.get("probe_summary"),
    )


def _is_gzip_path(path: str) -> bool:
    return path.endswith(".gz")


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX, so readers either see the previous
    complete file or the new complete file -- never a truncation.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        if _is_gzip_path(path):
            with os.fdopen(fd, "wb") as raw:
                # mtime=0 keeps the compressed bytes a pure function of the
                # payload, which the content-addressed cache relies on.
                with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as zipped:
                    zipped.write(text.encode("utf-8"))
        else:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def save_results(
    path: str,
    results: Iterable[SimulationResult],
    include_history: bool = False,
) -> None:
    """Write a list of results to a JSON file (gzipped if ``path`` ends
    in ``.gz``).  The write is atomic: a crash mid-save leaves any
    pre-existing file untouched.
    """
    payload = {
        "version": FORMAT_VERSION,
        "results": [
            result_to_dict(r, include_history=include_history) for r in results
        ],
    }
    _atomic_write_text(path, json.dumps(payload))


def load_results(path: str) -> List[Dict]:
    """Load results saved by :func:`save_results` (as dictionaries)."""
    if _is_gzip_path(path):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        with open(path) as handle:
            payload = json.load(handle)
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results-file version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return payload["results"]


def load_result_objects(path: str) -> List[SimulationResult]:
    """Load results and reconstruct them as :class:`SimulationResult`."""
    return [result_from_dict(data) for data in load_results(path)]


def domain_value(data: Dict, field: str, domain: DomainId):
    """Convenience accessor: ``data[field][domain.value]``."""
    return data[field][domain.value]
