"""Plain-text tables and CSV series for the benchmark harness output."""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned fixed-width text table (paper-style rows)."""
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> None:
    """Write a table to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def csv_string(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render a table as a CSV string (for embedding in bench output)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
