"""Static-oracle baseline: the best *fixed* per-domain frequency setting.

The paper's case for intra-task online DVFS rests on programs having phases:
no single frequency setting is right for the whole run.  This module finds
(approximately) the best static setting per benchmark -- the strongest
possible non-adaptive competitor, unrealizable in practice since it needs
the whole run in advance -- so the harness can measure how much of the
adaptive scheme's gain a static oracle could capture.

Exhaustive search over per-domain candidates is cubic; coordinate descent
(optimize one domain at a time, repeat until no move helps) reaches the
same answer in a couple of dozen runs for these well-behaved landscapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.harness.experiment import run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.power.metrics import RunMetrics
from repro.workloads.phases import BenchmarkSpec
from repro.workloads.suite import get_benchmark

#: default frequency candidates per domain (GHz)
DEFAULT_CANDIDATES: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class StaticOracleResult:
    """Outcome of the static search."""

    benchmark: str
    frequencies: Dict[DomainId, float]
    metrics: RunMetrics
    evaluations: int

    def frequency(self, domain: DomainId) -> float:
        return self.frequencies[domain]


def evaluate_static(
    benchmark: Union[str, BenchmarkSpec],
    frequencies: Dict[DomainId, float],
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
) -> RunMetrics:
    """Run a benchmark with domains pinned to fixed frequencies."""
    result = run_experiment(
        benchmark,
        scheme="full-speed",  # no controller; the pin does the work
        machine=machine,
        max_instructions=max_instructions,
        record_history=False,
        initial_frequencies=dict(frequencies),
    )
    return result.metrics


def find_static_best(
    benchmark: Union[str, BenchmarkSpec],
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    max_passes: int = 2,
    max_degradation_pct: Optional[float] = None,
) -> StaticOracleResult:
    """Coordinate-descent search for the EDP-minimizing static setting.

    Starts at f_max everywhere; sweeps each controlled domain's candidates
    in turn, keeping any strict improvement; stops after a full pass with
    no move or after ``max_passes`` passes.

    ``max_degradation_pct`` bounds the acceptable slowdown relative to the
    all-f_max run.  An *unconstrained* EDP oracle happily trades 10%+
    slowdowns for quadratic voltage savings -- a regime the paper's design
    deliberately avoids (q_ref is chosen for ~5% degradation), so
    like-for-like comparisons should pass the same budget here.
    """
    if len(candidates) < 1:
        raise ValueError("need at least one candidate frequency")
    if max_passes < 1:
        raise ValueError("max_passes must be positive")
    spec = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark

    current: Dict[DomainId, float] = {
        d: max(candidates) for d in CONTROLLED_DOMAINS
    }
    evaluations = 0

    def measure(freqs: Dict[DomainId, float]) -> RunMetrics:
        nonlocal evaluations
        evaluations += 1
        return evaluate_static(
            spec, freqs, machine=machine, max_instructions=max_instructions
        )

    best_metrics = measure(current)
    time_budget_ns = (
        best_metrics.time_ns * (1.0 + max_degradation_pct / 100.0)
        if max_degradation_pct is not None
        else None
    )
    for _ in range(max_passes):
        improved = False
        for domain in CONTROLLED_DOMAINS:
            for candidate in candidates:
                if candidate == current[domain]:
                    continue
                trial = dict(current)
                trial[domain] = candidate
                metrics = measure(trial)
                if time_budget_ns is not None and metrics.time_ns > time_budget_ns:
                    continue
                if metrics.edp < best_metrics.edp:
                    current = trial
                    best_metrics = metrics
                    improved = True
        if not improved:
            break
    return StaticOracleResult(
        benchmark=spec.name,
        frequencies=current,
        metrics=best_metrics,
        evaluations=evaluations,
    )
