"""Baseline-relative comparisons across schemes and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.harness.experiment import run_experiment
from repro.mcd.domains import MachineConfig
from repro.mcd.processor import SimulationResult
from repro.power.metrics import (
    RunMetrics,
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)
from repro.workloads.phases import BenchmarkSpec
from repro.workloads.suite import get_benchmark


@dataclass(frozen=True)
class SchemeResult:
    """One scheme's outcome on one benchmark, relative to full speed."""

    scheme: str
    metrics: RunMetrics
    energy_savings_pct: float
    perf_degradation_pct: float
    edp_improvement_pct: float
    transitions: int


@dataclass(frozen=True)
class BenchmarkComparison:
    """All schemes' outcomes on one benchmark."""

    benchmark: str
    suite: str
    fast_varying: bool
    baseline: RunMetrics
    schemes: Tuple[SchemeResult, ...]

    def result_for(self, scheme: str) -> SchemeResult:
        for result in self.schemes:
            if result.scheme == scheme:
                return result
        raise KeyError(f"no result for scheme {scheme!r} on {self.benchmark}")


def comparison_from_runs(
    spec: BenchmarkSpec,
    baseline_run: SimulationResult,
    scheme_runs: Sequence[SimulationResult],
) -> BenchmarkComparison:
    """Assemble a :class:`BenchmarkComparison` from already-executed runs.

    This is the shared back half of :func:`compare_schemes` and the
    engine-driven sweep: it does not care whether the runs came from a
    worker pool, the result cache, or in-process execution.
    """
    baseline = baseline_run.metrics
    results: List[SchemeResult] = []
    for run in scheme_runs:
        metrics = run.metrics
        results.append(
            SchemeResult(
                scheme=run.scheme,
                metrics=metrics,
                energy_savings_pct=energy_savings_percent(baseline, metrics),
                perf_degradation_pct=performance_degradation_percent(baseline, metrics),
                edp_improvement_pct=edp_improvement_percent(baseline, metrics),
                transitions=sum(run.transitions.values()),
            )
        )
    return BenchmarkComparison(
        benchmark=spec.name,
        suite=spec.suite,
        fast_varying=spec.fast_varying,
        baseline=baseline,
        schemes=tuple(results),
    )


def compare_schemes(
    benchmark: Union[str, BenchmarkSpec],
    schemes: Sequence[str] = ("adaptive", "attack-decay", "pid"),
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    pid_interval_ns: Optional[float] = None,
    record_history: bool = False,
    seed: Optional[int] = None,
    obs=None,
    simcore: Optional[str] = None,
) -> BenchmarkComparison:
    """Run the baseline plus each scheme on one benchmark and compare.

    ``obs`` is forwarded to every :func:`run_experiment`; note a live
    ``Observability`` instance would then accumulate all runs into one
    trace, so per-run configs (``True`` / ``ObsConfig``) are the useful
    forms here.  ``simcore`` pins the simulation core for every run
    (``None`` defers to ``REPRO_SIMCORE``).
    """
    spec = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    common = dict(
        machine=machine,
        max_instructions=max_instructions,
        record_history=record_history,
        seed=seed,
        obs=obs,
        simcore=simcore,
    )
    baseline_run = run_experiment(spec, scheme="full-speed", **common)
    scheme_runs = [
        run_experiment(
            spec, scheme=scheme, pid_interval_ns=pid_interval_ns, **common
        )
        for scheme in schemes
    ]
    return comparison_from_runs(spec, baseline_run, scheme_runs)


def sweep(
    benchmarks: Iterable[Union[str, BenchmarkSpec]],
    schemes: Sequence[str] = ("adaptive", "attack-decay", "pid"),
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    pid_interval_ns: Optional[float] = None,
    engine=None,
    window=None,
    seed: Optional[int] = None,
    on_failure: str = "raise",
    obs=None,
    simcore: Optional[str] = None,
) -> List[BenchmarkComparison]:
    """Compare schemes across a benchmark list (the per-figure sweeps).

    With ``engine`` (a :class:`repro.engine.SweepEngine`) the whole
    ``(benchmark x scheme)`` grid -- baseline included -- is fanned out as
    one batch of jobs, gaining the engine's worker pool, result cache,
    retry policy, and telemetry.  Without it, each benchmark is compared
    serially in-process, as before.

    ``window``, when given, is a callable mapping a spec to its
    per-benchmark instruction window and overrides ``max_instructions``
    (the full-evaluation sweep truncates every benchmark except
    ``epic-decode``).  ``on_failure`` controls the engine path when a job
    exhausts its retries: ``"raise"`` aborts with details, ``"skip"``
    drops that benchmark's comparison and keeps the rest (failures stay
    visible in the engine's telemetry).

    ``obs`` enables per-run observability.  On the engine path it must be
    picklable (``True`` or an :class:`repro.obs.ObsConfig`); each job's
    result then carries its ``probe_summary``, which the engine's
    telemetry aggregates into the sweep summary.
    """
    specs = [
        get_benchmark(b) if isinstance(b, str) else b for b in benchmarks
    ]

    def instructions_for(spec: BenchmarkSpec) -> Optional[int]:
        return window(spec) if window is not None else max_instructions

    if engine is None:
        return [
            compare_schemes(
                spec,
                schemes=schemes,
                machine=machine,
                max_instructions=instructions_for(spec),
                pid_interval_ns=pid_interval_ns,
                seed=seed,
                obs=obs,
                simcore=simcore,
            )
            for spec in specs
        ]

    if on_failure not in ("raise", "skip"):
        raise ValueError(f"on_failure must be 'raise' or 'skip', got {on_failure!r}")

    from repro.engine.jobs import SweepJob
    from repro.obs.facade import ObsConfig, Observability

    if obs is True:
        obs = ObsConfig()
    elif isinstance(obs, Observability):
        raise ValueError(
            "the engine path needs a picklable obs form: pass True or an "
            "ObsConfig, not a live Observability"
        )
    elif obs is not None and not isinstance(obs, ObsConfig):
        raise TypeError(f"obs must be None, True, or an ObsConfig, got {type(obs)!r}")

    all_schemes = ("full-speed",) + tuple(schemes)
    jobs = [
        SweepJob(
            benchmark=spec,
            scheme=scheme,
            machine=machine,
            max_instructions=instructions_for(spec),
            seed=seed,
            # only PID consumes the interval override; keeping it off the
            # other schemes' jobs lets their cache entries be shared across
            # interval-sweep invocations (the Table-3 workload)
            pid_interval_ns=pid_interval_ns if scheme == "pid" else None,
            obs=obs,
            simcore=simcore,
        )
        for spec in specs
        for scheme in all_schemes
    ]
    outcomes = engine.run(jobs)

    comparisons: List[BenchmarkComparison] = []
    per_spec = len(all_schemes)
    for spec_index, spec in enumerate(specs):
        group = outcomes[spec_index * per_spec:(spec_index + 1) * per_spec]
        failed = [o for o in group if not o.ok]
        if failed:
            if on_failure == "raise":
                details = "; ".join(
                    f"{o.job.job_id}: {o.error}" for o in failed
                )
                raise RuntimeError(
                    f"sweep failed on {spec.name}: {details}"
                )
            continue
        comparisons.append(
            comparison_from_runs(
                spec, group[0].result, [o.result for o in group[1:]]
            )
        )
    return comparisons


def aggregate(
    comparisons: Sequence[BenchmarkComparison], scheme: str
) -> Dict[str, float]:
    """Arithmetic-mean savings/degradation/EDP for one scheme over a sweep."""
    if not comparisons:
        raise ValueError("nothing to aggregate")
    picks = [c.result_for(scheme) for c in comparisons]
    n = len(picks)
    return {
        "energy_savings_pct": sum(p.energy_savings_pct for p in picks) / n,
        "perf_degradation_pct": sum(p.perf_degradation_pct for p in picks) / n,
        "edp_improvement_pct": sum(p.edp_improvement_pct for p in picks) / n,
        "transitions": sum(p.transitions for p in picks) / n,
    }
