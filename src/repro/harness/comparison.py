"""Baseline-relative comparisons across schemes and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.harness.experiment import run_experiment
from repro.mcd.domains import MachineConfig
from repro.mcd.processor import SimulationResult
from repro.power.metrics import (
    RunMetrics,
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)
from repro.workloads.phases import BenchmarkSpec
from repro.workloads.suite import get_benchmark


@dataclass(frozen=True)
class SchemeResult:
    """One scheme's outcome on one benchmark, relative to full speed."""

    scheme: str
    metrics: RunMetrics
    energy_savings_pct: float
    perf_degradation_pct: float
    edp_improvement_pct: float
    transitions: int


@dataclass(frozen=True)
class BenchmarkComparison:
    """All schemes' outcomes on one benchmark."""

    benchmark: str
    suite: str
    fast_varying: bool
    baseline: RunMetrics
    schemes: Tuple[SchemeResult, ...]

    def result_for(self, scheme: str) -> SchemeResult:
        for result in self.schemes:
            if result.scheme == scheme:
                return result
        raise KeyError(f"no result for scheme {scheme!r} on {self.benchmark}")


def compare_schemes(
    benchmark: Union[str, BenchmarkSpec],
    schemes: Sequence[str] = ("adaptive", "attack-decay", "pid"),
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    pid_interval_ns: Optional[float] = None,
    record_history: bool = False,
) -> BenchmarkComparison:
    """Run the baseline plus each scheme on one benchmark and compare."""
    spec = get_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    common = dict(
        machine=machine,
        max_instructions=max_instructions,
        record_history=record_history,
    )
    baseline_run = run_experiment(spec, scheme="full-speed", **common)
    baseline = baseline_run.metrics

    results: List[SchemeResult] = []
    for scheme in schemes:
        run = run_experiment(
            spec, scheme=scheme, pid_interval_ns=pid_interval_ns, **common
        )
        metrics = run.metrics
        results.append(
            SchemeResult(
                scheme=scheme,
                metrics=metrics,
                energy_savings_pct=energy_savings_percent(baseline, metrics),
                perf_degradation_pct=performance_degradation_percent(baseline, metrics),
                edp_improvement_pct=edp_improvement_percent(baseline, metrics),
                transitions=sum(run.transitions.values()),
            )
        )
    return BenchmarkComparison(
        benchmark=spec.name,
        suite=spec.suite,
        fast_varying=spec.fast_varying,
        baseline=baseline,
        schemes=tuple(results),
    )


def sweep(
    benchmarks: Iterable[Union[str, BenchmarkSpec]],
    schemes: Sequence[str] = ("adaptive", "attack-decay", "pid"),
    machine: Optional[MachineConfig] = None,
    max_instructions: Optional[int] = None,
    pid_interval_ns: Optional[float] = None,
) -> List[BenchmarkComparison]:
    """Compare schemes across a benchmark list (the per-figure sweeps)."""
    return [
        compare_schemes(
            benchmark,
            schemes=schemes,
            machine=machine,
            max_instructions=max_instructions,
            pid_interval_ns=pid_interval_ns,
        )
        for benchmark in benchmarks
    ]


def aggregate(
    comparisons: Sequence[BenchmarkComparison], scheme: str
) -> Dict[str, float]:
    """Arithmetic-mean savings/degradation/EDP for one scheme over a sweep."""
    if not comparisons:
        raise ValueError("nothing to aggregate")
    picks = [c.result_for(scheme) for c in comparisons]
    n = len(picks)
    return {
        "energy_savings_pct": sum(p.energy_savings_pct for p in picks) / n,
        "perf_degradation_pct": sum(p.perf_degradation_pct for p in picks) / n,
        "edp_improvement_pct": sum(p.edp_improvement_pct for p in picks) / n,
        "transitions": sum(p.transitions for p in picks) / n,
    }
