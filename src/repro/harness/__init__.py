"""Experiment orchestration: build controllers, run simulations, compare.

This package turns (benchmark, scheme) pairs into
:class:`~repro.mcd.processor.SimulationResult` objects and computes the
baseline-relative quantities the paper's evaluation section reports.
"""

from repro.harness.experiment import (
    SCHEMES,
    build_controllers,
    run_experiment,
    run_experiment_batch,
)
from repro.harness.comparison import (
    SchemeResult,
    BenchmarkComparison,
    compare_schemes,
    sweep,
    aggregate,
)
from repro.harness.reporting import format_table, write_csv
from repro.harness.persistence import (
    result_to_dict,
    result_from_dict,
    save_results,
    load_results,
    load_result_objects,
)

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "load_result_objects",
    "SCHEMES",
    "build_controllers",
    "run_experiment",
    "run_experiment_batch",
    "SchemeResult",
    "BenchmarkComparison",
    "compare_schemes",
    "sweep",
    "aggregate",
    "format_table",
    "write_csv",
]
