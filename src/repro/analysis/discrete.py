"""Discrete-time model of the sampled DVFS control loop (paper future work).

Section 4 of the paper derives a *continuous* aggregate model and notes:
"A similar but more complicated discrete-time model can be derived to get a
better and more accurate analysis result.  We leave this as possible future
work."  This module is that model.

Per sampling period (time unit = one 4 ns sample), with queue error
``e[k] = q[k] - q_ref`` and service mismatch ``m[k] = mu[k] - lambda``:

    e[k+1] = e[k] - gamma * m[k]
    m[k+1] = m[k] + k_m * e[k-d] + k_l * (e[k-d] - e[k-d-1])

where ``d >= 0`` models the controller's reaction dead time (the time-delay
counter plus switching time, in samples).  The loop is linear; stability is
the spectral radius of its companion matrix being < 1.

The payoff over the continuous analysis: **Remark 1 ("stable for any
positive parameters") is an artifact of the continuous approximation.**  The
discrete loop goes unstable when gains are large relative to the sampling
period -- small time delays do not merely "weaken noise rejection" (Remark
2), past a boundary they destabilize the loop outright, and dead time
shrinks that boundary further.  The stability region is computable here and
checked against time-domain simulation in the tests and the companion
bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.linearize import LinearizedSystem


@dataclass(frozen=True)
class DiscreteClosedLoop:
    """The sampled control loop x[k+1] = A x[k]."""

    k_m: float
    k_l: float
    gamma: float = 1.0
    #: reaction dead time in samples (time-delay counter + switching time)
    dead_time: int = 0

    def __post_init__(self) -> None:
        if self.k_m <= 0 or self.k_l < 0:
            raise ValueError("need k_m > 0 and k_l >= 0")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if self.dead_time < 0:
            raise ValueError("dead time must be non-negative")

    # ------------------------------------------------------------------

    def system_matrix(self) -> np.ndarray:
        """Companion matrix over state [e[k], e[k-1], ..., e[k-d-1], m[k]].

        The error history must reach back ``d+1`` samples so the controller
        can form both ``e[k-d]`` and ``e[k-d-1]``.
        """
        d = self.dead_time
        n_err = d + 2  # e[k] .. e[k-d-1]
        n = n_err + 1  # plus m[k]
        a = np.zeros((n, n))
        # e[k+1] = e[k] - gamma m[k]
        a[0, 0] = 1.0
        a[0, n - 1] = -self.gamma
        # shift registers e[k-i+1] <- e[k-i]
        for i in range(1, n_err):
            a[i, i - 1] = 1.0
        # m[k+1] = m[k] + (k_m + k_l) e[k-d] - k_l e[k-d-1]
        a[n - 1, d] = self.k_m + self.k_l
        a[n - 1, d + 1] = -self.k_l
        a[n - 1, n - 1] = 1.0
        return a

    def eigenvalues(self) -> np.ndarray:
        return np.linalg.eigvals(self.system_matrix())

    @property
    def spectral_radius(self) -> float:
        return float(np.abs(self.eigenvalues()).max())

    @property
    def is_stable(self) -> bool:
        """All closed-loop modes strictly inside the unit circle."""
        return self.spectral_radius < 1.0 - 1e-12

    @property
    def stability_margin(self) -> float:
        """Distance of the slowest mode from the unit circle (negative when
        unstable)."""
        return 1.0 - self.spectral_radius

    # ------------------------------------------------------------------

    def simulate_step(
        self, e0: float = -1.0, steps: int = 2000
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Time-domain response from an initial queue error ``e0``.

        Returns (error series, mismatch series); used to cross-check the
        eigenvalue verdicts.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        a = self.system_matrix()
        n = a.shape[0]
        x = np.zeros(n)
        x[: n - 1] = e0  # history starts displaced
        errors = np.empty(steps)
        mismatches = np.empty(steps)
        for k in range(steps):
            errors[k] = x[0]
            mismatches[k] = x[-1]
            x = a @ x
            if float(np.abs(x).max()) > 1e12:
                # clearly divergent: stop before overflow and hold the last
                # (huge) value so callers see the blow-up without NaNs
                errors[k + 1 :] = x[0]
                mismatches[k + 1 :] = x[-1]
                break
        return errors, mismatches


def from_continuous(
    system: LinearizedSystem, gamma: float = 1.0, dead_time: int = 0
) -> DiscreteClosedLoop:
    """Sample the continuous design at the controller's sampling period.

    The continuous gains K_m (per period^2) and K_l (per period) map
    one-to-one when the time unit is one sampling period.  ``gamma`` is
    factored out of the continuous K's (which absorb it), so pass the same
    gamma used to build them; the product stays identical.
    """
    return DiscreteClosedLoop(
        k_m=system.k_m / gamma,
        k_l=system.k_l / gamma,
        gamma=gamma,
        dead_time=dead_time,
    )


def max_stable_km(
    k_l: float, gamma: float = 1.0, dead_time: int = 0, hi: float = 16.0
) -> float:
    """Largest k_m keeping the sampled loop stable (bisection).

    The continuous model says "any positive k_m"; the discrete answer is
    finite and shrinks with dead time -- the quantitative content of this
    module's headline correction.
    """
    if hi <= 0:
        raise ValueError("hi must be positive")

    def stable(k_m: float) -> bool:
        return DiscreteClosedLoop(
            k_m=k_m, k_l=k_l, gamma=gamma, dead_time=dead_time
        ).is_stable

    lo = 1e-9
    if not stable(lo):
        return 0.0
    if stable(hi):
        return hi
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if stable(mid):
            lo = mid
        else:
            hi = mid
    return lo
