"""Linearization of the closed loop (paper eqs 10-12).

Rewriting the controller ODE in the service-rate variable ``mu`` via
``mu' = (dmu/df) f'`` and using the design's delay scaling ``g(f) = 1/f^2``
(which multiplies the slew by f^2) gives

    mu'(t) = (dmu/df) * f^2 * [ m*step*(q - q_ref)/T_m0 + l*step*q'/T_l0 ]

and with the quadratic approximation ``dmu/df ~= k/f^2`` the f-dependence
cancels, leaving the linear system of eq 12:

    q'(t)  = gamma*lambda(t) - gamma*mu(t)
    mu'(t) = (m*k*step/T_m0)*(q - q_ref) + (l*k*step/T_l0)*q'

whose loop gains are ``K_m = m*gamma*k*step/T_m0`` and
``K_l = l*gamma*k*step/T_l0`` (eq 13's parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import ClosedLoopModel


@dataclass(frozen=True)
class LinearizedSystem:
    """The linear 2nd-order closed loop in (q - q_ref)."""

    k_m: float
    k_l: float
    #: the k constant and operating frequency the linearization used
    k: float
    f_op: float

    def __post_init__(self) -> None:
        if self.k_m <= 0 or self.k_l <= 0:
            raise ValueError(
                "K_m and K_l must be positive (they are with any non-zero "
                "step and delays)"
            )

    @property
    def natural_frequency(self) -> float:
        """omega_n = sqrt(K_m), in rad per sampling period."""
        return self.k_m**0.5

    @property
    def delay_gain_ratio(self) -> float:
        """K_m / K_l = (m*T_l0) / (l*T_m0)."""
        return self.k_m / self.k_l


def linearize(model: ClosedLoopModel, f_op: float) -> LinearizedSystem:
    """Linearize ``model`` around operating frequency ``f_op`` (eq 12)."""
    if not model.f_min <= f_op <= model.f_max:
        raise ValueError("operating point must lie in the frequency range")
    k = model.service.k_approx(f_op)
    c = model.controller
    k_m = c.m * model.gamma * k * c.step / c.t_m0
    k_l = c.l * model.gamma * k * c.step / c.t_l0
    return LinearizedSystem(k_m=k_m, k_l=k_l, k=k, f_op=f_op)
