"""Classical stability analysis of the linearized loop (paper eq 13 and
Remarks 1-3).

The linearized system in ``x = q - q_ref`` is the standard 2nd-order loop
``x'' + K_l x' + K_m x = 0`` with characteristic roots

    s_{1,2} = ( -K_l +- sqrt(K_l^2 - 4 K_m) ) / 2.

* **Remark 1** -- with any positive parameters both roots have negative real
  part: the system is stable for any workload input.
* **Remark 2** -- smaller time delays mean larger K's, improving settling
  time (t_s = 8/K_l) and rise time, at the cost of noise rejection (which the
  continuous model does not capture; the discrete simulator does).
* **Remark 3** -- keeping the damping ratio xi = K_l / (2 sqrt(K_m)) in
  [0.5, 1] (small overshoot, decent rise time) constrains the delay ratio
  T_m0/T_l0 to [1/K_l, 4/K_l]; with a typical K_l ~ 1/2 that is the paper's
  "2-8x larger" rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.analysis.linearize import LinearizedSystem


def characteristic_roots(k_m: float, k_l: float) -> Tuple[complex, complex]:
    """Roots of s^2 + K_l s + K_m = 0 (paper eq 13).

    Uses the numerically stable form for the overdamped case: the
    smaller-magnitude root is derived from the product of roots (= K_m)
    instead of the cancellation-prone ``-K_l + sqrt(...)``.
    """
    disc = k_l * k_l - 4.0 * k_m
    if disc >= 0.0:
        big = (-k_l - math.sqrt(disc)) / 2.0
        small = k_m / big if big != 0.0 else 0.0
        return (complex(small), complex(big))
    imag = math.sqrt(-disc) / 2.0
    real = -k_l / 2.0
    return (complex(real, imag), complex(real, -imag))


def is_stable(k_m: float, k_l: float) -> bool:
    """Remark 1: both roots strictly in the left half-plane."""
    r1, r2 = characteristic_roots(k_m, k_l)
    return r1.real < 0 and r2.real < 0


def damping_ratio(k_m: float, k_l: float) -> float:
    """xi = K_l / (2 sqrt(K_m))."""
    if k_m <= 0:
        raise ValueError("K_m must be positive")
    return k_l / (2.0 * math.sqrt(k_m))


def settling_time(k_l: float) -> float:
    """2%-band settling time t_s = 8 / K_l (in sampling periods)."""
    if k_l <= 0:
        raise ValueError("K_l must be positive")
    return 8.0 / k_l


def rise_time(k_m: float, k_l: float) -> float:
    """Standard 2nd-order rise-time estimate t_r = (0.8 + 2.5 xi)/omega_n."""
    xi = damping_ratio(k_m, k_l)
    omega_n = math.sqrt(k_m)
    return (0.8 + 2.5 * xi) / omega_n


def percent_overshoot(k_m: float, k_l: float) -> float:
    """Max percent overshoot of the unit-step response.

    ``100 * exp(-pi xi / sqrt(1 - xi^2))`` for underdamped systems, zero for
    critically/over-damped ones.
    """
    xi = damping_ratio(k_m, k_l)
    if xi >= 1.0:
        return 0.0
    return 100.0 * math.exp(-math.pi * xi / math.sqrt(1.0 - xi * xi))


def delay_ratio_bounds(
    k_l: float, xi_min: float = 0.5, xi_max: float = 1.0
) -> Tuple[float, float]:
    """Remark 3: bounds on R = T_m0/T_l0 that keep xi in [xi_min, xi_max].

    With m = l, K_m = K_l / R, so xi = sqrt(K_l * R) / 2 and
    R = 4 xi^2 / K_l -- increasing in xi, hence the bounds map directly.
    """
    if k_l <= 0:
        raise ValueError("K_l must be positive")
    if not 0 < xi_min < xi_max:
        raise ValueError("need 0 < xi_min < xi_max")
    return (4.0 * xi_min * xi_min / k_l, 4.0 * xi_max * xi_max / k_l)


def recommended_delay_ratio_range(k_l: float = 0.5) -> Tuple[float, float]:
    """The paper's "2-8 times larger" rule, at the typical K_l ~ 1/2."""
    return delay_ratio_bounds(k_l, 0.5, 1.0)


@dataclass(frozen=True)
class StabilityReport:
    """Everything the stability analysis says about one design point."""

    k_m: float
    k_l: float
    roots: Tuple[complex, complex]
    stable: bool
    damping_ratio: float
    natural_frequency: float
    settling_time: float
    rise_time: float
    percent_overshoot: float
    delay_ratio_for_small_overshoot: Tuple[float, float]

    def summary(self) -> str:
        r1, r2 = self.roots
        lo, hi = self.delay_ratio_for_small_overshoot
        return (
            f"K_m={self.k_m:.4g} K_l={self.k_l:.4g} "
            f"roots=({r1:.4g}, {r2:.4g}) "
            f"{'STABLE' if self.stable else 'UNSTABLE'} "
            f"xi={self.damping_ratio:.3f} "
            f"t_s={self.settling_time:.1f} t_r={self.rise_time:.1f} "
            f"overshoot={self.percent_overshoot:.1f}% "
            f"T_m0/T_l0 in [{lo:.1f}, {hi:.1f}]"
        )


def analyze(system: LinearizedSystem) -> StabilityReport:
    """Full Remark 1-3 analysis of a linearized design point."""
    k_m, k_l = system.k_m, system.k_l
    return StabilityReport(
        k_m=k_m,
        k_l=k_l,
        roots=characteristic_roots(k_m, k_l),
        stable=is_stable(k_m, k_l),
        damping_ratio=damping_ratio(k_m, k_l),
        natural_frequency=system.natural_frequency,
        settling_time=settling_time(k_l),
        rise_time=rise_time(k_m, k_l),
        percent_overshoot=percent_overshoot(k_m, k_l),
        delay_ratio_for_small_overshoot=delay_ratio_bounds(k_l),
    )
