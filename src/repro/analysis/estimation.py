"""Online/offline estimation of the mu-f service-model parameters.

The paper's service model (Section 4.3) splits per-instruction execution
time into a frequency-independent part ``t1`` and a frequency-dependent part
``c2``:  ``1/mu = t1 + c2/f``.  It notes that "the value of t1 and c2 can be
estimated online or offline using methods similar to those in [11, 24]".
This module implements that estimation: since ``1/mu`` is linear in ``1/f``,
ordinary least squares over observed (frequency, throughput) pairs recovers
``t1`` (intercept) and ``c2`` (slope).

Observations need frequency *variation* to be informative -- conveniently,
any DVFS-controlled run provides it.  :func:`estimate_from_history` windows
a simulation's recorded frequency/issue series and fits the model, closing
the Section-4 loop: measure a real domain, fit mu-f, linearize, and check
stability of the actual operating point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.model import ServiceModel
from repro.mcd.domains import DomainId
from repro.mcd.processor import SimulationHistory


@dataclass(frozen=True)
class MuFEstimate:
    """A fitted mu-f model with fit diagnostics."""

    t1: float
    c2: float
    r_squared: float
    n_points: int

    def service_model(self) -> ServiceModel:
        """The fitted model as a :class:`ServiceModel` (clamps t1 at 0)."""
        return ServiceModel(t1=max(0.0, self.t1), c2=max(1e-9, self.c2))

    @property
    def memory_boundedness(self) -> float:
        """Fraction of per-instruction time that is frequency-independent,
        evaluated at full speed (f = 1): t1 / (t1 + c2)."""
        t1 = max(0.0, self.t1)
        return t1 / (t1 + max(1e-12, self.c2))


def fit_mu_f(
    frequencies: Sequence[float], throughputs: Sequence[float]
) -> MuFEstimate:
    """Least-squares fit of ``1/mu = t1 + c2/f``.

    Parameters are observed domain frequencies (any consistent unit) and
    throughputs (instructions per time unit).  Raises if there are fewer
    than two distinct frequencies (the regression would be degenerate) or
    any non-positive observation.
    """
    f = np.asarray(frequencies, dtype=float)
    mu = np.asarray(throughputs, dtype=float)
    if f.shape != mu.shape or f.ndim != 1:
        raise ValueError("frequencies and throughputs must be 1-D and equal length")
    if f.size < 2:
        raise ValueError("need at least two observations")
    if (f <= 0).any() or (mu <= 0).any():
        raise ValueError("observations must be positive")
    x = 1.0 / f
    y = 1.0 / mu
    if float(x.max() - x.min()) < 1e-9:
        raise ValueError(
            "no frequency variation in the observations; the fit is degenerate"
        )
    slope, intercept = np.polyfit(x, y, 1)
    predicted = intercept + slope * x
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return MuFEstimate(
        t1=float(intercept), c2=float(slope), r_squared=r_squared, n_points=f.size
    )


class OnlineMuFEstimator:
    """Rolling-window online estimator.

    Feed one (frequency, throughput) observation per measurement window;
    :meth:`estimate` fits over the most recent ``window`` observations.
    This is what a hardware implementation would keep in a pair of small
    accumulator registers.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = window
        self._observations: Deque[Tuple[float, float]] = deque(maxlen=window)

    def update(self, frequency: float, throughput: float) -> None:
        if frequency <= 0 or throughput <= 0:
            raise ValueError("observations must be positive")
        self._observations.append((frequency, throughput))

    @property
    def n_observations(self) -> int:
        return len(self._observations)

    def ready(self) -> bool:
        """Enough observations, with frequency variation, to fit?"""
        if len(self._observations) < 2:
            return False
        freqs = [f for f, _ in self._observations]
        return max(freqs) - min(freqs) > 1e-9

    def estimate(self) -> MuFEstimate:
        if not self.ready():
            raise RuntimeError("estimator not ready (need varied observations)")
        freqs, mus = zip(*self._observations)
        return fit_mu_f(freqs, mus)


def estimate_from_history(
    history: SimulationHistory,
    domain: DomainId,
    window_samples: int = 250,
    min_instructions: int = 8,
    min_occupancy: float = 1.0,
) -> MuFEstimate:
    """Fit the mu-f model for one domain from a recorded simulation.

    The history is cut into windows of ``window_samples`` sampling periods;
    each window contributes its mean frequency and its throughput
    (instructions issued per nanosecond).  Only *service-limited* windows
    are informative: windows with few issued instructions or a mean queue
    occupancy below ``min_occupancy`` are skipped -- when the domain is
    starved, throughput measures the arrival rate, not the service rate,
    and the fit would be meaningless.
    """
    freq = np.asarray(history.frequency_ghz[domain], dtype=float)
    issued = np.asarray(history.issued[domain], dtype=float)
    occupancy = np.asarray(history.occupancy[domain], dtype=float)
    times = np.asarray(history.time_ns, dtype=float)
    if freq.size != issued.size or freq.size != times.size:
        raise ValueError("history series have inconsistent lengths")
    n_windows = freq.size // window_samples
    if n_windows < 2:
        raise ValueError("history too short for the requested window size")

    frequencies = []
    throughputs = []
    for w in range(n_windows):
        lo, hi = w * window_samples, (w + 1) * window_samples - 1
        dt = times[hi] - times[lo]
        done = issued[hi] - issued[lo]
        if dt <= 0 or done < min_instructions:
            continue
        if float(occupancy[lo : hi + 1].mean()) < min_occupancy:
            continue  # starved window: throughput = arrival rate, skip
        frequencies.append(float(freq[lo : hi + 1].mean()))
        throughputs.append(float(done / dt))
    if len(frequencies) < 2:
        raise ValueError("not enough service-limited windows to fit the model")
    return fit_mu_f(frequencies, throughputs)


def offline_characterization(
    benchmark,
    domain: DomainId,
    frequencies: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    max_instructions: Optional[int] = 30_000,
) -> MuFEstimate:
    """Offline mu-f estimation: run at pinned frequencies and fit.

    The paper's Section 4.3 references estimate t1/c2 "online or offline";
    this is the offline route, and the well-conditioned one -- the
    frequency range is explored deliberately instead of relying on whatever
    excursions a DVFS run happens to make.  The target domain is pinned to
    each probe frequency (other domains stay at f_max so the probed domain
    is the bottleneck) and its whole-run throughput is observed.

    ``benchmark`` is a suite name or :class:`BenchmarkSpec`.
    """
    # local import: the harness imports analysis tooling elsewhere
    from repro.harness.experiment import run_experiment

    if len(frequencies) < 2:
        raise ValueError("need at least two probe frequencies")
    observed_f = []
    observed_mu = []
    for f in frequencies:
        result = run_experiment(
            benchmark,
            scheme="full-speed",
            max_instructions=max_instructions,
            record_history=False,
            initial_frequencies={domain: f},
        )
        issued = result.issued_by_domain[domain]
        if issued == 0:
            continue  # the domain never executes in this program
        observed_f.append(f)
        observed_mu.append(issued / result.time_ns)
    if len(observed_f) < 2:
        raise ValueError(
            f"domain {domain.value} executes too little in this benchmark "
            "to characterize"
        )
    return fit_mu_f(observed_f, observed_mu)
