"""Section 4: modeling and stability analysis of the adaptive DVFS system.

The paper derives a continuous-time aggregate model of the controller +
queue + clock-domain dynamics (eqs 1-9), linearizes it by choosing
``h(f) = f^2`` to cancel the mu-f nonlinearity (eqs 10-12), and applies
classical second-order analysis to the linearized system (eq 13), yielding
three design remarks.  This package implements the model, the linearization,
the closed-form analysis, and numerical ODE simulation of both the nonlinear
and linearized closed loops so the approximations can be checked.
"""

from repro.analysis.model import (
    ServiceModel,
    ControllerModel,
    ClosedLoopModel,
)
from repro.analysis.linearize import LinearizedSystem, linearize
from repro.analysis.stability import (
    StabilityReport,
    analyze,
    characteristic_roots,
    damping_ratio,
    settling_time,
    rise_time,
    percent_overshoot,
    delay_ratio_bounds,
    recommended_delay_ratio_range,
)
# The numerical submodules (ODE simulation, mu-f estimation, the discrete
# sampled-loop model) need numpy; the closed-form model/linearization/
# stability layers above do not.  Guard the re-exports so a numpy-free
# install (CI's no-numpy leg) can still use the closed-form layers -- the
# gated names then simply do not exist, and importing them from their
# defining submodules raises the real ImportError.
try:
    from repro.analysis.ode import (
        StepResponse,
        simulate_linear_step,
        simulate_nonlinear,
    )
    from repro.analysis.estimation import (
        MuFEstimate,
        OnlineMuFEstimator,
        fit_mu_f,
        estimate_from_history,
        offline_characterization,
    )
    from repro.analysis.discrete import (
        DiscreteClosedLoop,
        from_continuous,
        max_stable_km,
    )
except ImportError:  # pragma: no cover -- exercised by the no-numpy CI leg
    pass

__all__ = [
    "MuFEstimate",
    "OnlineMuFEstimator",
    "fit_mu_f",
    "estimate_from_history",
    "offline_characterization",
    "DiscreteClosedLoop",
    "from_continuous",
    "max_stable_km",
    "ServiceModel",
    "ControllerModel",
    "ClosedLoopModel",
    "LinearizedSystem",
    "linearize",
    "StabilityReport",
    "analyze",
    "characteristic_roots",
    "damping_ratio",
    "settling_time",
    "rise_time",
    "percent_overshoot",
    "delay_ratio_bounds",
    "recommended_delay_ratio_range",
    "StepResponse",
    "simulate_linear_step",
    "simulate_nonlinear",
]
