"""Continuous-time aggregate model of the adaptive DVFS system (paper Sec 4).

Three coupled pieces (paper eqs 1-9):

* **Controller** (eq 1/7): the aggregate effect of the step-up/step-down FSMs
  is a frequency slew proportional to each queue signal,

      f'(t) = m*step*(q - q_ref) / (g(f)*T_m0)  +  l*step*q'(t) / (g(f)*T_l0)

  where ``g(f)`` is the frequency-dependent delay scaling (the simulator
  multiplies the count-down delay by ``1/f_hat^2``; ``g(f) = 1/f^2`` is the
  choice that linearizes the loop -- see :mod:`repro.analysis.linearize`).

* **Queue** (eq 8): a continuous Lindley recurrence,
  ``q'(t) = gamma*(lambda(t) - mu(t))``.

* **Service** (eq 9): the two-part execution-time split,
  ``1/mu = t1 + c2/f`` -- ``t1`` the frequency-independent seconds per
  instruction (e.g. main-memory time) and ``c2`` the frequency-dependent
  cycles per instruction -- so ``mu(f) = f / (t1*f + c2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ServiceModel:
    """The mu-f service-rate model of eq 9.

    Units are normalized: ``f`` is relative frequency (f/f_max in (0, 1]),
    ``mu`` is instructions per sampling period.  ``t1`` and ``c2`` can be
    estimated online or offline (paper Section 4.3).
    """

    t1: float
    c2: float

    def __post_init__(self) -> None:
        if self.t1 < 0 or self.c2 <= 0:
            raise ValueError("need t1 >= 0 and c2 > 0")

    def mu(self, f: float) -> float:
        """Service rate at relative frequency ``f``."""
        if f <= 0:
            raise ValueError("frequency must be positive")
        return f / (self.t1 * f + self.c2)

    def dmu_df(self, f: float) -> float:
        """Exact derivative d(mu)/df = c2 / (t1*f + c2)^2 (eq 10)."""
        if f <= 0:
            raise ValueError("frequency must be positive")
        denom = self.t1 * f + self.c2
        return self.c2 / (denom * denom)

    def k_approx(self, f_op: float) -> float:
        """The constant ``k`` in the quadratic approximation
        ``dmu/df ~= k / f^2`` around the operating point ``f_op``.

        Exact at ``f_op`` by construction; the approximation error grows away
        from the operating point (checked in tests).
        """
        return f_op * f_op * self.dmu_df(f_op)


@dataclass(frozen=True)
class ControllerModel:
    """The aggregate controller ODE of eq 1/7."""

    step: float
    t_m0: float
    t_l0: float
    m: float = 1.0
    l: float = 1.0

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.t_m0 <= 0 or self.t_l0 <= 0:
            raise ValueError("time delays must be positive")
        if self.m <= 0 or self.l <= 0:
            raise ValueError("conversion constants must be positive")

    @staticmethod
    def delay_scaling(f: float) -> float:
        """g(f) = 1/f^2: the effective-delay multiplier the design uses.

        Dividing the slew by g(f) multiplies it by f^2, which cancels the
        1/f^2 shape of dmu/df and makes the closed loop linear in mu.
        """
        if f <= 0:
            raise ValueError("frequency must be positive")
        return 1.0 / (f * f)

    def f_dot(self, q: float, q_dot: float, f: float, q_ref: float) -> float:
        """Frequency slew commanded by the two queue signals (eq 7)."""
        g = self.delay_scaling(f)
        level_term = self.m * self.step * (q - q_ref) / (g * self.t_m0)
        slope_term = self.l * self.step * q_dot / (g * self.t_l0)
        return level_term + slope_term


@dataclass(frozen=True)
class ClosedLoopModel:
    """Controller + queue + service dynamics, state [q, f]."""

    controller: ControllerModel
    service: ServiceModel
    q_ref: float
    gamma: float = 1.0
    q_max: float = 16.0
    f_min: float = 0.25
    f_max: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if not 0 < self.f_min < self.f_max:
            raise ValueError("need 0 < f_min < f_max")
        if not 0 <= self.q_ref <= self.q_max:
            raise ValueError("q_ref must lie within the queue")

    def derivative(
        self, state: Tuple[float, float], load: float
    ) -> Tuple[float, float]:
        """(q', f') at ``state`` under instantaneous arrival rate ``load``.

        The queue is clamped to [0, q_max] and frequency to [f_min, f_max]
        (saturations the linear analysis ignores but the real system has).
        """
        q, f = state
        f = min(self.f_max, max(self.f_min, f))
        q_dot = self.gamma * (load - self.service.mu(f))
        if q <= 0.0 and q_dot < 0.0:
            q_dot = 0.0
        if q >= self.q_max and q_dot > 0.0:
            q_dot = 0.0
        f_dot = self.controller.f_dot(q, q_dot, f, self.q_ref)
        if f <= self.f_min and f_dot < 0.0:
            f_dot = 0.0
        if f >= self.f_max and f_dot > 0.0:
            f_dot = 0.0
        return q_dot, f_dot
